//! Trainable parameters and the module-visitor abstraction.

use vela_tensor::Tensor;

/// A named parameter: a value tensor, its accumulated gradient, and a
/// trainable flag.
///
/// During pre-training all parameters are trainable; during LoRA fine-tuning
/// only the adapter matrices are, and the optimizer skips frozen parameters.
/// Names are hierarchical (e.g. `"block3.expert2.gate.lora_a"`) and must be
/// unique within a model, because optimizers key their per-parameter state by
/// name.
#[derive(Debug, Clone)]
pub struct Param {
    name: String,
    /// The parameter tensor.
    pub value: Tensor,
    /// Accumulated gradient, same shape as `value`.
    pub grad: Tensor,
    trainable: bool,
}

impl Param {
    /// Creates a trainable parameter initialized to `value`.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            name: name.into(),
            value,
            grad,
            trainable: true,
        }
    }

    /// Creates a frozen (non-trainable) parameter.
    pub fn frozen(name: impl Into<String>, value: Tensor) -> Self {
        let mut p = Param::new(name, value);
        p.trainable = false;
        p
    }

    /// The parameter's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the optimizer should update this parameter.
    pub fn is_trainable(&self) -> bool {
        self.trainable
    }

    /// Freezes or unfreezes the parameter.
    pub fn set_trainable(&mut self, trainable: bool) {
        self.trainable = trainable;
    }

    /// Number of elements in the parameter tensor.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` if the parameter tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Accumulates `g` into the gradient.
    ///
    /// # Panics
    /// Panics if `g`'s shape differs from the parameter's.
    pub fn accumulate(&mut self, g: &Tensor) {
        self.grad.add_assign(g);
    }
}

/// Anything that owns parameters and can expose them to a visitor.
///
/// Models, layers and expert shards implement this; optimizers and
/// serialization walk parameters exclusively through it, so ownership stays
/// with the layers.
pub trait Module {
    /// Calls `f` once for every parameter, in a deterministic order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zeroes every parameter gradient.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of parameters (trainable and frozen).
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Number of trainable parameters.
    fn trainable_param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| {
            if p.is_trainable() {
                n += p.len();
            }
        });
        n
    }
}

impl Module for Vec<Param> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self {
            f(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new("w", Tensor::ones((2, 2)));
        assert_eq!(p.grad.sum(), 0.0);
        assert!(p.is_trainable());
        assert_eq!(p.name(), "w");
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn frozen_param_is_not_trainable() {
        let mut p = Param::frozen("w", Tensor::ones(3usize));
        assert!(!p.is_trainable());
        p.set_trainable(true);
        assert!(p.is_trainable());
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new("w", Tensor::zeros(2usize));
        p.accumulate(&Tensor::from_vec(2usize, vec![1.0, 2.0]));
        p.accumulate(&Tensor::from_vec(2usize, vec![1.0, 2.0]));
        assert_eq!(p.grad.as_slice(), &[2.0, 4.0]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn module_counts_params() {
        let mut m = vec![
            Param::new("a", Tensor::zeros((2, 3))),
            Param::frozen("b", Tensor::zeros(4usize)),
        ];
        assert_eq!(m.param_count(), 10);
        assert_eq!(m.trainable_param_count(), 6);
    }

    #[test]
    fn module_zero_grad_clears_all() {
        let mut m = vec![Param::new("a", Tensor::zeros(2usize))];
        m[0].accumulate(&Tensor::ones(2usize));
        m.zero_grad();
        assert_eq!(m[0].grad.sum(), 0.0);
    }
}

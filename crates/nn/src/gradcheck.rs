//! Finite-difference gradient checking.
//!
//! Every layer in this crate hand-implements its backward pass; these
//! helpers verify those implementations numerically. The probe loss is the
//! inner product `⟨forward(x), gout⟩`, whose gradient with respect to the
//! output is exactly `gout`, so running `backward(gout)` must reproduce the
//! numerical derivative of the probe loss with respect to every trainable
//! parameter and to the input.

use vela_tensor::Tensor;

use crate::param::Module;

/// Verifies a layer's parameter gradients against central finite
/// differences.
///
/// `forward` must run the layer's training-mode forward pass (caching
/// activations) and `backward` its backward pass. Parameters whose
/// [`Param::is_trainable`](crate::Param::is_trainable) flag is `false` are
/// skipped (frozen parameters receive no gradient by design).
///
/// To keep the check affordable for large layers, at most 64 elements per
/// parameter are probed (a deterministic stride covers the whole tensor).
///
/// # Panics
/// Panics (via assertions) if any analytic gradient deviates from the
/// numerical estimate by more than `tol`.
pub fn check_param_grads<M: Module>(
    module: &mut M,
    mut forward: impl FnMut(&mut M, &Tensor) -> Tensor,
    mut backward: impl FnMut(&mut M, &Tensor) -> Tensor,
    x: &Tensor,
    gout: &Tensor,
    eps: f32,
    tol: f32,
) {
    module.zero_grad();
    forward(module, x);
    backward(module, gout);

    // Snapshot analytic gradients of all trainable params.
    let mut analytic: Vec<(String, Tensor)> = Vec::new();
    module.visit_params(&mut |p| {
        if p.is_trainable() {
            analytic.push((p.name().to_string(), p.grad.clone()));
        }
    });

    for (name, grad) in &analytic {
        let len = grad.len();
        let stride = (len / 64).max(1);
        for idx in (0..len).step_by(stride) {
            let orig = read_param(module, name, idx);
            write_param(module, name, idx, orig + eps);
            let fp = probe(module, &mut forward, x, gout);
            write_param(module, name, idx, orig - eps);
            let fm = probe(module, &mut forward, x, gout);
            write_param(module, name, idx, orig);
            let numeric = (fp - fm) / (2.0 * eps);
            let a = grad.at(idx);
            assert!(
                (numeric - a).abs() <= tol * (1.0 + numeric.abs().max(a.abs())),
                "param {name}[{idx}]: numeric {numeric} vs analytic {a}"
            );
        }
    }
}

/// Verifies a layer's input gradient against central finite differences.
///
/// # Panics
/// Panics (via assertions) on deviation beyond `tol`.
pub fn check_input_grad<M: Module>(
    module: &mut M,
    mut forward: impl FnMut(&mut M, &Tensor) -> Tensor,
    mut backward: impl FnMut(&mut M, &Tensor) -> Tensor,
    x: &Tensor,
    gout: &Tensor,
    eps: f32,
    tol: f32,
) {
    forward(module, x);
    let gin = backward(module, gout);
    let stride = (x.len() / 64).max(1);
    for idx in (0..x.len()).step_by(stride) {
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += eps;
        let fp = probe(module, &mut forward, &xp, gout);
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= eps;
        let fm = probe(module, &mut forward, &xm, gout);
        let numeric = (fp - fm) / (2.0 * eps);
        let a = gin.at(idx);
        assert!(
            (numeric - a).abs() <= tol * (1.0 + numeric.abs().max(a.abs())),
            "input[{idx}]: numeric {numeric} vs analytic {a}"
        );
    }
}

fn probe<M: Module>(
    module: &mut M,
    forward: &mut impl FnMut(&mut M, &Tensor) -> Tensor,
    x: &Tensor,
    gout: &Tensor,
) -> f32 {
    forward(module, x)
        .as_slice()
        .iter()
        .zip(gout.as_slice())
        .map(|(&y, &g)| y * g)
        .sum()
}

fn read_param<M: Module>(module: &mut M, name: &str, idx: usize) -> f32 {
    let mut out = None;
    module.visit_params(&mut |p| {
        if p.name() == name {
            out = Some(p.value.at(idx));
        }
    });
    out.unwrap_or_else(|| panic!("param {name} not found"))
}

fn write_param<M: Module>(module: &mut M, name: &str, idx: usize, value: f32) {
    let mut hit = false;
    module.visit_params(&mut |p| {
        if p.name() == name {
            p.value.as_mut_slice()[idx] = value;
            hit = true;
        }
    });
    assert!(hit, "param {name} not found");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use vela_tensor::rng::DetRng;

    /// A toy module computing `y = x * w` element-wise, with a deliberately
    /// correct backward, to sanity-check the checker itself.
    struct Scale {
        w: Param,
        cached_x: Option<Tensor>,
    }

    impl Module for Scale {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.w);
        }
    }

    impl Scale {
        fn forward(&mut self, x: &Tensor) -> Tensor {
            self.cached_x = Some(x.clone());
            x.mul(&self.w.value)
        }
        fn backward(&mut self, g: &Tensor) -> Tensor {
            let x = self.cached_x.as_ref().unwrap();
            self.w.accumulate(&g.mul(x));
            g.mul(&self.w.value)
        }
    }

    #[test]
    fn checker_accepts_correct_gradients() {
        let mut rng = DetRng::new(0);
        let mut m = Scale {
            w: Param::new("w", Tensor::uniform(4usize, 0.5, 1.5, &mut rng)),
            cached_x: None,
        };
        let x = Tensor::uniform(4usize, -1.0, 1.0, &mut rng);
        let g = Tensor::uniform(4usize, -1.0, 1.0, &mut rng);
        check_param_grads(
            &mut m,
            |m, x| m.forward(x),
            |m, g| m.backward(g),
            &x,
            &g,
            1e-3,
            1e-2,
        );
        check_input_grad(
            &mut m,
            |m, x| m.forward(x),
            |m, g| m.backward(g),
            &x,
            &g,
            1e-3,
            1e-2,
        );
    }

    #[test]
    #[should_panic(expected = "param w")]
    fn checker_rejects_wrong_gradients() {
        struct Broken {
            w: Param,
        }
        impl Module for Broken {
            fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
                f(&mut self.w);
            }
        }
        let mut m = Broken {
            w: Param::new("w", Tensor::ones(2usize)),
        };
        let x = Tensor::ones(2usize);
        let g = Tensor::ones(2usize);
        check_param_grads(
            &mut m,
            |m, x| x.mul(&m.w.value),
            |m, _g| {
                // Wrong: claims gradient is 10 everywhere.
                m.w.accumulate(&Tensor::full(2usize, 10.0));
                Tensor::ones(2usize)
            },
            &x,
            &g,
            1e-3,
            1e-2,
        );
    }
}

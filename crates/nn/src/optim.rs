//! Optimizers: SGD and AdamW.
//!
//! Optimizers walk a [`Module`]'s parameters through the visitor API and
//! keep any per-parameter state keyed by parameter name, so layers retain
//! ownership of their weights. Frozen parameters are skipped.
//!
//! The default AdamW hyper-parameters mirror the paper's fine-tuning setup:
//! learning rate `3e-5`, betas `[0.8, 0.999]`, `ε = 1e-8`, weight decay
//! `3e-7`.

use std::collections::HashMap;

use vela_tensor::Tensor;

use crate::param::Module;

/// Plain stochastic gradient descent: `w ← w − lr · g`.
///
/// Used by the Theorem 1 analysis, which assumes SGD updates.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    ///
    /// # Panics
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "lr must be positive, got {lr}");
        Sgd { lr }
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one descent step to every trainable parameter.
    pub fn step(&mut self, module: &mut dyn Module) {
        let lr = self.lr;
        module.visit_params(&mut |p| {
            if p.is_trainable() {
                let g = p.grad.clone();
                p.value.axpy(-lr, &g);
            }
        });
    }
}

/// Hyper-parameters for [`AdamW`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamWConfig {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
}

impl Default for AdamWConfig {
    /// The paper's fine-tuning hyper-parameters (§V-A).
    fn default() -> Self {
        AdamWConfig {
            lr: 3e-5,
            beta1: 0.8,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 3e-7,
        }
    }
}

/// AdamW (Adam with decoupled weight decay).
#[derive(Debug, Clone)]
pub struct AdamW {
    cfg: AdamWConfig,
    /// First/second moment estimates keyed by parameter name.
    state: HashMap<String, (Tensor, Tensor)>,
    /// Global step counter (for bias correction).
    t: u64,
}

impl AdamW {
    /// Creates an AdamW optimizer.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (non-positive `lr`, betas
    /// outside `[0, 1)`).
    pub fn new(cfg: AdamWConfig) -> Self {
        assert!(cfg.lr > 0.0 && cfg.lr.is_finite(), "invalid lr {}", cfg.lr);
        assert!(
            (0.0..1.0).contains(&cfg.beta1),
            "invalid beta1 {}",
            cfg.beta1
        );
        assert!(
            (0.0..1.0).contains(&cfg.beta2),
            "invalid beta2 {}",
            cfg.beta2
        );
        AdamW {
            cfg,
            state: HashMap::new(),
            t: 0,
        }
    }

    /// The optimizer configuration.
    pub fn config(&self) -> &AdamWConfig {
        &self.cfg
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one AdamW step to every trainable parameter.
    pub fn step(&mut self, module: &mut dyn Module) {
        self.t += 1;
        let t = self.t;
        self.step_with(module, t);
    }

    /// Applies one AdamW update to `module` using bias corrections for an
    /// explicit step index `t`, without advancing the optimizer's own
    /// counter. Shadow-install migration uses this to *replay* buffered
    /// gradients on a freshly installed expert: each buffered gradient is
    /// applied at the step index the serving copy applied it at, so the
    /// replica lands bit-identical to the original.
    ///
    /// # Panics
    /// Panics if `t` is zero (bias correction divides by `1 - βᵗ`).
    pub fn step_at(&mut self, module: &mut dyn Module, t: u64) {
        assert!(t > 0, "step index must be positive");
        self.step_with(module, t);
    }

    fn step_with(&mut self, module: &mut dyn Module, t: u64) {
        let t = t as i32;
        let cfg = self.cfg;
        let bc1 = 1.0 - cfg.beta1.powi(t);
        let bc2 = 1.0 - cfg.beta2.powi(t);
        let state = &mut self.state;
        module.visit_params(&mut |p| {
            if !p.is_trainable() {
                return;
            }
            let (m, v) = state.entry(p.name().to_string()).or_insert_with(|| {
                (
                    Tensor::zeros(p.value.shape().clone()),
                    Tensor::zeros(p.value.shape().clone()),
                )
            });
            let g = p.grad.as_slice();
            let w = p.value.as_mut_slice();
            for i in 0..g.len() {
                let gi = g[i];
                let mi = cfg.beta1 * m.as_slice()[i] + (1.0 - cfg.beta1) * gi;
                let vi = cfg.beta2 * v.as_slice()[i] + (1.0 - cfg.beta2) * gi * gi;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                // Decoupled weight decay, then the Adam update.
                w[i] -= cfg.lr * cfg.weight_decay * w[i];
                w[i] -= cfg.lr * m_hat / (v_hat.sqrt() + cfg.eps);
            }
        });
    }

    /// The stored moment pair for a parameter, if one exists. Parameters
    /// get moment entries lazily on their first [`AdamW::step`].
    pub fn moments(&self, name: &str) -> Option<(&Tensor, &Tensor)> {
        self.state.get(name).map(|(m, v)| (m, v))
    }

    /// Installs an explicit moment pair for a parameter, replacing any
    /// existing entry. Used when migrating an expert's optimizer state
    /// alongside its weights.
    ///
    /// # Panics
    /// Panics if `m` and `v` have different element counts.
    pub fn set_moments(&mut self, name: &str, m: Tensor, v: Tensor) {
        assert_eq!(
            m.len(),
            v.len(),
            "moment tensors for {name} disagree on length"
        );
        self.state.insert(name.to_string(), (m, v));
    }

    /// Removes and returns the stored moment pair for a parameter, if any.
    /// After removal the parameter behaves like a fresh one: its moments
    /// re-initialize to zero on the next step.
    pub fn take_moments(&mut self, name: &str) -> Option<(Tensor, Tensor)> {
        self.state.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    fn quadratic_grad(p: &mut Param) {
        // loss = 0.5 * ||w||², grad = w.
        let g = p.value.clone();
        p.zero_grad();
        p.accumulate(&g);
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut params = vec![Param::new("w", Tensor::from_vec(2usize, vec![4.0, -2.0]))];
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            quadratic_grad(&mut params[0]);
            opt.step(&mut params);
        }
        assert!(params[0].value.norm() < 1e-3);
    }

    #[test]
    fn sgd_single_step_formula() {
        let mut params = vec![Param::new("w", Tensor::from_vec(1usize, vec![1.0]))];
        params[0].accumulate(&Tensor::from_vec(1usize, vec![0.5]));
        Sgd::new(0.2).step(&mut params);
        assert!((params[0].value.at(0) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn sgd_skips_frozen() {
        let mut params = vec![Param::frozen("w", Tensor::ones(1usize))];
        params[0].accumulate(&Tensor::ones(1usize));
        Sgd::new(1.0).step(&mut params);
        assert_eq!(params[0].value.at(0), 1.0);
    }

    #[test]
    fn adamw_descends_quadratic() {
        let mut params = vec![Param::new(
            "w",
            Tensor::from_vec(3usize, vec![5.0, -3.0, 1.0]),
        )];
        let mut opt = AdamW::new(AdamWConfig {
            lr: 0.05,
            ..AdamWConfig::default()
        });
        for _ in 0..500 {
            quadratic_grad(&mut params[0]);
            opt.step(&mut params);
        }
        assert!(
            params[0].value.norm() < 0.05,
            "norm {}",
            params[0].value.norm()
        );
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn adamw_first_step_size_is_about_lr() {
        // With bias correction the first Adam step has magnitude ≈ lr.
        let mut params = vec![Param::new("w", Tensor::from_vec(1usize, vec![0.0]))];
        params[0].accumulate(&Tensor::from_vec(1usize, vec![3.0]));
        let mut opt = AdamW::new(AdamWConfig {
            lr: 0.01,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        });
        opt.step(&mut params);
        assert!((params[0].value.at(0) + 0.01).abs() < 1e-4);
    }

    #[test]
    fn adamw_weight_decay_shrinks_without_gradient() {
        let mut params = vec![Param::new("w", Tensor::from_vec(1usize, vec![1.0]))];
        let mut opt = AdamW::new(AdamWConfig {
            lr: 0.1,
            weight_decay: 0.5,
            ..AdamWConfig::default()
        });
        opt.step(&mut params);
        // grad = 0, so only decay acts: w *= (1 - lr*wd) = 0.95.
        assert!((params[0].value.at(0) - 0.95).abs() < 1e-5);
    }

    #[test]
    fn adamw_state_tracks_params_independently() {
        let mut params = vec![
            Param::new("a", Tensor::from_vec(1usize, vec![1.0])),
            Param::new("b", Tensor::from_vec(1usize, vec![1.0])),
        ];
        let mut opt = AdamW::new(AdamWConfig::default());
        params[0].accumulate(&Tensor::ones(1usize));
        opt.step(&mut params);
        assert_eq!(opt.state.len(), 2);
        // "a" moved; "b" (zero grad, tiny decay) barely moved.
        assert!(params[0].value.at(0) < params[1].value.at(0));
    }

    #[test]
    fn step_at_replay_matches_live_steps_bitwise() {
        // Live optimizer takes 3 steps. Replay optimizer starts from the
        // same initial weights, installs nothing, and replays the same
        // gradients via step_at(t) — it must land bit-identical.
        let grads = [vec![0.3f32, -1.0], vec![-0.2, 0.4], vec![0.9, 0.1]];
        let mut live = vec![Param::new("w", Tensor::from_vec(2usize, vec![1.0, -2.0]))];
        let mut opt_live = AdamW::new(AdamWConfig::default());
        for g in &grads {
            live[0].zero_grad();
            live[0].accumulate(&Tensor::from_vec(2usize, g.clone()));
            opt_live.step(&mut live);
        }

        let mut replay = vec![Param::new("w", Tensor::from_vec(2usize, vec![1.0, -2.0]))];
        let mut opt_replay = AdamW::new(AdamWConfig::default());
        for (i, g) in grads.iter().enumerate() {
            replay[0].zero_grad();
            replay[0].accumulate(&Tensor::from_vec(2usize, g.clone()));
            opt_replay.step_at(&mut replay, (i + 1) as u64);
        }

        assert_eq!(live[0].value.as_slice(), replay[0].value.as_slice());
        let (lm, lv) = opt_live.moments("w").unwrap();
        let (rm, rv) = opt_replay.moments("w").unwrap();
        assert_eq!(lm.as_slice(), rm.as_slice());
        assert_eq!(lv.as_slice(), rv.as_slice());
        // step_at does not advance the counter.
        assert_eq!(opt_live.steps(), 3);
        assert_eq!(opt_replay.steps(), 0);
    }

    #[test]
    fn moments_can_be_moved_between_optimizers() {
        let mut params = vec![Param::new("w", Tensor::from_vec(1usize, vec![2.0]))];
        let mut a = AdamW::new(AdamWConfig::default());
        params[0].accumulate(&Tensor::ones(1usize));
        a.step(&mut params);
        let (m, v) = a.take_moments("w").unwrap();
        assert!(a.moments("w").is_none());

        let mut b = AdamW::new(AdamWConfig::default());
        b.set_moments("w", m.clone(), v.clone());
        let (bm, bv) = b.moments("w").unwrap();
        assert_eq!(bm.as_slice(), m.as_slice());
        assert_eq!(bv.as_slice(), v.as_slice());
    }

    #[test]
    #[should_panic(expected = "step index must be positive")]
    fn step_at_rejects_zero() {
        let mut params = vec![Param::new("w", Tensor::ones(1usize))];
        AdamW::new(AdamWConfig::default()).step_at(&mut params, 0);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = AdamWConfig::default();
        assert_eq!(cfg.lr, 3e-5);
        assert_eq!(cfg.beta1, 0.8);
        assert_eq!(cfg.beta2, 0.999);
        assert_eq!(cfg.eps, 1e-8);
        assert_eq!(cfg.weight_decay, 3e-7);
    }

    #[test]
    #[should_panic(expected = "lr must be positive")]
    fn sgd_rejects_bad_lr() {
        Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "invalid beta1")]
    fn adamw_rejects_bad_beta() {
        AdamW::new(AdamWConfig {
            beta1: 1.0,
            ..AdamWConfig::default()
        });
    }
}

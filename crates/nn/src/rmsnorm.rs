//! Root-mean-square layer normalization (as used by Mistral/Mixtral).

use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

use crate::param::{Module, Param};

/// RMSNorm: `y = x / rms(x) ⊙ g`, where `rms(x) = sqrt(mean(x²) + ε)` per
/// row and `g` is a learned gain vector.
#[derive(Debug, Clone)]
pub struct RmsNorm {
    gain: Param,
    dim: usize,
    eps: f32,
    cached_x: Option<Tensor>,
    cached_inv_rms: Vec<f32>,
}

impl RmsNorm {
    /// Creates an RMSNorm over feature dimension `dim` with gain 1.
    ///
    /// The `_rng` parameter keeps the layer-constructor signature uniform
    /// across the crate; the gain is deterministically initialized to ones.
    pub fn new(name: impl Into<String>, dim: usize, _rng: &mut DetRng) -> Self {
        let name = name.into();
        RmsNorm {
            gain: Param::new(format!("{name}.gain"), Tensor::ones(dim)),
            dim,
            eps: 1e-6,
            cached_x: None,
            cached_inv_rms: Vec::new(),
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Freezes the gain (used in fine-tuning when norms stay fixed).
    pub fn freeze(&mut self) {
        self.gain.set_trainable(false);
    }

    /// Normalizes each row of a `[tokens, dim]` batch.
    ///
    /// # Panics
    /// Panics if the input width differs from `dim`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols(), self.dim, "RmsNorm width mismatch");
        let rows = x.rows();
        let mut out = x.clone();
        self.cached_inv_rms.clear();
        for i in 0..rows {
            let row = out.row_mut(i);
            let ms = row.iter().map(|v| v * v).sum::<f32>() / self.dim as f32;
            let inv = 1.0 / (ms + self.eps).sqrt();
            self.cached_inv_rms.push(inv);
            for (v, &g) in row.iter_mut().zip(self.gain.value.as_slice()) {
                *v = *v * inv * g;
            }
        }
        self.cached_x = Some(x.clone());
        out
    }

    /// Backward pass: accumulates the gain gradient and returns the input
    /// gradient.
    ///
    /// # Panics
    /// Panics if called before [`forward`](Self::forward).
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_x
            .as_ref()
            .expect("RmsNorm::backward called before forward");
        let n = self.dim as f32;
        let rows = x.rows();
        let mut grad_in = Tensor::zeros((rows, self.dim));
        let mut dgain = vec![0.0f32; self.dim];
        let g = self.gain.value.as_slice();
        for i in 0..rows {
            let inv = self.cached_inv_rms[i];
            let xr = x.row(i);
            let gy = grad_out.row(i);
            // dL/dgain_j += gy_j * x_j * inv
            for j in 0..self.dim {
                dgain[j] += gy[j] * xr[j] * inv;
            }
            // dot = Σ_k gy_k g_k x_k
            let dot: f32 = (0..self.dim).map(|k| gy[k] * g[k] * xr[k]).sum();
            let gi = grad_in.row_mut(i);
            for j in 0..self.dim {
                gi[j] = inv * gy[j] * g[j] - xr[j] * dot * inv.powi(3) / n;
            }
        }
        if self.gain.is_trainable() {
            self.gain.accumulate(&Tensor::from_vec(self.dim, dgain));
        }
        grad_in
    }
}

impl Module for RmsNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_input_grad, check_param_grads};

    #[test]
    fn output_rows_have_unit_rms_with_unit_gain() {
        let mut rng = DetRng::new(1);
        let mut norm = RmsNorm::new("n", 8, &mut rng);
        let x = Tensor::uniform((4, 8), -3.0, 3.0, &mut rng);
        let y = norm.forward(&x);
        for i in 0..4 {
            let ms = y.row(i).iter().map(|v| v * v).sum::<f32>() / 8.0;
            assert!((ms - 1.0).abs() < 1e-3, "row {i} rms² = {ms}");
        }
    }

    #[test]
    fn scale_invariance() {
        let mut rng = DetRng::new(2);
        let mut norm = RmsNorm::new("n", 6, &mut rng);
        let x = Tensor::uniform((2, 6), 0.5, 2.0, &mut rng);
        let y1 = norm.forward(&x);
        let y2 = norm.forward(&x.scale(10.0));
        assert!(vela_tensor::approx_eq(y1.as_slice(), y2.as_slice(), 1e-3));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = DetRng::new(3);
        let mut norm = RmsNorm::new("n", 5, &mut rng);
        // Non-unit gain so the gain path is exercised.
        norm.visit_params(&mut |p| {
            let mut r = DetRng::new(9);
            p.value = Tensor::uniform(5usize, 0.5, 1.5, &mut r);
        });
        let x = Tensor::uniform((3, 5), -1.0, 1.0, &mut rng);
        let gout = Tensor::uniform((3, 5), -1.0, 1.0, &mut rng);
        check_param_grads(
            &mut norm,
            |m, x| m.forward(x),
            |m, g| m.backward(g),
            &x,
            &gout,
            1e-2,
            2e-2,
        );
        check_input_grad(
            &mut norm,
            |m, x| m.forward(x),
            |m, g| m.backward(g),
            &x,
            &gout,
            1e-2,
            2e-2,
        );
    }

    #[test]
    fn frozen_gain_receives_no_gradient() {
        let mut rng = DetRng::new(4);
        let mut norm = RmsNorm::new("n", 4, &mut rng);
        norm.freeze();
        let x = Tensor::uniform((2, 4), -1.0, 1.0, &mut rng);
        norm.forward(&x);
        norm.backward(&Tensor::ones((2, 4)));
        let mut gsum = 1.0;
        norm.visit_params(&mut |p| gsum = p.grad.sum());
        assert_eq!(gsum, 0.0);
    }
}

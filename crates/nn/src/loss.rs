//! Cross-entropy loss for language modelling.

use vela_tensor::{ops, Tensor};

/// Mean token-level cross-entropy between `logits` (`[tokens, vocab]`) and
/// integer `targets`, together with the gradient with respect to the logits.
///
/// Returns `(loss, grad_logits)` where
/// `grad_logits = (softmax(logits) − onehot(targets)) / tokens` — i.e. the
/// gradient of the *mean* loss, ready to feed into the model's backward
/// pass.
///
/// # Panics
/// Panics if `targets.len()` differs from the number of logit rows or any
/// target id is out of the vocabulary.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    let (rows, vocab) = logits.shape().as_2d();
    assert_eq!(rows, targets.len(), "one target per logit row");
    let log_probs = ops::log_softmax_rows(logits);
    let mut loss = 0.0f32;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < vocab, "target {t} out of vocab {vocab}");
        loss -= log_probs.at2(i, t);
    }
    loss /= rows as f32;

    let mut grad = ops::softmax_rows(logits);
    let inv = 1.0 / rows as f32;
    for (i, &t) in targets.iter().enumerate() {
        let row = grad.row_mut(i);
        row[t] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    (loss, grad)
}

/// Perplexity corresponding to a mean cross-entropy loss.
pub fn perplexity(loss: f32) -> f32 {
    loss.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vela_tensor::rng::DetRng;

    #[test]
    fn uniform_logits_give_log_vocab_loss() {
        let logits = Tensor::zeros((4, 8));
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_gives_low_loss() {
        let mut logits = Tensor::zeros((1, 4));
        logits.set2(0, 2, 20.0);
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn confident_wrong_prediction_gives_high_loss() {
        let mut logits = Tensor::zeros((1, 4));
        logits.set2(0, 2, 20.0);
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss > 10.0, "loss {loss}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = DetRng::new(1);
        let logits = Tensor::uniform((3, 5), -2.0, 2.0, &mut rng);
        let targets = [4usize, 0, 2];
        let (_, grad) = cross_entropy(&logits, &targets);
        let eps = 1e-2f32;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let (fp, _) = cross_entropy(&lp, &targets);
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let (fm, _) = cross_entropy(&lm, &targets);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad.at(idx)).abs() < 1e-3,
                "idx {idx}: {numeric} vs {}",
                grad.at(idx)
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = DetRng::new(2);
        let logits = Tensor::uniform((4, 6), -1.0, 1.0, &mut rng);
        let (_, grad) = cross_entropy(&logits, &[0, 1, 2, 3]);
        for i in 0..4 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn perplexity_of_zero_loss_is_one() {
        assert_eq!(perplexity(0.0), 1.0);
        assert!((perplexity((8.0f32).ln()) - 8.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "one target per logit row")]
    fn mismatched_targets_panic() {
        cross_entropy(&Tensor::zeros((2, 3)), &[0]);
    }
}

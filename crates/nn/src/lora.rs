//! Low-Rank Adaptation (LoRA) adapters.
//!
//! LoRA (Hu et al., 2021) injects a trainable low-rank update `ΔW = A·B`
//! into a frozen linear layer, so the layer computes `y = x·W + s·(x·A)·B`
//! with `s = α / r`. Only `A` and `B` are optimized during fine-tuning,
//! which is the parameter-efficient regime the VELA paper targets
//! (LoRA `r = 8`, `α = 16` in the evaluation).

use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

use crate::param::Param;

/// A LoRA adapter attached to a linear layer of shape `in_dim → out_dim`.
///
/// Follows the reference initialization: `A ~ N(0, 1/in_dim)` and `B = 0`,
/// so the adapted layer is exactly the base layer at step 0.
#[derive(Debug, Clone)]
pub struct LoraAdapter {
    /// Down-projection `A`, shape `(in_dim, rank)`.
    pub a: Param,
    /// Up-projection `B`, shape `(rank, out_dim)`.
    pub b: Param,
    scale: f32,
    rank: usize,
    /// Cached `x·A` from the last forward pass, needed by backward.
    cached_xa: Option<Tensor>,
    /// Cached input from the last forward pass.
    cached_x: Option<Tensor>,
}

impl LoraAdapter {
    /// Creates an adapter for a `in_dim → out_dim` layer.
    ///
    /// # Panics
    /// Panics if `rank` is zero.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rank: usize,
        alpha: f32,
        rng: &mut DetRng,
    ) -> Self {
        assert!(rank > 0, "LoRA rank must be positive");
        let std = 1.0 / (in_dim as f32).sqrt();
        LoraAdapter {
            a: Param::new(
                format!("{name}.lora_a"),
                Tensor::normal((in_dim, rank), 0.0, std, rng),
            ),
            b: Param::new(format!("{name}.lora_b"), Tensor::zeros((rank, out_dim))),
            scale: alpha / rank as f32,
            rank,
            cached_xa: None,
            cached_x: None,
        }
    }

    /// The adapter rank `r`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The scaling factor `α / r`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The low-rank contribution `s·(x·A)·B`, caching activations for
    /// backward.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let xa = x.matmul(&self.a.value);
        let mut out = xa.matmul(&self.b.value);
        out.scale_inplace(self.scale);
        self.cached_xa = Some(xa);
        match &mut self.cached_x {
            Some(t) => t.copy_from(x),
            None => self.cached_x = Some(x.clone()),
        }
        out
    }

    /// Accumulates gradients for `A` and `B` and returns the adapter's
    /// contribution to the input gradient.
    ///
    /// # Panics
    /// Panics if called before [`forward`](Self::forward).
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xa = self
            .cached_xa
            .as_ref()
            .expect("LoraAdapter::backward called before forward");
        let x = self.cached_x.as_ref().expect("input cache missing");
        // dB = s * (xA)^T g
        let mut db = xa.matmul_tn(grad_out);
        db.scale_inplace(self.scale);
        self.b.accumulate(&db);
        // g_xa = s * g B^T
        let mut g_xa = grad_out.matmul_nt(&self.b.value);
        g_xa.scale_inplace(self.scale);
        // dA = x^T g_xa
        let da = x.matmul_tn(&g_xa);
        self.a.accumulate(&da);
        // grad_in = g_xa A^T
        g_xa.matmul_nt(&self.a.value)
    }

    /// Materializes the dense update `s·A·B` (e.g. for merging into the base
    /// weight after fine-tuning).
    pub fn to_dense_delta(&self) -> Tensor {
        self.a.value.matmul(&self.b.value).scale(self.scale)
    }

    /// Visits the adapter parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.a);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_b_means_zero_output() {
        let mut rng = DetRng::new(1);
        let mut lora = LoraAdapter::new("l", 6, 4, 2, 16.0, &mut rng);
        let x = Tensor::uniform((3, 6), -1.0, 1.0, &mut rng);
        let y = lora.forward(&x);
        assert_eq!(y.sum(), 0.0, "fresh adapter must be a no-op");
    }

    #[test]
    fn scale_is_alpha_over_rank() {
        let mut rng = DetRng::new(2);
        let lora = LoraAdapter::new("l", 4, 4, 8, 16.0, &mut rng);
        assert_eq!(lora.scale(), 2.0);
        assert_eq!(lora.rank(), 8);
    }

    #[test]
    fn dense_delta_matches_forward() {
        let mut rng = DetRng::new(3);
        let mut lora = LoraAdapter::new("l", 5, 3, 2, 8.0, &mut rng);
        // Give B nonzero values.
        lora.b.value = Tensor::uniform((2, 3), -1.0, 1.0, &mut rng);
        let x = Tensor::uniform((4, 5), -1.0, 1.0, &mut rng);
        let via_forward = lora.forward(&x);
        let via_delta = x.matmul(&lora.to_dense_delta());
        assert!(vela_tensor::approx_eq(
            via_forward.as_slice(),
            via_delta.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut rng = DetRng::new(4);
        let mut lora = LoraAdapter::new("l", 4, 3, 2, 4.0, &mut rng);
        lora.b.value = Tensor::uniform((2, 3), -0.5, 0.5, &mut rng);
        let x = Tensor::uniform((5, 4), -1.0, 1.0, &mut rng);
        let gout = Tensor::uniform((5, 3), -1.0, 1.0, &mut rng);

        lora.forward(&x);
        let gin = lora.backward(&gout);

        let eps = 1e-2f32;
        // Check dA.
        for idx in 0..lora.a.len() {
            let orig = lora.a.value.at(idx);
            lora.a.value.as_mut_slice()[idx] = orig + eps;
            let fp = loss_of(&mut lora, &x, &gout);
            lora.a.value.as_mut_slice()[idx] = orig - eps;
            let fm = loss_of(&mut lora, &x, &gout);
            lora.a.value.as_mut_slice()[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - lora.a.grad.at(idx)).abs() < 1e-2,
                "dA[{idx}]: {numeric} vs {}",
                lora.a.grad.at(idx)
            );
        }
        // Check dB.
        for idx in 0..lora.b.len() {
            let orig = lora.b.value.at(idx);
            lora.b.value.as_mut_slice()[idx] = orig + eps;
            let fp = loss_of(&mut lora, &x, &gout);
            lora.b.value.as_mut_slice()[idx] = orig - eps;
            let fm = loss_of(&mut lora, &x, &gout);
            lora.b.value.as_mut_slice()[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - lora.b.grad.at(idx)).abs() < 1e-2,
                "dB[{idx}]: {numeric} vs {}",
                lora.b.grad.at(idx)
            );
        }
        // Check grad_in.
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let fp = loss_of(&mut lora, &xp, &gout);
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fm = loss_of(&mut lora, &xm, &gout);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - gin.at(idx)).abs() < 1e-2,
                "dx[{idx}]: {numeric} vs {}",
                gin.at(idx)
            );
        }
    }

    /// Scalar probe loss `<forward(x), gout>`.
    fn loss_of(lora: &mut LoraAdapter, x: &Tensor, gout: &Tensor) -> f32 {
        lora.forward(x)
            .as_slice()
            .iter()
            .zip(gout.as_slice())
            .map(|(&y, &g)| y * g)
            .sum()
    }

    #[test]
    fn visit_params_exposes_a_and_b() {
        let mut rng = DetRng::new(5);
        let mut lora = LoraAdapter::new("l", 2, 2, 1, 2.0, &mut rng);
        let mut names = Vec::new();
        lora.visit_params(&mut |p| names.push(p.name().to_string()));
        assert_eq!(names, vec!["l.lora_a", "l.lora_b"]);
    }

    #[test]
    #[should_panic(expected = "rank must be positive")]
    fn zero_rank_panics() {
        LoraAdapter::new("l", 2, 2, 0, 1.0, &mut DetRng::new(0));
    }
}

//! Causal multi-head self-attention.
//!
//! Implements the attention sub-layer of a Mistral-style transformer block,
//! with hand-derived backward passes through the score softmax and all four
//! projections. The projections are [`Linear`] layers, so they accept LoRA
//! adapters during fine-tuning exactly like the expert FFNs.

use vela_tensor::rng::DetRng;
use vela_tensor::{ops, parallel, Tensor};

use crate::linear::Linear;
use crate::param::{Module, Param};

/// Causal multi-head self-attention over `[batch · seq, dim]` activations.
///
/// Supports grouped-query attention (GQA, as in Mistral/Mixtral): `kv_heads`
/// key/value heads shared by `heads` query heads. The default constructor
/// uses classic multi-head attention (`kv_heads == heads`).
#[derive(Debug, Clone)]
pub struct Attention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    dim: usize,
    heads: usize,
    kv_heads: usize,
    head_dim: usize,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    batch: usize,
    seq: usize,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmaxed attention weights, one `(seq, seq)` matrix per `(batch, head)`.
    probs: Vec<Tensor>,
}

impl Attention {
    /// Creates an attention layer with `heads` heads over width `dim`.
    ///
    /// # Panics
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(name: impl Into<String>, dim: usize, heads: usize, rng: &mut DetRng) -> Self {
        Attention::with_kv_heads(name, dim, heads, heads, rng)
    }

    /// Creates a grouped-query attention layer: `kv_heads` key/value heads
    /// shared by `heads` query heads (Mistral uses a 4:1 ratio).
    ///
    /// # Panics
    /// Panics if `dim % heads != 0` or `heads % kv_heads != 0`.
    pub fn with_kv_heads(
        name: impl Into<String>,
        dim: usize,
        heads: usize,
        kv_heads: usize,
        rng: &mut DetRng,
    ) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim {dim} must be divisible by heads {heads}"
        );
        assert!(
            kv_heads > 0 && heads.is_multiple_of(kv_heads),
            "heads {heads} must be divisible by kv_heads {kv_heads}"
        );
        let name = name.into();
        let head_dim = dim / heads;
        let kv_dim = kv_heads * head_dim;
        Attention {
            wq: Linear::new(format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new(format!("{name}.wk"), dim, kv_dim, rng),
            wv: Linear::new(format!("{name}.wv"), dim, kv_dim, rng),
            wo: Linear::new(format!("{name}.wo"), dim, dim, rng),
            dim,
            heads,
            kv_heads,
            head_dim,
            cache: None,
        }
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of query heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Number of key/value heads (equals [`heads`](Self::heads) for plain
    /// multi-head attention).
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    /// Freezes all four projections.
    pub fn freeze_base(&mut self) {
        self.wq.freeze_base();
        self.wk.freeze_base();
        self.wv.freeze_base();
        self.wo.freeze_base();
    }

    /// Attaches LoRA adapters to all four projections.
    pub fn attach_lora(&mut self, rank: usize, alpha: f32, rng: &mut DetRng) {
        self.wq.attach_lora(rank, alpha, rng);
        self.wk.attach_lora(rank, alpha, rng);
        self.wv.attach_lora(rank, alpha, rng);
        self.wo.attach_lora(rank, alpha, rng);
    }

    /// Forward pass. `x` is `[batch · seq, dim]` with rows grouped by batch
    /// element; a causal mask is applied within each sequence.
    ///
    /// # Panics
    /// Panics if `x.rows() != batch * seq` or the width differs from `dim`.
    pub fn forward(&mut self, x: &Tensor, batch: usize, seq: usize) -> Tensor {
        assert_eq!(x.rows(), batch * seq, "rows != batch*seq");
        assert_eq!(x.cols(), self.dim, "attention width mismatch");
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let group = self.heads / self.kv_heads;
        let (heads, head_dim) = (self.heads, self.head_dim);
        // Each (batch, head) pair is independent; only the final combine
        // writes shared rows, so it stays serial (and deterministic). The
        // work hint keeps tiny attention maps off the thread pool.
        let work = batch * heads * seq * seq * head_dim;
        let per_head = parallel::par_map_hinted(batch * heads, work, |i| {
            let (b, h) = (i / heads, i % heads);
            let kv = h / group;
            let qb = block(&q, b * seq, seq, h * head_dim, head_dim);
            let kb = block(&k, b * seq, seq, kv * head_dim, head_dim);
            let vb = block(&v, b * seq, seq, kv * head_dim, head_dim);
            let mut scores = qb.matmul_nt(&kb);
            scores.scale_inplace(scale);
            apply_causal_mask(&mut scores);
            let a = ops::softmax_rows(&scores);
            let out = a.matmul(&vb);
            (a, out)
        });
        let mut context = Tensor::zeros((batch * seq, self.dim));
        let mut probs = Vec::with_capacity(batch * heads);
        for (i, (a, out)) in per_head.into_iter().enumerate() {
            let (b, h) = (i / heads, i % heads);
            add_block(&mut context, b * seq, h * head_dim, &out);
            probs.push(a);
        }
        let y = self.wo.forward(&context);
        self.cache = Some(AttnCache {
            batch,
            seq,
            q,
            k,
            v,
            probs,
        });
        y
    }

    /// Backward pass: accumulates projection gradients and returns the input
    /// gradient.
    ///
    /// # Panics
    /// Panics if called before [`forward`](Self::forward).
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Attention::backward called before forward");
        let AttnCache {
            batch,
            seq,
            q,
            k,
            v,
            probs,
        } = cache;
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let group = self.heads / self.kv_heads;
        let kv_dim = self.kv_heads * self.head_dim;
        let g_ctx = self.wo.backward(grad_out);
        let mut gq = Tensor::zeros((batch * seq, self.dim));
        let mut gk = Tensor::zeros((batch * seq, kv_dim));
        let mut gv = Tensor::zeros((batch * seq, kv_dim));

        // Per-(batch, head) gradients are independent; GQA-shared KV heads
        // receive contributions from several query heads, so the
        // accumulation into gq/gk/gv happens serially afterwards in the
        // same order as the old nested loop.
        let (heads, head_dim) = (self.heads, self.head_dim);
        let work = batch * heads * seq * seq * head_dim;
        let per_head = parallel::par_map_hinted(batch * heads, work, |i| {
            let (b, h) = (i / heads, i % heads);
            let kv = h / group;
            let a = &probs[b * heads + h];
            let qb = block(&q, b * seq, seq, h * head_dim, head_dim);
            let kb = block(&k, b * seq, seq, kv * head_dim, head_dim);
            let vb = block(&v, b * seq, seq, kv * head_dim, head_dim);
            let g_out = block(&g_ctx, b * seq, seq, h * head_dim, head_dim);

            // out = A · V
            let g_a = g_out.matmul_nt(&vb);
            let g_v = a.matmul_tn(&g_out);
            // A = softmax(S); masked entries have A = 0 so receive 0.
            let mut g_s = ops::softmax_rows_backward(a, &g_a);
            g_s.scale_inplace(scale);
            // S' = Q · K^T  =>  dQ = S'_grad · K, dK = S'_grad^T · Q.
            let g_q = g_s.matmul(&kb);
            let g_k = g_s.matmul_tn(&qb);
            (g_q, g_k, g_v)
        });
        for (i, (g_q, g_k, g_v)) in per_head.into_iter().enumerate() {
            let (b, h) = (i / heads, i % heads);
            let kv = h / group;
            add_block(&mut gq, b * seq, h * head_dim, &g_q);
            add_block(&mut gk, b * seq, kv * head_dim, &g_k);
            add_block(&mut gv, b * seq, kv * head_dim, &g_v);
        }

        let gin_q = self.wq.backward(&gq);
        let gin_k = self.wk.backward(&gk);
        let gin_v = self.wv.backward(&gv);
        gin_q.add(&gin_k).add(&gin_v)
    }
}

impl Module for Attention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

/// Copies a `(rows, cols)` sub-matrix out of `t` starting at
/// `(row0, col0)`.
fn block(t: &Tensor, row0: usize, rows: usize, col0: usize, cols: usize) -> Tensor {
    let mut out = vela_tensor::workspace::take_uninit((rows, cols));
    for i in 0..rows {
        out.row_mut(i)
            .copy_from_slice(&t.row(row0 + i)[col0..col0 + cols]);
    }
    out
}

/// Adds `src` into `dst` at offset `(row0, col0)`.
fn add_block(dst: &mut Tensor, row0: usize, col0: usize, src: &Tensor) {
    let (rows, cols) = src.shape().as_2d();
    for i in 0..rows {
        let d = &mut dst.row_mut(row0 + i)[col0..col0 + cols];
        for (dv, &sv) in d.iter_mut().zip(src.row(i)) {
            *dv += sv;
        }
    }
}

/// Sets the strictly upper-triangular part of a square score matrix to
/// `-inf`, enforcing causality.
fn apply_causal_mask(scores: &mut Tensor) {
    let (s, s2) = scores.shape().as_2d();
    debug_assert_eq!(s, s2, "causal mask expects square scores");
    for i in 0..s {
        let row = scores.row_mut(i);
        for item in row.iter_mut().skip(i + 1) {
            *item = f32::NEG_INFINITY;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_input_grad, check_param_grads};

    #[test]
    fn output_shape_matches_input() {
        let mut rng = DetRng::new(1);
        let mut attn = Attention::new("a", 8, 2, &mut rng);
        let x = Tensor::uniform((2 * 3, 8), -1.0, 1.0, &mut rng);
        let y = attn.forward(&x, 2, 3);
        assert_eq!(y.shape().as_2d(), (6, 8));
    }

    #[test]
    fn causality_first_token_ignores_future() {
        let mut rng = DetRng::new(2);
        let mut attn = Attention::new("a", 4, 1, &mut rng);
        let x1 = Tensor::uniform((3, 4), -1.0, 1.0, &mut rng);
        let y1 = attn.forward(&x1, 1, 3);
        // Perturb only the last token; earlier outputs must not change.
        let mut x2 = x1.clone();
        for v in x2.row_mut(2) {
            *v += 1.0;
        }
        let y2 = attn.forward(&x2, 1, 3);
        assert_eq!(y1.row(0), y2.row(0));
        assert_eq!(y1.row(1), y2.row(1));
        assert_ne!(y1.row(2), y2.row(2));
    }

    #[test]
    fn batches_are_independent() {
        let mut rng = DetRng::new(3);
        let mut attn = Attention::new("a", 4, 2, &mut rng);
        let xa = Tensor::uniform((2, 4), -1.0, 1.0, &mut rng);
        let xb = Tensor::uniform((2, 4), -1.0, 1.0, &mut rng);
        let joint = Tensor::concat_rows(&[&xa, &xb]);
        let y_joint = attn.forward(&joint, 2, 2);
        let ya = attn.forward(&xa, 1, 2);
        let yb = attn.forward(&xb, 1, 2);
        assert!(vela_tensor::approx_eq(
            y_joint.as_slice(),
            &[ya.as_slice(), yb.as_slice()].concat(),
            1e-5
        ));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = DetRng::new(4);
        let mut attn = Attention::new("a", 6, 2, &mut rng);
        let x = Tensor::uniform((2 * 3, 6), -1.0, 1.0, &mut rng);
        let gout = Tensor::uniform((6, 6), -1.0, 1.0, &mut rng);
        check_param_grads(
            &mut attn,
            |m, x| m.forward(x, 2, 3),
            |m, g| m.backward(g),
            &x,
            &gout,
            1e-2,
            5e-2,
        );
        check_input_grad(
            &mut attn,
            |m, x| m.forward(x, 2, 3),
            |m, g| m.backward(g),
            &x,
            &gout,
            1e-2,
            5e-2,
        );
    }

    #[test]
    fn lora_attention_trains_only_adapters() {
        let mut rng = DetRng::new(5);
        let mut attn = Attention::new("a", 4, 2, &mut rng);
        attn.freeze_base();
        attn.attach_lora(2, 4.0, &mut rng);
        let x = Tensor::uniform((2, 4), -1.0, 1.0, &mut rng);
        attn.forward(&x, 1, 2);
        attn.backward(&Tensor::ones((2, 4)));
        attn.visit_params(&mut |p| {
            if !p.is_trainable() {
                assert_eq!(p.grad.sum(), 0.0, "frozen {} has grad", p.name());
            }
        });
    }

    #[test]
    fn gqa_output_shape_and_param_savings() {
        let mut rng = DetRng::new(7);
        let mut gqa = Attention::with_kv_heads("a", 8, 4, 2, &mut rng);
        assert_eq!(gqa.heads(), 4);
        assert_eq!(gqa.kv_heads(), 2);
        let x = Tensor::uniform((6, 8), -1.0, 1.0, &mut rng);
        let y = gqa.forward(&x, 2, 3);
        assert_eq!(y.shape().as_2d(), (6, 8));
        // K/V projections are half the size of the MHA ones.
        let mut mha = Attention::new("b", 8, 4, &mut DetRng::new(7));
        assert!(gqa.param_count() < mha.param_count());
    }

    #[test]
    fn gqa_with_full_kv_heads_equals_mha() {
        let mut r1 = DetRng::new(9);
        let mut r2 = DetRng::new(9);
        let mut mha = Attention::new("a", 8, 4, &mut r1);
        let mut gqa = Attention::with_kv_heads("a", 8, 4, 4, &mut r2);
        let x = Tensor::uniform((4, 8), -1.0, 1.0, &mut DetRng::new(1));
        assert_eq!(mha.forward(&x, 1, 4), gqa.forward(&x, 1, 4));
    }

    #[test]
    fn gqa_gradients_match_finite_difference() {
        let mut rng = DetRng::new(10);
        let mut attn = Attention::with_kv_heads("a", 8, 4, 2, &mut rng);
        let x = Tensor::uniform((2 * 3, 8), -1.0, 1.0, &mut rng);
        let gout = Tensor::uniform((6, 8), -1.0, 1.0, &mut rng);
        check_param_grads(
            &mut attn,
            |m, x| m.forward(x, 2, 3),
            |m, g| m.backward(g),
            &x,
            &gout,
            1e-2,
            5e-2,
        );
        check_input_grad(
            &mut attn,
            |m, x| m.forward(x, 2, 3),
            |m, g| m.backward(g),
            &x,
            &gout,
            1e-2,
            5e-2,
        );
    }

    #[test]
    fn gqa_is_causal_too() {
        let mut rng = DetRng::new(11);
        let mut attn = Attention::with_kv_heads("a", 8, 4, 1, &mut rng);
        let x1 = Tensor::uniform((3, 8), -1.0, 1.0, &mut rng);
        let mut x2 = x1.clone();
        for v in x2.row_mut(2) {
            *v += 1.0;
        }
        let y1 = attn.forward(&x1, 1, 3);
        let y2 = attn.forward(&x2, 1, 3);
        assert_eq!(y1.row(0), y2.row(0));
        assert_eq!(y1.row(1), y2.row(1));
    }

    #[test]
    #[should_panic(expected = "divisible by kv_heads")]
    fn indivisible_kv_heads_panic() {
        Attention::with_kv_heads("a", 12, 4, 3, &mut DetRng::new(0));
    }

    #[test]
    #[should_panic(expected = "divisible by heads")]
    fn indivisible_heads_panic() {
        Attention::new("a", 6, 4, &mut DetRng::new(0));
    }

    #[test]
    #[should_panic(expected = "rows != batch*seq")]
    fn wrong_token_count_panics() {
        let mut rng = DetRng::new(6);
        let mut attn = Attention::new("a", 4, 1, &mut rng);
        attn.forward(&Tensor::zeros((5, 4)), 2, 3);
    }
}

//! Neural-network layers with explicit forward/backward passes.
//!
//! This crate implements every layer a Mixture-of-Experts transformer needs —
//! linear projections with optional [LoRA](lora) adapters, token
//! [embedding], [RMS normalization](rmsnorm), causal multi-head
//! [attention], the SwiGLU [expert FFN](swiglu) — together with the
//! [cross-entropy loss](loss) and the [optimizers](optim) (SGD and AdamW) used
//! by the VELA evaluation.
//!
//! Instead of a general autograd engine, each layer hand-implements its
//! backward pass and caches whatever activations it needs. Every backward
//! pass in the crate is validated against finite differences in its unit
//! tests (see [`gradcheck`]).
//!
//! # Example
//!
//! ```
//! use vela_nn::linear::Linear;
//! use vela_tensor::rng::DetRng;
//! use vela_tensor::Tensor;
//!
//! let mut rng = DetRng::new(0);
//! let mut layer = Linear::new("proj", 4, 2, &mut rng);
//! let x = Tensor::ones((3, 4));
//! let y = layer.forward(&x);
//! assert_eq!(y.shape().as_2d(), (3, 2));
//! ```

pub mod attention;
pub mod embedding;
pub mod gradcheck;
pub mod linear;
pub mod lora;
pub mod loss;
pub mod optim;
pub mod param;
pub mod rmsnorm;
pub mod swiglu;

pub use param::{Module, Param};

//! Linear projection with an optional LoRA adapter.

use vela_tensor::rng::DetRng;
use vela_tensor::{ops, Tensor};

use crate::lora::LoraAdapter;
use crate::param::{Module, Param};

/// A dense linear layer `y = x·W (+ b) (+ s·(x·A)·B)`.
///
/// The same struct serves both training regimes of the paper:
///
/// * **pre-training** — the base weight is trainable and there is no adapter;
/// * **LoRA fine-tuning** — [`freeze_base`](Self::freeze_base) freezes `W`
///   and [`attach_lora`](Self::attach_lora) adds a trainable low-rank update,
///   so only the adapter receives gradients.
///
/// Weights are stored `(in_dim, out_dim)` so the forward pass is a plain
/// row-major mat-mul over a `[tokens, features]` batch.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    lora: Option<LoraAdapter>,
    in_dim: usize,
    out_dim: usize,
    name: String,
    cached_x: Option<Tensor>,
}

impl Linear {
    /// Creates a trainable layer without bias, Xavier-initialized.
    pub fn new(name: impl Into<String>, in_dim: usize, out_dim: usize, rng: &mut DetRng) -> Self {
        let name = name.into();
        let std = (2.0 / (in_dim + out_dim) as f32).sqrt();
        Linear {
            weight: Param::new(
                format!("{name}.weight"),
                Tensor::normal((in_dim, out_dim), 0.0, std, rng),
            ),
            bias: None,
            lora: None,
            in_dim,
            out_dim,
            name,
            cached_x: None,
        }
    }

    /// Creates a trainable layer with a zero-initialized bias.
    pub fn with_bias(
        name: impl Into<String>,
        in_dim: usize,
        out_dim: usize,
        rng: &mut DetRng,
    ) -> Self {
        let mut layer = Linear::new(name, in_dim, out_dim, rng);
        layer.bias = Some(Param::new(
            format!("{}.bias", layer.name),
            Tensor::zeros(out_dim),
        ));
        layer
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer's name prefix.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Immutable view of the base weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable view of the base weight parameter (used by serialization).
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// The attached LoRA adapter, if any.
    pub fn lora(&self) -> Option<&LoraAdapter> {
        self.lora.as_ref()
    }

    /// Freezes the base weight (and bias) so the optimizer skips them.
    pub fn freeze_base(&mut self) {
        self.weight.set_trainable(false);
        if let Some(b) = &mut self.bias {
            b.set_trainable(false);
        }
    }

    /// Attaches a LoRA adapter with the given rank and `α`.
    ///
    /// # Panics
    /// Panics if an adapter is already attached or `rank` is zero.
    pub fn attach_lora(&mut self, rank: usize, alpha: f32, rng: &mut DetRng) {
        assert!(self.lora.is_none(), "{}: LoRA already attached", self.name);
        self.lora = Some(LoraAdapter::new(
            &self.name,
            self.in_dim,
            self.out_dim,
            rank,
            alpha,
            rng,
        ));
    }

    /// Merges the LoRA update into the base weight and removes the adapter.
    ///
    /// After merging, the layer computes the same function with a plain
    /// dense weight.
    pub fn merge_lora(&mut self) {
        if let Some(lora) = self.lora.take() {
            self.weight.value.add_assign(&lora.to_dense_delta());
        }
    }

    /// Forward pass over a `[tokens, in_dim]` batch.
    ///
    /// # Panics
    /// Panics if the input's column count is not `in_dim`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.cols(),
            self.in_dim,
            "{}: input cols {} != in_dim {}",
            self.name,
            x.cols(),
            self.in_dim
        );
        let mut y = x.matmul(&self.weight.value);
        if let Some(b) = &self.bias {
            y.add_row_broadcast_inplace(b.value.as_slice());
        }
        if let Some(lora) = &mut self.lora {
            y.add_assign(&lora.forward(x));
        }
        // Reuse the cache buffer across steps instead of reallocating.
        match &mut self.cached_x {
            Some(t) => t.copy_from(x),
            None => self.cached_x = Some(x.clone()),
        }
        y
    }

    /// Forward pass without caching activations (inference only).
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        let mut y = x.matmul(&self.weight.value);
        if let Some(b) = &self.bias {
            y = y.add_row_broadcast(b.value.as_slice());
        }
        if let Some(lora) = &self.lora {
            let xa = x.matmul(&lora.a.value);
            y.add_assign(&xa.matmul(&lora.b.value).scale(lora.scale()));
        }
        y
    }

    /// Backward pass: accumulates parameter gradients and returns the input
    /// gradient.
    ///
    /// # Panics
    /// Panics if called before [`forward`](Self::forward).
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_x
            .as_ref()
            .expect("Linear::backward called before forward");
        if self.weight.is_trainable() {
            let dw = x.matmul_tn(grad_out);
            self.weight.accumulate(&dw);
        }
        if let Some(b) = &mut self.bias {
            if b.is_trainable() {
                let db = Tensor::from_vec(self.out_dim, ops::sum_rows(grad_out));
                b.accumulate(&db);
            }
        }
        let mut grad_in = grad_out.matmul_nt(&self.weight.value);
        if let Some(lora) = &mut self.lora {
            grad_in.add_assign(&lora.backward(grad_out));
        }
        grad_in
    }
}

impl Module for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
        if let Some(lora) = &mut self.lora {
            lora.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_grads;

    #[test]
    fn forward_matches_manual_matmul() {
        let mut rng = DetRng::new(1);
        let mut layer = Linear::new("l", 3, 2, &mut rng);
        let x = Tensor::uniform((4, 3), -1.0, 1.0, &mut rng);
        let y = layer.forward(&x);
        let manual = x.matmul(&layer.weight().value);
        assert!(vela_tensor::approx_eq(
            y.as_slice(),
            manual.as_slice(),
            1e-6
        ));
    }

    #[test]
    fn bias_broadcasts_to_every_row() {
        let mut rng = DetRng::new(2);
        let mut layer = Linear::with_bias("l", 2, 2, &mut rng);
        layer.visit_params(&mut |p| {
            if p.name().ends_with("bias") {
                p.value = Tensor::from_vec(2usize, vec![1.0, -1.0]);
            }
        });
        let x = Tensor::zeros((3, 2));
        let y = layer.forward(&x);
        for i in 0..3 {
            assert_eq!(y.row(i), &[1.0, -1.0]);
        }
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut rng = DetRng::new(3);
        let mut layer = Linear::with_bias("l", 4, 3, &mut rng);
        let x = Tensor::uniform((5, 4), -1.0, 1.0, &mut rng);
        let gout = Tensor::uniform((5, 3), -1.0, 1.0, &mut rng);
        check_param_grads(
            &mut layer,
            |l, x| l.forward(x),
            |l, g| l.backward(g),
            &x,
            &gout,
            1e-2,
            1e-2,
        );
    }

    #[test]
    fn gradients_match_at_non_tile_multiple_dims() {
        // 13×17 → 9 straddles the 8×8 microkernel tiles on every axis, so
        // this exercises the zero-padded remainder lanes end to end.
        let mut rng = DetRng::new(31);
        let mut layer = Linear::with_bias("l", 17, 9, &mut rng);
        let x = Tensor::uniform((13, 17), -1.0, 1.0, &mut rng);
        let gout = Tensor::uniform((13, 9), -1.0, 1.0, &mut rng);
        check_param_grads(
            &mut layer,
            |l, x| l.forward(x),
            |l, g| l.backward(g),
            &x,
            &gout,
            1e-2,
            2e-2,
        );
    }

    #[test]
    fn lora_layer_gradients_match_finite_difference() {
        let mut rng = DetRng::new(4);
        let mut layer = Linear::new("l", 4, 3, &mut rng);
        layer.freeze_base();
        layer.attach_lora(2, 4.0, &mut rng);
        // Non-trivial B so gradients flow everywhere.
        layer.visit_params(&mut |p| {
            if p.name().ends_with("lora_b") {
                let mut r = DetRng::new(99);
                p.value = Tensor::uniform(p.value.shape().clone(), -0.5, 0.5, &mut r);
            }
        });
        let x = Tensor::uniform((5, 4), -1.0, 1.0, &mut rng);
        let gout = Tensor::uniform((5, 3), -1.0, 1.0, &mut rng);
        check_param_grads(
            &mut layer,
            |l, x| l.forward(x),
            |l, g| l.backward(g),
            &x,
            &gout,
            1e-2,
            1e-2,
        );
    }

    #[test]
    fn frozen_base_receives_no_gradient() {
        let mut rng = DetRng::new(5);
        let mut layer = Linear::new("l", 3, 3, &mut rng);
        layer.freeze_base();
        layer.attach_lora(2, 4.0, &mut rng);
        let x = Tensor::uniform((2, 3), -1.0, 1.0, &mut rng);
        layer.forward(&x);
        layer.backward(&Tensor::ones((2, 3)));
        assert_eq!(layer.weight().grad.sum(), 0.0);
    }

    #[test]
    fn merge_lora_preserves_function() {
        let mut rng = DetRng::new(6);
        let mut layer = Linear::new("l", 4, 4, &mut rng);
        layer.attach_lora(2, 8.0, &mut rng);
        layer.visit_params(&mut |p| {
            if p.name().ends_with("lora_b") {
                let mut r = DetRng::new(7);
                p.value = Tensor::uniform(p.value.shape().clone(), -0.5, 0.5, &mut r);
            }
        });
        let x = Tensor::uniform((3, 4), -1.0, 1.0, &mut rng);
        let before = layer.forward(&x);
        layer.merge_lora();
        assert!(layer.lora().is_none());
        let after = layer.forward(&x);
        assert!(vela_tensor::approx_eq(
            before.as_slice(),
            after.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut rng = DetRng::new(8);
        let mut layer = Linear::with_bias("l", 4, 2, &mut rng);
        layer.attach_lora(2, 4.0, &mut rng);
        let x = Tensor::uniform((3, 4), -1.0, 1.0, &mut rng);
        let inf = layer.forward_inference(&x);
        let train = layer.forward(&x);
        assert!(vela_tensor::approx_eq(
            inf.as_slice(),
            train.as_slice(),
            1e-6
        ));
    }

    #[test]
    fn visit_params_order_is_deterministic() {
        let mut rng = DetRng::new(9);
        let mut layer = Linear::with_bias("l", 2, 2, &mut rng);
        layer.attach_lora(1, 1.0, &mut rng);
        let mut names = Vec::new();
        layer.visit_params(&mut |p| names.push(p.name().to_string()));
        assert_eq!(names, vec!["l.weight", "l.bias", "l.lora_a", "l.lora_b"]);
    }

    #[test]
    #[should_panic(expected = "LoRA already attached")]
    fn double_attach_panics() {
        let mut rng = DetRng::new(10);
        let mut layer = Linear::new("l", 2, 2, &mut rng);
        layer.attach_lora(1, 1.0, &mut rng);
        layer.attach_lora(1, 1.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "input cols")]
    fn wrong_input_width_panics() {
        let mut rng = DetRng::new(11);
        let mut layer = Linear::new("l", 3, 2, &mut rng);
        layer.forward(&Tensor::zeros((1, 4)));
    }
}

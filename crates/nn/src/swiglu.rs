//! The SwiGLU feed-forward network used as the expert sub-network.
//!
//! Each expert in a Mixtral-style MoE block is a SwiGLU FFN:
//! `y = down( silu(gate(x)) ⊙ up(x) )`, with three linear projections that
//! can all carry LoRA adapters during fine-tuning.

use vela_tensor::rng::DetRng;
use vela_tensor::{ops, Tensor};

use crate::linear::Linear;
use crate::param::{Module, Param};

/// A SwiGLU feed-forward network (one "expert").
#[derive(Debug, Clone)]
pub struct SwiGlu {
    gate: Linear,
    up: Linear,
    down: Linear,
    dim: usize,
    hidden: usize,
    cached_gate_pre: Option<Tensor>,
    cached_up_out: Option<Tensor>,
    cached_gate_act: Option<Tensor>,
}

impl SwiGlu {
    /// Creates an expert FFN with model width `dim` and inner width
    /// `hidden`.
    pub fn new(name: impl Into<String>, dim: usize, hidden: usize, rng: &mut DetRng) -> Self {
        let name = name.into();
        SwiGlu {
            gate: Linear::new(format!("{name}.gate"), dim, hidden, rng),
            up: Linear::new(format!("{name}.up"), dim, hidden, rng),
            down: Linear::new(format!("{name}.down"), hidden, dim, rng),
            dim,
            hidden,
            cached_gate_pre: None,
            cached_up_out: None,
            cached_gate_act: None,
        }
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Inner (FFN) width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Freezes the three base projections (pre-trained weights).
    pub fn freeze_base(&mut self) {
        self.gate.freeze_base();
        self.up.freeze_base();
        self.down.freeze_base();
    }

    /// Attaches LoRA adapters of the given rank/α to all three projections.
    pub fn attach_lora(&mut self, rank: usize, alpha: f32, rng: &mut DetRng) {
        self.gate.attach_lora(rank, alpha, rng);
        self.up.attach_lora(rank, alpha, rng);
        self.down.attach_lora(rank, alpha, rng);
    }

    /// The `(rank, α)` of the attached LoRA adapters, if any — used to
    /// rebuild an architecturally identical expert when one migrates
    /// between workers.
    pub fn lora_spec(&self) -> Option<(usize, f32)> {
        self.gate
            .lora()
            .map(|l| (l.rank(), l.scale() * l.rank() as f32))
    }

    /// Whether the base projections are frozen (fine-tuning regime).
    pub fn base_frozen(&self) -> bool {
        !self.gate.weight().is_trainable()
    }

    /// Forward pass over `[tokens, dim]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let gate_pre = self.gate.forward(x);
        let up_out = self.up.forward(x);
        // Reuse last step's activation buffer instead of allocating.
        let mut gate_act = match self.cached_gate_act.take() {
            Some(t) => t,
            None => Tensor::zeros(1usize),
        };
        ops::silu_into(&gate_pre, &mut gate_act);
        let inner = gate_act.mul(&up_out);
        let out = self.down.forward(&inner);
        self.cached_gate_pre = Some(gate_pre);
        self.cached_up_out = Some(up_out);
        self.cached_gate_act = Some(gate_act);
        out
    }

    /// Backward pass: accumulates all projection gradients and returns the
    /// input gradient.
    ///
    /// # Panics
    /// Panics if called before [`forward`](Self::forward).
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let gate_pre = self
            .cached_gate_pre
            .as_ref()
            .expect("SwiGlu::backward called before forward");
        let up_out = self.cached_up_out.as_ref().expect("cache missing");
        let gate_act = self.cached_gate_act.as_ref().expect("cache missing");

        let g_inner = self.down.backward(grad_out);
        // inner = silu(gate_pre) ⊙ up_out
        let g_up = g_inner.mul(gate_act);
        let g_gate_act = g_inner.mul(up_out);
        // Fused g ⊙ silu'(gate_pre): same per-element order of operations as
        // mul(silu_grad(..)), without materializing the derivative tensor.
        let g_gate_pre = g_gate_act.zip(gate_pre, |g, x| {
            let s = ops::sigmoid(x);
            let d = s * (1.0 + x * (1.0 - s));
            g * d
        });

        let gin_up = self.up.backward(&g_up);
        let gin_gate = self.gate.backward(&g_gate_pre);
        gin_up.add(&gin_gate)
    }
}

impl Module for SwiGlu {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gate.visit_params(f);
        self.up.visit_params(f);
        self.down.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_input_grad, check_param_grads};

    #[test]
    fn output_shape_matches_input() {
        let mut rng = DetRng::new(1);
        let mut ffn = SwiGlu::new("e", 6, 12, &mut rng);
        let x = Tensor::uniform((4, 6), -1.0, 1.0, &mut rng);
        let y = ffn.forward(&x);
        assert_eq!(y.shape().as_2d(), (4, 6));
        assert_eq!(ffn.dim(), 6);
        assert_eq!(ffn.hidden(), 12);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = DetRng::new(2);
        let mut ffn = SwiGlu::new("e", 4, 6, &mut rng);
        let x = Tensor::uniform((3, 4), -1.0, 1.0, &mut rng);
        let gout = Tensor::uniform((3, 4), -1.0, 1.0, &mut rng);
        check_param_grads(
            &mut ffn,
            |m, x| m.forward(x),
            |m, g| m.backward(g),
            &x,
            &gout,
            1e-2,
            3e-2,
        );
        check_input_grad(
            &mut ffn,
            |m, x| m.forward(x),
            |m, g| m.backward(g),
            &x,
            &gout,
            1e-2,
            3e-2,
        );
    }

    #[test]
    fn gradients_match_at_non_tile_multiple_dims() {
        // dim 9, hidden 17: remainder tiles in all three projections.
        let mut rng = DetRng::new(23);
        let mut ffn = SwiGlu::new("e", 9, 17, &mut rng);
        let x = Tensor::uniform((11, 9), -1.0, 1.0, &mut rng);
        let gout = Tensor::uniform((11, 9), -1.0, 1.0, &mut rng);
        check_input_grad(
            &mut ffn,
            |m, x| m.forward(x),
            |m, g| m.backward(g),
            &x,
            &gout,
            1e-2,
            3e-2,
        );
    }

    #[test]
    fn lora_fine_tune_gradients_only_on_adapters() {
        let mut rng = DetRng::new(3);
        let mut ffn = SwiGlu::new("e", 4, 6, &mut rng);
        ffn.freeze_base();
        ffn.attach_lora(2, 4.0, &mut rng);
        let x = Tensor::uniform((3, 4), -1.0, 1.0, &mut rng);
        ffn.forward(&x);
        ffn.backward(&Tensor::ones((3, 4)));
        ffn.visit_params(&mut |p| {
            if p.name().contains("lora_a") {
                // lora_b starts at zero, so only dB is nonzero at step 0 for
                // gate/up; down's lora_a gets gradient through inner path.
                return;
            }
            if !p.is_trainable() {
                assert_eq!(p.grad.sum(), 0.0, "frozen {} has gradient", p.name());
            }
        });
        let mut trainable = 0;
        ffn.visit_params(&mut |p| {
            if p.is_trainable() {
                trainable += 1;
            }
        });
        assert_eq!(trainable, 6, "three adapters, two matrices each");
    }

    #[test]
    fn lora_gradients_match_finite_difference() {
        let mut rng = DetRng::new(4);
        let mut ffn = SwiGlu::new("e", 4, 5, &mut rng);
        ffn.freeze_base();
        ffn.attach_lora(2, 4.0, &mut rng);
        // Randomize lora_b so every adapter path carries signal.
        let mut r = DetRng::new(55);
        ffn.visit_params(&mut |p| {
            if p.name().ends_with("lora_b") {
                p.value = Tensor::uniform(p.value.shape().clone(), -0.3, 0.3, &mut r);
            }
        });
        let x = Tensor::uniform((2, 4), -1.0, 1.0, &mut rng);
        let gout = Tensor::uniform((2, 4), -1.0, 1.0, &mut rng);
        check_param_grads(
            &mut ffn,
            |m, x| m.forward(x),
            |m, g| m.backward(g),
            &x,
            &gout,
            1e-2,
            3e-2,
        );
    }
}

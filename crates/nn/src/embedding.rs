//! Token embedding table.

use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

use crate::param::{Module, Param};

/// A learned token-embedding table of shape `(vocab, dim)`.
///
/// The forward pass gathers one row per token id; the backward pass
/// scatter-adds the output gradient back into the table (only when the table
/// is trainable — it is frozen during LoRA fine-tuning).
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Param,
    vocab: usize,
    dim: usize,
    cached_tokens: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates a trainable embedding table with `N(0, 0.02)` initialization.
    pub fn new(name: impl Into<String>, vocab: usize, dim: usize, rng: &mut DetRng) -> Self {
        let name = name.into();
        Embedding {
            table: Param::new(
                format!("{name}.table"),
                Tensor::normal((vocab, dim), 0.0, 0.02, rng),
            ),
            vocab,
            dim,
            cached_tokens: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Freezes the table (used in fine-tuning).
    pub fn freeze(&mut self) {
        self.table.set_trainable(false);
    }

    /// Looks up embeddings for a token-id sequence, producing
    /// `[tokens.len(), dim]`.
    ///
    /// # Panics
    /// Panics if any id is out of the vocabulary.
    pub fn forward(&mut self, tokens: &[usize]) -> Tensor {
        for &t in tokens {
            assert!(t < self.vocab, "token id {t} out of vocab {}", self.vocab);
        }
        self.cached_tokens = Some(tokens.to_vec());
        self.table.value.gather_rows(tokens)
    }

    /// Accumulates the table gradient from the output gradient.
    ///
    /// # Panics
    /// Panics if called before [`forward`](Self::forward).
    pub fn backward(&mut self, grad_out: &Tensor) {
        let tokens = self
            .cached_tokens
            .as_ref()
            .expect("Embedding::backward called before forward");
        if self.table.is_trainable() {
            let mut dtable = Tensor::zeros((self.vocab, self.dim));
            dtable.scatter_add_rows(tokens, grad_out);
            self.table.accumulate(&dtable);
        }
    }
}

impl Module for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_gathers_rows() {
        let mut rng = DetRng::new(1);
        let mut emb = Embedding::new("e", 5, 3, &mut rng);
        let out = emb.forward(&[2, 2, 0]);
        assert_eq!(out.rows(), 3);
        assert_eq!(out.row(0), out.row(1));
        let mut table_row0 = [0.0; 3];
        emb.visit_params(&mut |p| table_row0.copy_from_slice(p.value.row(0)));
        assert_eq!(out.row(2), &table_row0[..]);
    }

    #[test]
    fn backward_accumulates_per_token() {
        let mut rng = DetRng::new(2);
        let mut emb = Embedding::new("e", 4, 2, &mut rng);
        emb.forward(&[1, 1, 3]);
        let g = Tensor::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[0.0, 5.0]]);
        emb.backward(&g);
        let mut grad = Tensor::default();
        emb.visit_params(&mut |p| grad = p.grad.clone());
        assert_eq!(grad.row(1), &[3.0, 0.0]);
        assert_eq!(grad.row(3), &[0.0, 5.0]);
        assert_eq!(grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn frozen_table_gets_no_gradient() {
        let mut rng = DetRng::new(3);
        let mut emb = Embedding::new("e", 4, 2, &mut rng);
        emb.freeze();
        emb.forward(&[0]);
        emb.backward(&Tensor::ones((1, 2)));
        let mut grad_sum = 1.0;
        emb.visit_params(&mut |p| grad_sum = p.grad.sum());
        assert_eq!(grad_sum, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn out_of_vocab_panics() {
        let mut rng = DetRng::new(4);
        Embedding::new("e", 4, 2, &mut rng).forward(&[4]);
    }
}

//! Bitwise parity for the per-head parallel attention loops.
//!
//! Attention forward/backward fan out over `(batch, head)` pairs; the
//! merge back into shared buffers stays serial and in head order, so the
//! whole layer must be bitwise-identical at any thread count — including
//! under grouped-query attention, where several query heads accumulate
//! gradients into one shared KV head.

use vela_nn::attention::Attention;
use vela_tensor::parallel::{with_pool, ThreadPool};
use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Forward + backward under a fresh identically-seeded layer, returning
/// (output bits, input-gradient bits).
fn run(threads: usize, heads: usize, kv_heads: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let (batch, seq, dim) = (3, 7, 24);
    let mut rng = DetRng::new(seed);
    let mut attn = Attention::with_kv_heads("attn", dim, heads, kv_heads, &mut rng);
    let x = Tensor::uniform((batch * seq, dim), -1.0, 1.0, &mut rng);
    let g = Tensor::uniform((batch * seq, dim), -1.0, 1.0, &mut rng);
    let pool = ThreadPool::new(threads);
    with_pool(&pool, || {
        let y = attn.forward(&x, batch, seq);
        let gx = attn.backward(&g);
        (bits(&y), bits(&gx))
    })
}

#[test]
fn attention_is_bitwise_identical_at_any_thread_count() {
    let reference = run(1, 4, 4, 11);
    for threads in [2, 3, 5, 8] {
        assert_eq!(run(threads, 4, 4, 11), reference, "{threads} threads");
    }
}

#[test]
fn grouped_query_attention_parity_with_shared_kv_heads() {
    // 6 query heads over 2 KV heads: three query heads per KV head all
    // add gradients into the same buffer — the serial merge must keep
    // that accumulation order fixed.
    let reference = run(1, 6, 2, 23);
    for threads in [2, 4, 7] {
        assert_eq!(run(threads, 6, 2, 23), reference, "{threads} threads");
    }
}

//! Randomized property tests for the layer zoo.
//!
//! Each property is checked over many [`DetRng`]-seeded random cases, so
//! the suite is fully deterministic and needs no external test framework.

use vela_nn::attention::Attention;
use vela_nn::linear::Linear;
use vela_nn::loss::cross_entropy;
use vela_nn::optim::{AdamW, AdamWConfig, Sgd};
use vela_nn::param::{Module, Param};
use vela_nn::rmsnorm::RmsNorm;
use vela_nn::swiglu::SwiGlu;
use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

const CASES: u64 = 24;

fn tensor(rows: usize, cols: usize, seed: u64, scale: f32) -> Tensor {
    let mut rng = DetRng::new(seed);
    Tensor::uniform((rows, cols), -scale, scale, &mut rng)
}

/// A linear layer without bias is, well, linear.
#[test]
fn linear_is_linear() {
    for seed in 0..CASES {
        let mut case = DetRng::new(seed ^ 0xA11CE);
        let (a, b) = (case.uniform(-2.0, 2.0), case.uniform(-2.0, 2.0));
        let mut layer = Linear::new("l", 5, 3, &mut DetRng::new(seed));
        let x = tensor(4, 5, seed ^ 1, 1.0);
        let y = tensor(4, 5, seed ^ 2, 1.0);
        let lhs = layer.forward(&x.scale(a).add(&y.scale(b)));
        let rhs = layer.forward(&x).scale(a).add(&layer.forward(&y).scale(b));
        assert!(
            vela_tensor::approx_eq(lhs.as_slice(), rhs.as_slice(), 1e-3),
            "seed {seed}"
        );
    }
}

/// RMSNorm output never depends on the input's overall scale.
#[test]
fn rmsnorm_scale_invariant() {
    for seed in 0..CASES {
        let scale = DetRng::new(seed ^ 0xBEEF).uniform(0.1, 50.0);
        let mut norm = RmsNorm::new("n", 6, &mut DetRng::new(seed));
        let x = tensor(3, 6, seed, 2.0);
        let y1 = norm.forward(&x);
        let y2 = norm.forward(&x.scale(scale));
        assert!(
            vela_tensor::approx_eq(y1.as_slice(), y2.as_slice(), 1e-2),
            "seed {seed} scale {scale}"
        );
    }
}

/// Attention is causal for arbitrary inputs: earlier outputs ignore
/// later-token perturbations.
#[test]
fn attention_is_causal() {
    for seed in 0..CASES {
        let bump = DetRng::new(seed ^ 0xCAFE).uniform(0.5, 3.0);
        let mut attn = Attention::new("a", 8, 2, &mut DetRng::new(seed));
        let x1 = tensor(4, 8, seed ^ 9, 1.0);
        let mut x2 = x1.clone();
        for v in x2.row_mut(3) {
            *v += bump;
        }
        let y1 = attn.forward(&x1, 1, 4);
        let y2 = attn.forward(&x2, 1, 4);
        for t in 0..3 {
            assert_eq!(
                y1.row(t),
                y2.row(t),
                "seed {seed}: token {t} leaked the future"
            );
        }
    }
}

/// Expert FFN gradients accumulate additively across backward calls.
#[test]
fn swiglu_grads_accumulate() {
    for seed in 0..CASES {
        let mut ffn = SwiGlu::new("e", 4, 6, &mut DetRng::new(seed));
        let x = tensor(3, 4, seed ^ 5, 1.0);
        let g = tensor(3, 4, seed ^ 6, 1.0);
        ffn.forward(&x);
        ffn.backward(&g);
        let mut once = Vec::new();
        ffn.visit_params(&mut |p| once.push(p.grad.clone()));
        ffn.forward(&x);
        ffn.backward(&g);
        let mut idx = 0;
        ffn.visit_params(&mut |p| {
            assert!(
                vela_tensor::approx_eq(p.grad.as_slice(), once[idx].scale(2.0).as_slice(), 1e-3),
                "seed {seed}: second backward must double the gradient of {}",
                p.name()
            );
            idx += 1;
        });
    }
}

/// Cross-entropy is non-negative and its gradient rows sum to zero.
#[test]
fn cross_entropy_invariants() {
    for seed in 0..CASES {
        let logits = tensor(5, 7, seed, 4.0);
        let mut rng = DetRng::new(seed ^ 77);
        let targets: Vec<usize> = (0..5).map(|_| rng.below(7)).collect();
        let (loss, grad) = cross_entropy(&logits, &targets);
        assert!(loss >= 0.0, "seed {seed}");
        for i in 0..5 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-5, "seed {seed} row {i}: grad sum {s}");
        }
    }
}

/// Both optimizers shrink a random convex quadratic.
#[test]
fn optimizers_descend() {
    for seed in 0..CASES {
        let init = tensor(1, 6, seed, 3.0).into_vec();
        for sgd in [true, false] {
            let mut params = vec![Param::new("w", Tensor::from_vec(6usize, init.clone()))];
            let mut sgd_opt = Sgd::new(0.1);
            let mut adam_opt = AdamW::new(AdamWConfig {
                lr: 0.1,
                ..AdamWConfig::default()
            });
            let start = params[0].value.norm();
            for _ in 0..60 {
                let g = params[0].value.clone();
                params[0].zero_grad();
                params[0].accumulate(&g);
                if sgd {
                    sgd_opt.step(&mut params);
                } else {
                    adam_opt.step(&mut params);
                }
            }
            assert!(
                params[0].value.norm() < start * 0.5 + 1e-3,
                "seed {seed}: {} failed to descend",
                if sgd { "sgd" } else { "adamw" }
            );
        }
    }
}

/// LoRA merging is exact for any adapter contents.
#[test]
fn lora_merge_exact() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let mut layer = Linear::new("l", 5, 4, &mut rng);
        layer.attach_lora(2, 6.0, &mut rng);
        layer.visit_params(&mut |p| {
            if p.name().contains("lora") {
                let mut r = DetRng::new(seed ^ 0xAB);
                p.value = Tensor::uniform(p.value.shape().clone(), -0.5, 0.5, &mut r);
            }
        });
        let x = tensor(3, 5, seed ^ 0xCD, 1.0);
        let before = layer.forward(&x);
        layer.merge_lora();
        let after = layer.forward(&x);
        assert!(
            vela_tensor::approx_eq(before.as_slice(), after.as_slice(), 1e-3),
            "seed {seed}"
        );
    }
}

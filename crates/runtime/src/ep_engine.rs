//! Conventional expert parallelism — the paper's primary baseline (Fig. 2).
//!
//! Every device replicates the backbone and hosts expert `e` of every
//! block at device `e mod N`. Inputs are sharded data-parallel; tokens are
//! exchanged through all-to-all collectives, each preceded by the *status
//! synchronization* round in which devices agree on receive counts — the
//! overhead the paper identifies as EP's structural disadvantage (§V-B).
//! At step end, the replicated non-expert (LoRA) gradients are all-reduced.
//!
//! The engine is driven by the same sampled routing as the master–worker
//! engines and records its transfers in the same [`TrafficLedger`], so
//! Fig. 5/6 comparisons are apples-to-apples.

use vela_cluster::{CostModel, DeviceId, StepTraffic, TimeBreakdown, Topology, TrafficLedger};
use vela_locality::LocalityProfile;
use vela_obs::LazyCounter;
use vela_tensor::rng::DetRng;

/// Status-synchronization rounds paid by the EP baseline (two per block
/// per step: one before each all-to-all pair).
static EP_SYNC_ROUNDS: LazyCounter = LazyCounter::new("runtime.ep.sync_rounds");

use crate::metrics::{backbone_flops_per_token, backbone_lora_grad_bytes, StepMetrics};
use crate::routing::{sample_sharded_counts, shard_tokens};
use crate::virtual_engine::ScaleConfig;

/// A conventional expert-parallelism session at evaluation scale.
#[derive(Debug)]
pub struct EpEngine {
    cost: CostModel,
    ledger: TrafficLedger,
    devices: Vec<DeviceId>,
    profile: LocalityProfile,
    scale: ScaleConfig,
    rng: DetRng,
    step: usize,
}

impl EpEngine {
    /// Creates an EP session over `devices` (all of them replicate the
    /// backbone and host `1/N` of the experts).
    ///
    /// # Panics
    /// Panics if fewer than two devices are given or the profile shape
    /// disagrees with the spec.
    pub fn new(
        topology: Topology,
        devices: Vec<DeviceId>,
        profile: LocalityProfile,
        scale: ScaleConfig,
    ) -> Self {
        assert!(devices.len() >= 2, "EP needs at least two devices");
        assert_eq!(
            profile.blocks(),
            scale.spec.blocks,
            "profile block mismatch"
        );
        assert_eq!(
            profile.experts(),
            scale.spec.experts,
            "profile expert mismatch"
        );
        let rng = DetRng::new(scale.seed);
        EpEngine {
            cost: CostModel::new(topology.clone()),
            ledger: TrafficLedger::new(topology),
            devices,
            profile,
            scale,
            rng,
            step: 0,
        }
    }

    /// The device hosting expert `e` (the paper's `e mod N` rule).
    pub fn host_of(&self, expert: usize) -> DeviceId {
        self.devices[expert % self.devices.len()]
    }

    /// The (drifting) locality profile.
    pub fn profile(&self) -> &LocalityProfile {
        &self.profile
    }

    /// Label for the EP baseline's "transport": the engine simulates
    /// all-to-all exchanges arithmetically, so no pluggable backend ever
    /// carries its bytes.
    pub fn transport_label(&self) -> &'static str {
        "local"
    }

    /// Runs one EP fine-tuning step.
    pub fn step(&mut self) -> StepMetrics {
        self.step += 1;
        vela_obs::step_begin(self.step as u64);
        let _span = vela_obs::span("runtime.ep.step");
        self.ledger.take_step();
        let spec = self.scale.spec;
        let n = self.devices.len();
        let shards = shard_tokens(self.scale.tokens(), n);
        let token_bytes = spec.token_bytes();
        let mut time = TimeBreakdown::default();

        for block in 0..spec.blocks {
            let counts =
                sample_sharded_counts(&self.profile, block, &shards, spec.top_k, &mut self.rng);

            // Per ordered (src, host) pair: bytes of tokens moving for this
            // block (forward dispatch direction).
            let mut pair_bytes: Vec<Vec<u64>> = vec![vec![0; n]; n];
            let mut host_rows = vec![0u64; n];
            for (src, per_expert) in counts.iter().enumerate() {
                for (expert, &c) in per_expert.iter().enumerate() {
                    let host = expert % n;
                    host_rows[host] += c as u64;
                    if src != host {
                        pair_bytes[src][host] += c as u64 * token_bytes;
                    }
                }
            }

            // Four exchanges per block: features out/back (forward pass),
            // gradients out/back (backward pass). Dispatch-direction pairs
            // and their transposes carry the same byte counts.
            let dispatch: Vec<(DeviceId, DeviceId, u64)> = iter_pairs(&self.devices, &pair_bytes);
            let gather: Vec<(DeviceId, DeviceId, u64)> = dispatch
                .iter()
                .map(|&(a, b, bytes)| (b, a, bytes))
                .collect();
            for phase in [&dispatch, &gather, &dispatch, &gather] {
                for &(src, dst, bytes) in phase.iter() {
                    self.ledger.record(src, dst, bytes);
                }
                time.comm_s += self.cost.all_to_all_time(phase);
            }
            // One status-sync round per all-to-all pair (forward, backward).
            time.sync_s += 2.0 * self.cost.all_to_all_sync_time(&self.devices);
            EP_SYNC_ROUNDS.add(2);
            if vela_obs::tracing() {
                let mut per_expert = vec![0usize; spec.experts];
                for per_shard in &counts {
                    for (expert, &c) in per_shard.iter().enumerate() {
                        per_expert[expert] += c;
                    }
                }
                let rows: Vec<(usize, usize)> = per_expert
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(e, &c)| (e, c))
                    .collect();
                vela_obs::expert_rows("runtime", "fwd", block, &rows);
            }

            // Expert compute: hosts process their tokens in parallel
            // (forward + double-cost backward).
            let expert_compute = self
                .devices
                .iter()
                .zip(&host_rows)
                .map(|(&d, &rows)| {
                    self.cost
                        .compute_time(d, rows as f64 * spec.expert_flops_per_token() * 3.0)
                })
                .fold(0.0, f64::max);
            time.compute_s += expert_compute;
        }

        // Replicated backbone computes its shard in parallel.
        let max_shard = *shards.iter().max().expect("devices nonempty") as f64;
        let backbone = max_shard * backbone_flops_per_token(&spec, self.scale.seq) * 3.0;
        time.compute_s += self.cost.compute_time(self.devices[0], backbone);

        // Gradient all-reduce of the replicated (LoRA) parameters.
        let grad_bytes = backbone_lora_grad_bytes(&spec, self.scale.lora_rank);
        time.comm_s += self.cost.allreduce_time(&self.devices, grad_bytes);
        let per_hop = 2 * (n as u64 - 1) * grad_bytes / n as u64;
        for i in 0..n {
            self.ledger
                .record(self.devices[i], self.devices[(i + 1) % n], per_hop);
        }

        self.profile.sharpen(self.scale.drift);
        let traffic: StepTraffic = self.ledger.take_step();
        StepMetrics {
            step: self.step,
            loss: None,
            traffic,
            time,
        }
    }

    /// Runs `steps` steps.
    pub fn run(&mut self, steps: usize) -> Vec<StepMetrics> {
        (0..steps).map(|_| self.step()).collect()
    }
}

fn iter_pairs(devices: &[DeviceId], pair_bytes: &[Vec<u64>]) -> Vec<(DeviceId, DeviceId, u64)> {
    let mut out = Vec::new();
    for (src, row) in pair_bytes.iter().enumerate() {
        for (dst, &bytes) in row.iter().enumerate() {
            if bytes > 0 {
                out.push((devices[src], devices[dst], bytes));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RunSummary;
    use vela_model::MoeSpec;

    fn small_spec() -> MoeSpec {
        MoeSpec {
            blocks: 4,
            experts: 8,
            top_k: 2,
            hidden: 4096,
            ffn: 14336,
            bits: 16,
        }
    }

    fn engine(zipf: f64) -> EpEngine {
        let spec = small_spec();
        let scale = ScaleConfig {
            batch: 8,
            seq: 128,
            ..ScaleConfig::paper_default(spec)
        };
        let profile = LocalityProfile::synthetic("p", spec.blocks, spec.experts, zipf, 5);
        EpEngine::new(
            Topology::paper_testbed(),
            (0..6).map(DeviceId).collect(),
            profile,
            scale,
        )
    }

    #[test]
    fn ep_step_produces_traffic_and_time() {
        let mut ep = engine(1.0);
        let m = ep.step();
        assert!(m.traffic.external_total() > 0);
        assert!(m.traffic.internal_bytes > 0, "same-node exchanges exist");
        assert!(m.time.comm_s > 0.0);
        assert!(m.time.sync_s > 0.0, "EP pays the status-sync rounds");
        assert!(m.time.compute_s > 0.0);
    }

    #[test]
    fn ep_traffic_magnitude_matches_structure() {
        // With near-uniform routing, ~(N-1)/N of assignments leave their
        // source device and 4 phases move them, so total ≈
        // 4 · assignments · (5/6) · 8 KiB + all-reduce ring.
        let mut ep = engine(0.05);
        let m = ep.step();
        let spec = small_spec();
        let assignments = (8 * 128 * spec.top_k) as u64;
        let expected_tokens = spec.blocks as u64 * 4 * assignments * 5 / 6 * spec.token_bytes();
        let total = m.traffic.total_bytes;
        assert!(
            total > expected_tokens / 2 && total < expected_tokens * 2,
            "total {total} vs expected ≈ {expected_tokens}"
        );
    }

    #[test]
    fn host_mapping_is_mod_n() {
        let ep = engine(1.0);
        assert_eq!(ep.host_of(0), DeviceId(0));
        assert_eq!(ep.host_of(7), DeviceId(1));
        assert_eq!(ep.host_of(5), DeviceId(5));
    }

    #[test]
    fn sync_overhead_scales_with_blocks() {
        let mut ep = engine(1.0);
        let m = ep.step();
        let per_block_sync = 2.0 * ep.cost.all_to_all_sync_time(&ep.devices);
        assert!((m.time.sync_s - 4.0 * per_block_sync).abs() < 1e-9);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = RunSummary::from_steps(&engine(1.2).run(3));
        let b = RunSummary::from_steps(&engine(1.2).run(3));
        assert_eq!(a, b);
    }

    #[test]
    fn allreduce_traffic_is_a_small_fraction() {
        // The paper: EP's gradient sync makes it only *slightly* higher
        // than sequential/random in traffic.
        let mut ep = engine(1.0);
        let m = ep.step();
        let spec = small_spec();
        let grad = backbone_lora_grad_bytes(&spec, 8);
        let n = 6u64;
        let ring_total = n * (2 * (n - 1) * grad / n);
        assert!(
            (ring_total as f64) < 0.25 * m.traffic.total_bytes as f64,
            "ring {ring_total} vs total {}",
            m.traffic.total_bytes
        );
    }

    #[test]
    #[should_panic(expected = "at least two devices")]
    fn single_device_panics() {
        let spec = small_spec();
        EpEngine::new(
            Topology::paper_testbed(),
            vec![DeviceId(0)],
            LocalityProfile::synthetic("p", spec.blocks, spec.experts, 1.0, 1),
            ScaleConfig::paper_default(spec),
        );
    }
}

//! Step metrics and the Eq. (5)–(7) time model shared by all engines.

use vela_cluster::{CostModel, DeviceId, StepTraffic, TimeBreakdown};
use vela_model::MoeSpec;

use crate::broker::{Pass, PhaseLog};

/// Everything measured about one fine-tuning step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepMetrics {
    /// Step index (1-based).
    pub step: usize,
    /// Training loss, when the engine computes real tensors.
    pub loss: Option<f32>,
    /// Byte-accurate traffic for the step.
    pub traffic: StepTraffic,
    /// Simulated time for the step.
    pub time: TimeBreakdown,
}

/// Where a run's *measured* exchange wall time went, in µs per step —
/// averaged from the `runtime.pipeline.*` and `runtime.worker.serve_us`
/// counters, so it reflects real elapsed time on this host, unlike the
/// simulated [`TimeBreakdown`] columns.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseAttribution {
    /// Master time encoding + enqueueing dispatch frames.
    pub serialize_us: f64,
    /// Master time blocked draining replies (chunks in flight).
    pub inflight_us: f64,
    /// Slice of the inflight window spent in ring-full backpressure.
    pub stall_us: f64,
    /// Worker expert-serve time. Zero when workers run in separate
    /// processes (their counters live in the worker traces, not here).
    pub compute_us: f64,
    /// Master time delivering completed chunk prefixes to the sink.
    pub combine_us: f64,
    /// Exchange wall time (dispatch through last reply).
    pub exchange_us: f64,
    /// Ring-full stall events per step.
    pub stalls: f64,
}

impl PhaseAttribution {
    /// The wire share of the inflight window: what remains after worker
    /// compute and ring-full stalls, clamped at zero. Only meaningful
    /// when `compute_us` was measured in this process (threaded modes).
    pub fn wire_us(&self) -> f64 {
        (self.inflight_us - self.stall_us - self.compute_us).max(0.0)
    }
}

/// Replication facts attached to a run when `VELA_REPLICATION` places
/// extra expert copies — the fig6 `replication` column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationSummary {
    /// Maximum replica count over all (block, expert) pairs.
    pub max_degree: usize,
    /// Mean replica count over all (block, expert) pairs.
    pub avg_degree: f64,
    /// Mean replica gradient-sync bytes per step (subset of the total
    /// byte columns, not an addition to them).
    pub sync_bytes_per_step: f64,
    /// Max/mean routed token rows per worker over the run; 1.0 is a
    /// perfectly balanced fleet, higher means a straggler.
    pub straggler_index: f64,
}

/// Max/mean per-worker routed rows across one or more steps' phase
/// logs — the routing-skew straggler index replication is meant to
/// flatten. Returns 1.0 (balanced) for empty input or an idle fleet.
pub fn routing_straggler_index(logs: &[PhaseLog]) -> f64 {
    let workers = logs.first().map_or(0, |l| l.rows.len());
    if workers == 0 {
        return 1.0;
    }
    let mut totals = vec![0u64; workers];
    for log in logs {
        for (t, &r) in totals.iter_mut().zip(&log.rows) {
            *t += r;
        }
    }
    let max = *totals.iter().max().expect("workers > 0") as f64;
    let mean = totals.iter().sum::<u64>() as f64 / workers as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// Aggregates of a run, used by the figure harnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Mean cross-node traffic per node per step, bytes (the Fig. 5 line).
    pub avg_external_per_node: f64,
    /// Mean simulated step time, seconds (the Fig. 6 bar).
    pub avg_step_time: f64,
    /// Standard deviation of the step time.
    pub std_step_time: f64,
    /// Median step time, seconds (nearest-rank percentile).
    pub p50_step_time: f64,
    /// 95th-percentile step time, seconds (nearest-rank).
    pub p95_step_time: f64,
    /// 99th-percentile step time, seconds (nearest-rank).
    pub p99_step_time: f64,
    /// Mean communication seconds per step.
    pub avg_comm_time: f64,
    /// Mean synchronization seconds per step.
    pub avg_sync_time: f64,
    /// Total bytes moved over the run.
    pub total_bytes: u64,
    /// Number of steps.
    pub steps: usize,
    /// Label of the transport that carried the run's traffic (`channel`,
    /// `tcp-threads`, `tcp`, or `local` for the transport-free EP
    /// baseline). Purely descriptive — the byte and time columns are
    /// transport-independent.
    pub transport: &'static str,
    /// Measured per-step phase attribution, when the engine captured
    /// counter deltas around the run (requires `VELA_TRACE`).
    pub attribution: Option<PhaseAttribution>,
    /// Replication facts, when the run placed extra expert copies.
    pub replication: Option<ReplicationSummary>,
}

impl RunSummary {
    /// Summarizes a run.
    ///
    /// # Panics
    /// Panics if `steps` is empty.
    pub fn from_steps(steps: &[StepMetrics]) -> Self {
        assert!(!steps.is_empty(), "summary needs at least one step");
        let n = steps.len() as f64;
        let avg_external_per_node = steps
            .iter()
            .map(|s| s.traffic.external_avg_per_node())
            .sum::<f64>()
            / n;
        let times: Vec<f64> = steps.iter().map(|s| s.time.total()).collect();
        let avg_step_time = times.iter().sum::<f64>() / n;
        let var = times
            .iter()
            .map(|t| (t - avg_step_time).powi(2))
            .sum::<f64>()
            / n;
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("step times are finite"));
        RunSummary {
            avg_external_per_node,
            avg_step_time,
            std_step_time: var.sqrt(),
            p50_step_time: percentile(&sorted, 0.50),
            p95_step_time: percentile(&sorted, 0.95),
            p99_step_time: percentile(&sorted, 0.99),
            avg_comm_time: steps.iter().map(|s| s.time.comm_s).sum::<f64>() / n,
            avg_sync_time: steps.iter().map(|s| s.time.sync_s).sum::<f64>() / n,
            total_bytes: steps.iter().map(|s| s.traffic.total_bytes).sum(),
            steps: steps.len(),
            transport: crate::transport::TransportConfig::from_env().label(),
            attribution: None,
            replication: None,
        }
    }

    /// Mean `sync_bytes` per step — replica gradient-sync traffic as the
    /// ledger recorded it.
    pub fn avg_sync_bytes(steps: &[StepMetrics]) -> f64 {
        if steps.is_empty() {
            return 0.0;
        }
        steps.iter().map(|s| s.traffic.sync_bytes).sum::<u64>() as f64 / steps.len() as f64
    }

    /// Replaces the transport label — for engines that know their backend
    /// better than the `VELA_TRANSPORT` default (e.g. the EP baseline,
    /// which moves no bytes through a transport at all).
    pub fn with_transport(mut self, label: &'static str) -> Self {
        self.transport = label;
        self
    }

    /// Attaches a measured phase attribution (counter deltas captured by
    /// the harness around the run).
    pub fn with_attribution(mut self, attribution: PhaseAttribution) -> Self {
        self.attribution = Some(attribution);
        self
    }

    /// Attaches the replication column.
    pub fn with_replication(mut self, replication: ReplicationSummary) -> Self {
        self.replication = Some(replication);
        self
    }

    /// The step-time spread the percentiles describe, as a compact
    /// `(p50, p95, p99)` tuple for table printing.
    pub fn step_time_percentiles(&self) -> (f64, f64, f64) {
        (self.p50_step_time, self.p95_step_time, self.p99_step_time)
    }

    /// Relative reduction of this run's metric vs a baseline value
    /// (`(base − ours) / base`), e.g. traffic or time reduction vs EP.
    pub fn reduction_vs(ours: f64, base: f64) -> f64 {
        if base == 0.0 {
            0.0
        } else {
            (base - ours) / base
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted, non-empty sample:
/// the smallest value such that at least `q·n` samples are `<=` it.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Evaluates the master–worker time model over one step's phase logs.
///
/// Each phase contributes a one-to-all dispatch (max leg, Eq. (7)), the
/// workers' parallel expert compute (max worker), and a one-to-all gather.
/// Because the master streams blocks without any synchronization barrier,
/// transfers overlap with expert compute — each phase costs
/// `max(comm, compute)` on the critical path (conventional EP cannot do
/// this: its status-sync round serializes every exchange, §V-B).
/// The overlapped compute remainder is *not* double counted: the phase's
/// `comm_s`/`compute_s` split attributes the bound to whichever resource
/// binds.
///
/// `master_flops` accounts for the backbone computation the master runs
/// serially (attention, norms, LM head, gate).
pub fn master_worker_time(
    cost: &CostModel,
    master: DeviceId,
    worker_devices: &[DeviceId],
    logs: &[PhaseLog],
    spec: &MoeSpec,
    master_flops: f64,
) -> TimeBreakdown {
    let mut time = TimeBreakdown::default();
    for log in logs {
        let dispatch: Vec<(DeviceId, u64)> = worker_devices
            .iter()
            .zip(&log.bytes_out)
            .map(|(&d, &b)| (d, b))
            .collect();
        let gather: Vec<(DeviceId, u64)> = worker_devices
            .iter()
            .zip(&log.bytes_back)
            .map(|(&d, &b)| (d, b))
            .collect();
        let comm = cost.one_to_all_time(master, &dispatch) + cost.one_to_all_time(master, &gather);

        let mult = match log.pass {
            Pass::Forward => 1.0,
            Pass::Backward => 2.0,
        };
        let worker_compute = worker_devices
            .iter()
            .zip(&log.rows)
            .map(|(&d, &rows)| {
                cost.compute_time(d, rows as f64 * spec.expert_flops_per_token() * mult)
            })
            .fold(0.0, f64::max);
        // Pipelined overlap: the phase costs whichever resource binds.
        if comm >= worker_compute {
            time.comm_s += comm;
        } else {
            time.compute_s += worker_compute;
        }
    }
    time.compute_s += cost.compute_time(master, master_flops);
    time
}

/// Approximate backbone FLOPs per token (forward): the four attention
/// projections plus score/context mat-muls at sequence length `seq`.
pub fn backbone_flops_per_token(spec: &MoeSpec, seq: usize) -> f64 {
    let h = spec.hidden as f64;
    8.0 * h * h + 4.0 * h * seq as f64
}

/// Bytes of backbone LoRA gradients that conventional expert parallelism
/// must all-reduce at each step (adapters on the four attention
/// projections per block, fp32 gradients).
pub fn backbone_lora_grad_bytes(spec: &MoeSpec, rank: usize) -> u64 {
    let per_proj = 2 * spec.hidden * rank; // A and B matrices
    (spec.blocks * 4 * per_proj * 4) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vela_cluster::Topology;

    fn dummy_step(external: u64, time: f64) -> StepMetrics {
        StepMetrics {
            step: 1,
            loss: None,
            traffic: StepTraffic {
                external_sent_per_node: vec![external, 0, 0],
                external_recv_per_node: vec![0, external, 0],
                internal_bytes: 0,
                total_bytes: external,
                sync_bytes: 0,
                migration_bytes: 0,
            },
            time: TimeBreakdown {
                comm_s: time,
                compute_s: 0.0,
                sync_s: 0.0,
            },
        }
    }

    #[test]
    fn summary_averages() {
        let steps = vec![dummy_step(300, 1.0), dummy_step(600, 3.0)];
        let s = RunSummary::from_steps(&steps);
        // Step 1: 300 sent / 3 nodes = 100; step 2: 200 → avg 150.
        assert!((s.avg_external_per_node - 150.0).abs() < 1e-9);
        assert!((s.avg_step_time - 2.0).abs() < 1e-9);
        assert!((s.std_step_time - 1.0).abs() < 1e-9);
        assert_eq!(s.total_bytes, 900);
        assert_eq!(s.steps, 2);
    }

    #[test]
    fn summary_percentiles_are_nearest_rank() {
        // 1..=100 seconds: p50 = 50, p95 = 95, p99 = 99 by nearest rank.
        let steps: Vec<StepMetrics> = (1..=100).map(|t| dummy_step(0, t as f64)).collect();
        let s = RunSummary::from_steps(&steps);
        assert_eq!(s.p50_step_time, 50.0);
        assert_eq!(s.p95_step_time, 95.0);
        assert_eq!(s.p99_step_time, 99.0);
        assert_eq!(s.step_time_percentiles(), (50.0, 95.0, 99.0));
        // A single step: every percentile is that step's time.
        let one = RunSummary::from_steps(&[dummy_step(0, 2.5)]);
        assert_eq!(one.p50_step_time, 2.5);
        assert_eq!(one.p99_step_time, 2.5);
        // Order independence: percentiles come from the sorted times.
        let shuffled = vec![dummy_step(0, 3.0), dummy_step(0, 1.0), dummy_step(0, 2.0)];
        let s = RunSummary::from_steps(&shuffled);
        assert_eq!(s.p50_step_time, 2.0);
        assert_eq!(s.p99_step_time, 3.0);
    }

    #[test]
    fn straggler_index_measures_row_skew() {
        let log = |rows: Vec<u64>| PhaseLog {
            block: 0,
            pass: Pass::Forward,
            bytes_out: vec![0; rows.len()],
            bytes_back: vec![0; rows.len()],
            rows,
        };
        // Balanced fleet: index 1.0.
        assert!((routing_straggler_index(&[log(vec![10, 10, 10, 10])]) - 1.0).abs() < 1e-12);
        // One worker takes everything: max/mean = 4 over 4 workers.
        assert!((routing_straggler_index(&[log(vec![40, 0, 0, 0])]) - 4.0).abs() < 1e-12);
        // Totals accumulate across logs before the ratio is taken.
        let two = [log(vec![30, 10]), log(vec![10, 30])];
        assert!((routing_straggler_index(&two) - 1.0).abs() < 1e-12);
        // Degenerate inputs read as balanced.
        assert_eq!(routing_straggler_index(&[]), 1.0);
        assert_eq!(routing_straggler_index(&[log(vec![0, 0])]), 1.0);
    }

    #[test]
    fn avg_sync_bytes_averages_the_ledger_column() {
        let mut a = dummy_step(100, 1.0);
        a.traffic.sync_bytes = 30;
        let mut b = dummy_step(100, 1.0);
        b.traffic.sync_bytes = 50;
        assert!((RunSummary::avg_sync_bytes(&[a, b]) - 40.0).abs() < 1e-12);
        assert_eq!(RunSummary::avg_sync_bytes(&[]), 0.0);
    }

    #[test]
    fn reduction_formula() {
        assert!((RunSummary::reduction_vs(75.0, 100.0) - 0.25).abs() < 1e-12);
        assert_eq!(RunSummary::reduction_vs(1.0, 0.0), 0.0);
    }

    #[test]
    fn master_worker_time_prefers_local_bytes() {
        let topology = Topology::paper_testbed();
        let cost = CostModel::new(topology);
        let spec = MoeSpec::mixtral_8x7b();
        let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let mb = 1 << 20;
        // Hot bytes on a remote worker...
        let remote_log = PhaseLog {
            block: 0,
            pass: Pass::Forward,
            bytes_out: vec![0, 0, 10 * mb, 0, 0, 0],
            bytes_back: vec![0, 0, 10 * mb, 0, 0, 0],
            rows: vec![0, 0, 100, 0, 0, 0],
        };
        // ...vs the same bytes on the master-colocated worker.
        let local_log = PhaseLog {
            bytes_out: vec![10 * mb, 0, 0, 0, 0, 0],
            bytes_back: vec![10 * mb, 0, 0, 0, 0, 0],
            rows: vec![100, 0, 0, 0, 0, 0],
            ..remote_log.clone()
        };
        let t_remote = master_worker_time(&cost, DeviceId(0), &workers, &[remote_log], &spec, 0.0);
        let t_local = master_worker_time(&cost, DeviceId(0), &workers, &[local_log], &spec, 0.0);
        // Remote placement: the slow Ethernet leg binds. Local placement:
        // the free link means compute binds instead — and the total drops.
        assert!(t_remote.comm_s > 0.0);
        assert!(t_local.total() < t_remote.total() / 2.0);
    }

    #[test]
    fn backward_costs_twice_the_compute() {
        let cost = CostModel::new(Topology::paper_testbed());
        let spec = MoeSpec::mixtral_8x7b();
        let workers: Vec<DeviceId> = (0..2).map(DeviceId).collect();
        let fwd = PhaseLog {
            block: 0,
            pass: Pass::Forward,
            bytes_out: vec![0, 0],
            bytes_back: vec![0, 0],
            rows: vec![50, 0],
        };
        let bwd = PhaseLog {
            pass: Pass::Backward,
            ..fwd.clone()
        };
        let tf = master_worker_time(&cost, DeviceId(0), &workers, &[fwd], &spec, 0.0);
        let tb = master_worker_time(&cost, DeviceId(0), &workers, &[bwd], &spec, 0.0);
        // No bytes move, so compute binds in both phases; backward is 2x.
        assert!((tb.compute_s - 2.0 * tf.compute_s).abs() < 1e-12);
    }

    #[test]
    fn lora_grad_bytes_are_small_relative_to_token_traffic() {
        let spec = MoeSpec::mixtral_8x7b();
        let grads = backbone_lora_grad_bytes(&spec, 8);
        // ~33.5 MB — the paper notes EP's gradient sync is a *slight* add-on
        // to the ~866 MB/step token traffic.
        assert!(grads > 30 << 20 && grads < 40 << 20, "{grads}");
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_summary_panics() {
        RunSummary::from_steps(&[]);
    }
}

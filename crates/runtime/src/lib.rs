//! The VELA distributed fine-tuning runtime (§IV-A of the paper).
//!
//! Implements the master–worker architecture with Expert Brokers:
//!
//! * the **master** process owns the model backbone and drives training;
//! * **Expert Manager workers** own disjoint expert shards, run expert
//!   forward/backward passes on request, and step their own optimizers;
//! * the **[`BrokerClient`]** implements the backbone's
//!   [`ExpertProvider`](vela_model::ExpertProvider) seam by shipping token
//!   groups to workers as serialized [`Message`]s over
//!   [`transport`] links that record every byte in a
//!   [`TrafficLedger`](vela_cluster::TrafficLedger).
//!
//! Three engines share this machinery:
//!
//! * [`RealRuntime`] — real tensors at micro scale; bit-identical to
//!   single-process fine-tuning (the paper's §V-A parity claim, verified in
//!   `tests/parity.rs`);
//! * [`VirtualEngine`] — the same master–worker message flow carrying
//!   *virtual* payloads at Mixtral-8x7B scale, driven by measured locality
//!   profiles (generates Figs. 5–6's VELA/Sequential/Random series);
//! * [`EpEngine`] — conventional expert parallelism: sharded inputs,
//!   all-to-all exchange with its status-synchronization round, and
//!   gradient all-reduce (the EP baseline series).

pub mod broker;
pub mod ep_engine;
pub mod launch;
pub mod message;
pub mod metrics;
pub(crate) mod pipeline;
pub mod routing;
pub mod runtime;
pub mod transport;
pub mod virtual_engine;
pub mod wire;
pub mod worker;

pub use broker::BrokerClient;
pub use ep_engine::EpEngine;
pub use message::{
    chunk_expert_state, ChunkAssembler, FrameKind, GroupItem, GroupPass, Message, PackedData,
    PackedGroup, PackedReply, Payload, RowSpan, EXPERT_CHUNK_BYTES,
};
pub use metrics::{
    routing_straggler_index, PhaseAttribution, ReplicationSummary, RunSummary, StepMetrics,
};
pub use runtime::{MigrationHandle, RealRuntime};
pub use transport::{
    ExchangeConfig, Microbatch, MigrationMode, Quant, TransportConfig, TransportError,
    TransportMode, WireFormat, WireStats,
};
pub use virtual_engine::{ScaleConfig, VirtualEngine};
pub use wire::WireError;

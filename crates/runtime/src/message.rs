//! The binary wire format exchanged between the master and the Expert
//! Manager workers.
//!
//! Messages are hand-serialized into plain byte vectors (via the in-tree
//! [`crate::wire`] primitives) so the traffic ledger
//! can account the exact on-wire size. Activation payloads come in two
//! flavours:
//!
//! * [`Payload::Real`] — actual `f32` features (micro-scale runs);
//! * [`Payload::Virtual`] — a size descriptor standing in for a tensor of
//!   the evaluation model's true dimensions (scale-virtual runs). The
//!   declared byte count is what the ledger records, so Fig. 5's traffic is
//!   computed at genuine Mixtral proportions without materializing 8 KiB
//!   per token.

use crate::wire::{ByteReader, ByteWriter, WireError};
use vela_tensor::Tensor;

/// An activation/gradient payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Dense row-major `f32` data with shape `(rows, cols)`.
    Real {
        /// Row count (tokens).
        rows: u32,
        /// Column count (features).
        cols: u32,
        /// Row-major values, `rows·cols` long.
        data: Vec<f32>,
    },
    /// A size-only stand-in for `rows` tokens of `bytes_per_token` each.
    Virtual {
        /// Token count.
        rows: u32,
        /// Declared bytes per token (`b·H/8` of the simulated model).
        bytes_per_token: u32,
    },
}

impl Payload {
    /// Wraps a tensor's 2-D view.
    pub fn from_tensor(t: &Tensor) -> Payload {
        let (rows, cols) = t.shape().as_2d();
        Payload::Real {
            rows: rows as u32,
            cols: cols as u32,
            data: t.as_slice().to_vec(),
        }
    }

    /// Recovers a tensor from a real payload.
    ///
    /// # Panics
    /// Panics if the payload is virtual.
    pub fn to_tensor(&self) -> Tensor {
        match self {
            Payload::Real { rows, cols, data } => {
                Tensor::from_vec((*rows as usize, *cols as usize), data.clone())
            }
            Payload::Virtual { .. } => panic!("virtual payload carries no tensor"),
        }
    }

    /// Number of token rows described.
    pub fn rows(&self) -> u32 {
        match self {
            Payload::Real { rows, .. } | Payload::Virtual { rows, .. } => *rows,
        }
    }

    /// The byte count the traffic ledger should record for this payload:
    /// actual data bytes for real payloads, the declared size for virtual
    /// ones.
    pub fn accounted_bytes(&self) -> u64 {
        match self {
            Payload::Real { data, .. } => (data.len() * 4) as u64,
            Payload::Virtual {
                rows,
                bytes_per_token,
            } => u64::from(*rows) * u64::from(*bytes_per_token),
        }
    }
}

/// Which half of a block-pass a group frame belongs to.
///
/// A [`Message::DispatchGroup`] carrying `Forward` items plays the role of
/// many `TokenBatch` frames; `Backward` plays many `GradBatch` frames. The
/// reply [`Message::ResultGroup`] mirrors the pass so the master can check
/// it is draining the exchange it started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupPass {
    /// Token activations out, expert outputs back.
    Forward,
    /// Output gradients out, input gradients back.
    Backward,
}

/// One expert's payload inside a coalesced group frame.
///
/// Equivalent to the `(expert, payload)` pair of a per-batch frame; the
/// block index is hoisted to the enclosing group since a block-pass never
/// mixes blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupItem {
    /// Expert index within the block.
    pub expert: u32,
    /// Activations or gradients for that expert.
    pub payload: Payload,
}

/// A master↔worker protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Marks the start of a step; workers zero their gradients.
    StepBegin {
        /// Step counter (for assertions/debugging).
        step: u64,
    },
    /// Token features for one expert (master → worker, forward pass).
    TokenBatch {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// Activations.
        payload: Payload,
    },
    /// Expert output (worker → master, forward pass).
    ExpertResult {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// Activations.
        payload: Payload,
    },
    /// Output gradients for one expert (master → worker, backward pass).
    GradBatch {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// Gradients.
        payload: Payload,
    },
    /// Input gradients (worker → master, backward pass).
    GradResult {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// Gradients.
        payload: Payload,
    },
    /// Marks the end of a step; workers run their optimizer.
    StepEnd,
    /// Worker acknowledgement that its optimizer step finished.
    StepDone,
    /// Asks the worker to evict and serialize one expert (master → worker,
    /// expert migration).
    FetchExpert {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
    },
    /// Serialized expert parameters in transit (worker → master and
    /// master → destination worker; the destination installs them).
    ExpertState {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// Checkpoint bytes of the expert's parameters.
        data: Vec<u8>,
    },
    /// Worker acknowledgement that an expert was installed.
    InstallDone {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
    },
    /// Terminates the worker loop.
    Shutdown,
    /// One chunk of a worker's expert batches for a block-pass in a single
    /// frame (master → worker). Coalesces O(experts-per-worker) per-batch
    /// frames into one round-trip; a microbatched exchange sends one group
    /// per worker per chunk, each tagged with its chunk id so replies can
    /// be matched while several chunks are in flight.
    DispatchGroup {
        /// MoE block index.
        block: u32,
        /// Forward (token activations) or backward (gradients).
        pass: GroupPass,
        /// Pipeline chunk index within the block-pass (0 when the
        /// exchange is unchunked).
        chunk: u32,
        /// Per-expert payloads, in the master's dispatch order.
        items: Vec<GroupItem>,
    },
    /// The worker's replies to a [`Message::DispatchGroup`], one item per
    /// dispatched item in the same order (worker → master).
    ResultGroup {
        /// MoE block index.
        block: u32,
        /// Pass of the dispatch this answers.
        pass: GroupPass,
        /// Chunk id echoed from the dispatch this answers.
        chunk: u32,
        /// Per-expert results, in dispatch order.
        items: Vec<GroupItem>,
    },
}

const TAG_STEP_BEGIN: u8 = 1;
const TAG_TOKEN_BATCH: u8 = 2;
const TAG_EXPERT_RESULT: u8 = 3;
const TAG_GRAD_BATCH: u8 = 4;
const TAG_GRAD_RESULT: u8 = 5;
const TAG_STEP_END: u8 = 6;
const TAG_STEP_DONE: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;
const TAG_FETCH_EXPERT: u8 = 9;
const TAG_EXPERT_STATE: u8 = 10;
const TAG_INSTALL_DONE: u8 = 11;
const TAG_DISPATCH_GROUP: u8 = 12;
const TAG_RESULT_GROUP: u8 = 13;

const PAYLOAD_REAL: u8 = 0;
const PAYLOAD_VIRTUAL: u8 = 1;

const PASS_FORWARD: u8 = 0;
const PASS_BACKWARD: u8 = 1;

/// Smallest possible encoded group item: 4 expert bytes + a virtual
/// payload (1 tag + 4 rows + 4 bytes-per-token). Used to reject frames
/// whose declared item count could not possibly fit before allocating.
const MIN_GROUP_ITEM_BYTES: u64 = 13;

impl Message {
    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = ByteWriter::with_capacity(16);
        match self {
            Message::StepBegin { step } => {
                buf.put_u8(TAG_STEP_BEGIN);
                buf.put_u64(*step);
            }
            Message::TokenBatch {
                block,
                expert,
                payload,
            } => encode_payload_msg(&mut buf, TAG_TOKEN_BATCH, *block, *expert, payload),
            Message::ExpertResult {
                block,
                expert,
                payload,
            } => encode_payload_msg(&mut buf, TAG_EXPERT_RESULT, *block, *expert, payload),
            Message::GradBatch {
                block,
                expert,
                payload,
            } => encode_payload_msg(&mut buf, TAG_GRAD_BATCH, *block, *expert, payload),
            Message::GradResult {
                block,
                expert,
                payload,
            } => encode_payload_msg(&mut buf, TAG_GRAD_RESULT, *block, *expert, payload),
            Message::StepEnd => buf.put_u8(TAG_STEP_END),
            Message::StepDone => buf.put_u8(TAG_STEP_DONE),
            Message::FetchExpert { block, expert } => {
                buf.put_u8(TAG_FETCH_EXPERT);
                buf.put_u32(*block);
                buf.put_u32(*expert);
            }
            Message::ExpertState {
                block,
                expert,
                data,
            } => {
                buf.put_u8(TAG_EXPERT_STATE);
                buf.put_u32(*block);
                buf.put_u32(*expert);
                buf.put_u64(data.len() as u64);
                buf.put_slice(data);
            }
            Message::InstallDone { block, expert } => {
                buf.put_u8(TAG_INSTALL_DONE);
                buf.put_u32(*block);
                buf.put_u32(*expert);
            }
            Message::Shutdown => buf.put_u8(TAG_SHUTDOWN),
            Message::DispatchGroup {
                block,
                pass,
                chunk,
                items,
            } => encode_group(&mut buf, TAG_DISPATCH_GROUP, *block, *pass, *chunk, items),
            Message::ResultGroup {
                block,
                pass,
                chunk,
                items,
            } => encode_group(&mut buf, TAG_RESULT_GROUP, *block, *pass, *chunk, items),
        }
        buf.into_vec()
    }

    /// Deserializes a message produced by [`encode`](Self::encode).
    ///
    /// Frames may arrive over a real socket, so truncated or corrupted
    /// input returns a [`WireError`] rather than panicking. Declared
    /// lengths are validated against the bytes actually present before any
    /// allocation, so an adversarial header cannot trigger a huge
    /// `Vec::with_capacity`.
    pub fn decode(frame: &[u8]) -> Result<Message, WireError> {
        let mut bytes = ByteReader::new(frame);
        let tag = bytes.get_u8()?;
        let msg = match tag {
            TAG_STEP_BEGIN => Message::StepBegin {
                step: bytes.get_u64()?,
            },
            TAG_TOKEN_BATCH | TAG_EXPERT_RESULT | TAG_GRAD_BATCH | TAG_GRAD_RESULT => {
                let block = bytes.get_u32()?;
                let expert = bytes.get_u32()?;
                let payload = decode_payload(&mut bytes)?;
                match tag {
                    TAG_TOKEN_BATCH => Message::TokenBatch {
                        block,
                        expert,
                        payload,
                    },
                    TAG_EXPERT_RESULT => Message::ExpertResult {
                        block,
                        expert,
                        payload,
                    },
                    TAG_GRAD_BATCH => Message::GradBatch {
                        block,
                        expert,
                        payload,
                    },
                    _ => Message::GradResult {
                        block,
                        expert,
                        payload,
                    },
                }
            }
            TAG_STEP_END => Message::StepEnd,
            TAG_STEP_DONE => Message::StepDone,
            TAG_FETCH_EXPERT => Message::FetchExpert {
                block: bytes.get_u32()?,
                expert: bytes.get_u32()?,
            },
            TAG_EXPERT_STATE => {
                let block = bytes.get_u32()?;
                let expert = bytes.get_u32()?;
                let len = bytes.get_u64()?;
                if len > bytes.remaining() as u64 {
                    return Err(WireError::BadLength {
                        what: "expert state",
                        declared: len,
                        available: bytes.remaining(),
                    });
                }
                let mut data = vec![0u8; len as usize];
                bytes.copy_to_slice(&mut data)?;
                Message::ExpertState {
                    block,
                    expert,
                    data,
                }
            }
            TAG_INSTALL_DONE => Message::InstallDone {
                block: bytes.get_u32()?,
                expert: bytes.get_u32()?,
            },
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_DISPATCH_GROUP | TAG_RESULT_GROUP => {
                let block = bytes.get_u32()?;
                let pass = match bytes.get_u8()? {
                    PASS_FORWARD => GroupPass::Forward,
                    PASS_BACKWARD => GroupPass::Backward,
                    other => {
                        return Err(WireError::BadTag {
                            what: "group pass",
                            tag: other,
                        })
                    }
                };
                let chunk = bytes.get_u32()?;
                let count = bytes.get_u32()?;
                // Reject impossible counts before allocating: every item
                // occupies at least MIN_GROUP_ITEM_BYTES on the wire.
                if u64::from(count) * MIN_GROUP_ITEM_BYTES > bytes.remaining() as u64 {
                    return Err(WireError::BadLength {
                        what: "group item count",
                        declared: u64::from(count),
                        available: bytes.remaining(),
                    });
                }
                let mut items = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let expert = bytes.get_u32()?;
                    let payload = decode_payload(&mut bytes)?;
                    items.push(GroupItem { expert, payload });
                }
                if tag == TAG_DISPATCH_GROUP {
                    Message::DispatchGroup {
                        block,
                        pass,
                        chunk,
                        items,
                    }
                } else {
                    Message::ResultGroup {
                        block,
                        pass,
                        chunk,
                        items,
                    }
                }
            }
            other => {
                return Err(WireError::BadTag {
                    what: "message",
                    tag: other,
                })
            }
        };
        bytes.finish()?;
        Ok(msg)
    }

    /// The byte count the ledger should record for this message: payload
    /// bytes (accounted, so virtual sizes are honoured) plus the header.
    pub fn accounted_bytes(&self) -> u64 {
        match self {
            Message::TokenBatch { payload, .. }
            | Message::ExpertResult { payload, .. }
            | Message::GradBatch { payload, .. }
            | Message::GradResult { payload, .. } => 9 + payload.accounted_bytes(),
            Message::StepBegin { .. } => 9,
            Message::ExpertState { data, .. } => 17 + data.len() as u64,
            Message::FetchExpert { .. } | Message::InstallDone { .. } => 9,
            Message::StepEnd | Message::StepDone | Message::Shutdown => 1,
            // A group accounts exactly what its items would have cost as
            // individual per-batch frames (9-byte routing header each), so
            // ledgers are coalescing- and chunking-independent by
            // construction: the group/chunk header is local framing, never
            // accounted.
            Message::DispatchGroup { items, .. } | Message::ResultGroup { items, .. } => items
                .iter()
                .map(|item| 9 + item.payload.accounted_bytes())
                .sum(),
        }
    }
}

fn encode_group(
    buf: &mut ByteWriter,
    tag: u8,
    block: u32,
    pass: GroupPass,
    chunk: u32,
    items: &[GroupItem],
) {
    buf.put_u8(tag);
    buf.put_u32(block);
    buf.put_u8(match pass {
        GroupPass::Forward => PASS_FORWARD,
        GroupPass::Backward => PASS_BACKWARD,
    });
    buf.put_u32(chunk);
    buf.put_u32(items.len() as u32);
    for item in items {
        buf.put_u32(item.expert);
        encode_payload(buf, &item.payload);
    }
}

fn encode_payload_msg(buf: &mut ByteWriter, tag: u8, block: u32, expert: u32, payload: &Payload) {
    buf.put_u8(tag);
    buf.put_u32(block);
    buf.put_u32(expert);
    encode_payload(buf, payload);
}

fn encode_payload(buf: &mut ByteWriter, payload: &Payload) {
    match payload {
        Payload::Real { rows, cols, data } => {
            buf.put_u8(PAYLOAD_REAL);
            buf.put_u32(*rows);
            buf.put_u32(*cols);
            buf.reserve(data.len() * 4);
            for v in data {
                buf.put_f32(*v);
            }
        }
        Payload::Virtual {
            rows,
            bytes_per_token,
        } => {
            buf.put_u8(PAYLOAD_VIRTUAL);
            buf.put_u32(*rows);
            buf.put_u32(*bytes_per_token);
        }
    }
}

fn decode_payload(bytes: &mut ByteReader<'_>) -> Result<Payload, WireError> {
    match bytes.get_u8()? {
        PAYLOAD_REAL => {
            let rows = bytes.get_u32()?;
            let cols = bytes.get_u32()?;
            let n = u64::from(rows) * u64::from(cols);
            // checked: rows and cols near u32::MAX would overflow n * 4.
            let declared = n.checked_mul(4).unwrap_or(u64::MAX);
            if declared > bytes.remaining() as u64 {
                return Err(WireError::BadLength {
                    what: "real payload",
                    declared,
                    available: bytes.remaining(),
                });
            }
            let mut data = Vec::with_capacity(n as usize);
            for _ in 0..n {
                data.push(bytes.get_f32()?);
            }
            Ok(Payload::Real { rows, cols, data })
        }
        PAYLOAD_VIRTUAL => Ok(Payload::Virtual {
            rows: bytes.get_u32()?,
            bytes_per_token: bytes.get_u32()?,
        }),
        other => Err(WireError::BadTag {
            what: "payload",
            tag: other,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vela_tensor::rng::DetRng;

    #[test]
    fn roundtrip_all_variants() {
        let mut rng = DetRng::new(1);
        let t = Tensor::uniform((3, 4), -1.0, 1.0, &mut rng);
        let msgs = vec![
            Message::StepBegin { step: 42 },
            Message::TokenBatch {
                block: 7,
                expert: 3,
                payload: Payload::from_tensor(&t),
            },
            Message::ExpertResult {
                block: 0,
                expert: 0,
                payload: Payload::Virtual {
                    rows: 100,
                    bytes_per_token: 8192,
                },
            },
            Message::GradBatch {
                block: 31,
                expert: 7,
                payload: Payload::from_tensor(&t),
            },
            Message::GradResult {
                block: 1,
                expert: 2,
                payload: Payload::Virtual {
                    rows: 5,
                    bytes_per_token: 64,
                },
            },
            Message::StepEnd,
            Message::StepDone,
            Message::Shutdown,
        ];
        for msg in msgs {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn tensor_payload_roundtrip() {
        let mut rng = DetRng::new(2);
        let t = Tensor::uniform((5, 6), -2.0, 2.0, &mut rng);
        let p = Payload::from_tensor(&t);
        assert_eq!(p.to_tensor(), t);
        assert_eq!(p.rows(), 5);
        assert_eq!(p.accounted_bytes(), 5 * 6 * 4);
    }

    #[test]
    fn virtual_payload_accounts_declared_size() {
        let p = Payload::Virtual {
            rows: 2600,
            bytes_per_token: 8192,
        };
        // The paper's ~2600 tokens × 8 KiB ≈ 21 MB per block per direction.
        assert_eq!(p.accounted_bytes(), 2600 * 8192);
    }

    #[test]
    fn real_encoded_size_matches_accounting() {
        let t = Tensor::ones((2, 3));
        let msg = Message::TokenBatch {
            block: 0,
            expert: 0,
            payload: Payload::from_tensor(&t),
        };
        // Header (1 tag + 4 block + 4 expert) + payload header (1 + 4 + 4)
        // + 24 data bytes.
        assert_eq!(msg.encode().len(), 9 + 9 + 24);
        // Accounted bytes track payload + routing header, not the local
        // encoding details.
        assert_eq!(msg.accounted_bytes(), 9 + 24);
    }

    #[test]
    fn migration_messages_roundtrip() {
        let msgs = vec![
            Message::FetchExpert {
                block: 3,
                expert: 5,
            },
            Message::ExpertState {
                block: 3,
                expert: 5,
                data: vec![1, 2, 3, 255, 0, 42],
            },
            Message::InstallDone {
                block: 3,
                expert: 5,
            },
        ];
        for msg in msgs {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn expert_state_accounts_payload_bytes() {
        let msg = Message::ExpertState {
            block: 0,
            expert: 0,
            data: vec![0; 1000],
        };
        assert_eq!(msg.accounted_bytes(), 17 + 1000);
    }

    #[test]
    fn control_messages_are_tiny() {
        assert_eq!(Message::StepEnd.accounted_bytes(), 1);
        assert_eq!(Message::Shutdown.encode().len(), 1);
        assert_eq!(Message::StepBegin { step: 1 }.accounted_bytes(), 9);
    }

    #[test]
    #[should_panic(expected = "virtual payload carries no tensor")]
    fn virtual_to_tensor_panics() {
        Payload::Virtual {
            rows: 1,
            bytes_per_token: 1,
        }
        .to_tensor();
    }

    #[test]
    fn garbage_decode_is_an_error() {
        assert_eq!(
            Message::decode(&[99]),
            Err(WireError::BadTag {
                what: "message",
                tag: 99
            })
        );
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let frame = Message::StepBegin { step: 7 }.encode();
        assert!(matches!(
            Message::decode(&frame[..frame.len() - 1]),
            Err(WireError::Underflow { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut frame = Message::StepDone.encode();
        frame.push(0);
        assert_eq!(
            Message::decode(&frame),
            Err(WireError::TrailingBytes { left: 1 })
        );
    }

    #[test]
    fn group_frames_roundtrip() {
        let mut rng = DetRng::new(4);
        let t = Tensor::uniform((2, 3), -1.0, 1.0, &mut rng);
        let msgs = vec![
            Message::DispatchGroup {
                block: 2,
                pass: GroupPass::Forward,
                chunk: 3,
                items: vec![
                    GroupItem {
                        expert: 1,
                        payload: Payload::from_tensor(&t),
                    },
                    GroupItem {
                        expert: 6,
                        payload: Payload::Virtual {
                            rows: 9,
                            bytes_per_token: 128,
                        },
                    },
                ],
            },
            Message::ResultGroup {
                block: 0,
                pass: GroupPass::Backward,
                chunk: u32::MAX,
                items: vec![],
            },
        ];
        for msg in msgs {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn group_accounting_equals_per_batch_sum() {
        // The whole point of the accounting rule: a coalesced frame costs
        // byte-for-byte what its items would as individual frames.
        let mut rng = DetRng::new(5);
        let items: Vec<GroupItem> = (0..4)
            .map(|e| GroupItem {
                expert: e,
                payload: Payload::from_tensor(&Tensor::uniform(
                    (e as usize + 1, 3),
                    -1.0,
                    1.0,
                    &mut rng,
                )),
            })
            .collect();
        let per_batch: u64 = items
            .iter()
            .map(|i| {
                Message::TokenBatch {
                    block: 1,
                    expert: i.expert,
                    payload: i.payload.clone(),
                }
                .accounted_bytes()
            })
            .sum();
        let group = Message::DispatchGroup {
            block: 1,
            pass: GroupPass::Forward,
            chunk: 0,
            items,
        };
        assert_eq!(group.accounted_bytes(), per_batch);
        // The chunk id is local framing: it never changes accounting.
        let rechunked = match group {
            Message::DispatchGroup {
                block, pass, items, ..
            } => Message::DispatchGroup {
                block,
                pass,
                chunk: 7,
                items,
            },
            _ => unreachable!(),
        };
        assert_eq!(rechunked.accounted_bytes(), per_batch);
    }

    #[test]
    fn group_bad_pass_is_an_error() {
        let mut w = crate::wire::ByteWriter::with_capacity(16);
        w.put_u8(12); // DispatchGroup
        w.put_u32(0);
        w.put_u8(7); // no such pass
        w.put_u32(0);
        assert_eq!(
            Message::decode(&w.into_vec()),
            Err(WireError::BadTag {
                what: "group pass",
                tag: 7
            })
        );
    }

    #[test]
    fn implausible_group_count_never_allocates() {
        // Claims u32::MAX items but carries none: reject before reserving.
        let mut w = crate::wire::ByteWriter::with_capacity(16);
        w.put_u8(13); // ResultGroup
        w.put_u32(0);
        w.put_u8(0); // Forward
        w.put_u32(0); // chunk
        w.put_u32(u32::MAX);
        assert!(matches!(
            Message::decode(&w.into_vec()),
            Err(WireError::BadLength {
                what: "group item count",
                ..
            })
        ));
    }

    #[test]
    fn implausible_lengths_never_allocate() {
        // Claims u32::MAX × u32::MAX f32 rows but carries no data: the
        // decoder must reject the header instead of attempting a huge
        // allocation.
        let mut w = crate::wire::ByteWriter::with_capacity(16);
        w.put_u8(2); // TokenBatch
        w.put_u32(0);
        w.put_u32(0);
        w.put_u8(0); // Payload::Real
        w.put_u32(u32::MAX);
        w.put_u32(u32::MAX);
        assert!(matches!(
            Message::decode(&w.into_vec()),
            Err(WireError::BadLength {
                what: "real payload",
                ..
            })
        ));

        // Same for an expert-state blob claiming more bytes than present.
        let mut w = crate::wire::ByteWriter::with_capacity(32);
        w.put_u8(10); // ExpertState
        w.put_u32(0);
        w.put_u32(0);
        w.put_u64(u64::MAX);
        assert!(matches!(
            Message::decode(&w.into_vec()),
            Err(WireError::BadLength {
                what: "expert state",
                ..
            })
        ));
    }
}

//! The binary wire format exchanged between the master and the Expert
//! Manager workers.
//!
//! Messages are hand-serialized into plain byte vectors (via the in-tree
//! [`crate::wire`] primitives) so the traffic ledger
//! can account the exact on-wire size. Activation payloads come in two
//! flavours:
//!
//! * [`Payload::Real`] — actual `f32` features (micro-scale runs);
//! * [`Payload::Virtual`] — a size descriptor standing in for a tensor of
//!   the evaluation model's true dimensions (scale-virtual runs). The
//!   declared byte count is what the ledger records, so Fig. 5's traffic is
//!   computed at genuine Mixtral proportions without materializing 8 KiB
//!   per token.

use crate::wire::{ByteReader, ByteWriter, WireError};
use vela_tensor::Tensor;

/// An activation/gradient payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Dense row-major `f32` data with shape `(rows, cols)`.
    Real {
        /// Row count (tokens).
        rows: u32,
        /// Column count (features).
        cols: u32,
        /// Row-major values, `rows·cols` long.
        data: Vec<f32>,
    },
    /// A size-only stand-in for `rows` tokens of `bytes_per_token` each.
    Virtual {
        /// Token count.
        rows: u32,
        /// Declared bytes per token (`b·H/8` of the simulated model).
        bytes_per_token: u32,
    },
}

impl Payload {
    /// Wraps a tensor's 2-D view.
    pub fn from_tensor(t: &Tensor) -> Payload {
        let (rows, cols) = t.shape().as_2d();
        Payload::Real {
            rows: rows as u32,
            cols: cols as u32,
            data: t.as_slice().to_vec(),
        }
    }

    /// Recovers a tensor from a real payload.
    ///
    /// # Panics
    /// Panics if the payload is virtual.
    pub fn to_tensor(&self) -> Tensor {
        match self {
            Payload::Real { rows, cols, data } => {
                Tensor::from_vec((*rows as usize, *cols as usize), data.clone())
            }
            Payload::Virtual { .. } => panic!("virtual payload carries no tensor"),
        }
    }

    /// Number of token rows described.
    pub fn rows(&self) -> u32 {
        match self {
            Payload::Real { rows, .. } | Payload::Virtual { rows, .. } => *rows,
        }
    }

    /// The byte count the traffic ledger should record for this payload:
    /// actual data bytes for real payloads, the declared size for virtual
    /// ones.
    pub fn accounted_bytes(&self) -> u64 {
        match self {
            Payload::Real { data, .. } => (data.len() * 4) as u64,
            Payload::Virtual {
                rows,
                bytes_per_token,
            } => u64::from(*rows) * u64::from(*bytes_per_token),
        }
    }
}

/// Which half of a block-pass a group frame belongs to.
///
/// A [`Message::DispatchGroup`] carrying `Forward` items plays the role of
/// many `TokenBatch` frames; `Backward` plays many `GradBatch` frames. The
/// reply [`Message::ResultGroup`] mirrors the pass so the master can check
/// it is draining the exchange it started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupPass {
    /// Token activations out, expert outputs back.
    Forward,
    /// Output gradients out, input gradients back.
    Backward,
}

/// One expert's payload inside a coalesced group frame.
///
/// Equivalent to the `(expert, payload)` pair of a per-batch frame; the
/// block index is hoisted to the enclosing group since a block-pass never
/// mixes blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupItem {
    /// Expert index within the block.
    pub expert: u32,
    /// Activations or gradients for that expert.
    pub payload: Payload,
}

/// One expert's contiguous row region inside a packed frame.
///
/// `offset`/`rows` index token rows (not bytes) into the frame's single
/// data region. Spans are dense and ascending by construction — each
/// span's `offset` equals the sum of all previous spans' `rows` — and the
/// decoder rejects any frame violating that, so overlapping or
/// out-of-range regions can never be installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowSpan {
    /// Expert index within the block.
    pub expert: u32,
    /// First row of this expert's region.
    pub offset: u32,
    /// Number of rows in the region.
    pub rows: u32,
}

/// The data region of a packed frame.
#[derive(Debug, Clone, PartialEq)]
pub enum PackedData {
    /// Bit-exact row-major `f32` rows (`total_rows · width` values).
    F32(Vec<f32>),
    /// Quantized rows: one `f32` scale per row plus `total_rows · width`
    /// int8 codes (`value ≈ code · scale`).
    Int8 {
        /// Per-row dequantization scales.
        scales: Vec<f32>,
        /// Row-major int8 codes.
        codes: Vec<i8>,
    },
    /// Size-only virtual rows; the region carries no bytes at all.
    Virtual,
}

impl PackedData {
    /// Accounted bytes per row for a region of this encoding: actual data
    /// bytes for real rows (so the lossy mode's ledger reduction is
    /// honest), the declared token size for virtual rows. `width` is
    /// features per row for real data, bytes per token for virtual.
    pub fn row_cost(&self, width: u32) -> u64 {
        match self {
            PackedData::F32(_) => u64::from(width) * 4,
            PackedData::Int8 { .. } => u64::from(width) + 4,
            PackedData::Virtual => u64::from(width),
        }
    }

    /// Borrows the contiguous f32 region of an exact frame.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            PackedData::F32(data) => Some(data),
            _ => None,
        }
    }

    /// Appends rows `lo..hi` to `out` as f32: exact rows are copied
    /// verbatim, int8 rows are dequantized. `width` is features per row.
    ///
    /// # Panics
    /// Panics on virtual data or an out-of-range row range.
    pub fn unpack_rows(&self, width: usize, lo: usize, hi: usize, out: &mut Vec<f32>) {
        match self {
            PackedData::F32(data) => out.extend_from_slice(&data[lo * width..hi * width]),
            PackedData::Int8 { scales, codes } => {
                out.reserve((hi - lo) * width);
                for r in lo..hi {
                    let scale = scales[r];
                    for &code in &codes[r * width..(r + 1) * width] {
                        out.push(f32::from(code) * scale);
                    }
                }
            }
            PackedData::Virtual => panic!("virtual packed data carries no rows"),
        }
    }
}

/// Quantizes `rows × width` f32 values to int8 with one scale per row
/// (`scale = amax/127`, codes clamped to ±127; an all-zero row gets scale
/// 0). Deterministic, so quantized runs stay bitwise reproducible.
pub fn quantize_rows(data: &[f32], width: usize) -> (Vec<f32>, Vec<i8>) {
    assert!(width > 0 && data.len() % width == 0, "ragged row region");
    let rows = data.len() / width;
    let mut scales = Vec::with_capacity(rows);
    let mut codes = Vec::with_capacity(data.len());
    for row in data.chunks_exact(width) {
        let amax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = if amax > 0.0 { amax / 127.0 } else { 0.0 };
        scales.push(scale);
        if scale == 0.0 {
            codes.extend(std::iter::repeat(0).take(width));
        } else {
            codes.extend(
                row.iter()
                    .map(|v| (v / scale).round().clamp(-127.0, 127.0) as i8),
            );
        }
    }
    (scales, codes)
}

/// A column-packed dispatch frame (master → worker): one contiguous row
/// region for the whole worker-chunk, prefixed by a compact span table —
/// no per-item payload headers. Plays the role of [`Message::DispatchGroup`]
/// under `VELA_WIRE=packed`.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedGroup {
    /// MoE block index.
    pub block: u32,
    /// Forward (token activations) or backward (gradients).
    pub pass: GroupPass,
    /// Pipeline chunk index within the block-pass.
    pub chunk: u32,
    /// Features per row for real data; declared bytes per token for
    /// virtual rows.
    pub width: u32,
    /// Dense ascending per-expert row regions.
    pub spans: Vec<RowSpan>,
    /// The single contiguous data region.
    pub data: PackedData,
}

impl PackedGroup {
    /// Packs per-expert row slices into one contiguous frame. `parts`
    /// yields `(expert, rows)` where each slice is `rows · width` long;
    /// `quantize` selects int8 encoding.
    ///
    /// # Panics
    /// Panics on ragged slices or more than 65535 rows/expert index per
    /// span (the packed span format is deliberately compact).
    pub fn pack<'a>(
        block: u32,
        pass: GroupPass,
        chunk: u32,
        width: u32,
        quantize: bool,
        parts: impl Iterator<Item = (u32, &'a [f32])>,
    ) -> PackedGroup {
        let mut spans = Vec::new();
        let mut region: Vec<f32> = Vec::new();
        let mut offset = 0u32;
        for (expert, rows) in parts {
            assert!(
                width > 0 && rows.len() % width as usize == 0,
                "ragged packed rows"
            );
            let n = (rows.len() / width as usize) as u32;
            spans.push(RowSpan {
                expert,
                offset,
                rows: n,
            });
            offset += n;
            region.extend_from_slice(rows);
        }
        let data = if quantize {
            let (scales, codes) = quantize_rows(&region, width as usize);
            PackedData::Int8 { scales, codes }
        } else {
            PackedData::F32(region)
        };
        PackedGroup {
            block,
            pass,
            chunk,
            width,
            spans,
            data,
        }
    }

    /// Packs size-only virtual rows: `parts` yields `(expert, rows)`.
    pub fn pack_virtual(
        block: u32,
        pass: GroupPass,
        chunk: u32,
        bytes_per_token: u32,
        parts: impl Iterator<Item = (u32, u32)>,
    ) -> PackedGroup {
        let mut spans = Vec::new();
        let mut offset = 0u32;
        for (expert, rows) in parts {
            spans.push(RowSpan {
                expert,
                offset,
                rows,
            });
            offset += rows;
        }
        PackedGroup {
            block,
            pass,
            chunk,
            width: bytes_per_token,
            spans,
            data: PackedData::Virtual,
        }
    }

    /// Total rows across all spans.
    pub fn total_rows(&self) -> u32 {
        self.spans.iter().map(|s| s.rows).sum()
    }
}

/// The reply to a [`PackedGroup`] (worker → master). Carries no span
/// table at all: results come back in dispatch order, so the master
/// re-slices the region against the layout it just sent — per-item wire
/// overhead on the result path is zero.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedReply {
    /// MoE block index.
    pub block: u32,
    /// Pass of the dispatch this answers.
    pub pass: GroupPass,
    /// Chunk id echoed from the dispatch.
    pub chunk: u32,
    /// Features per row (bytes per token for virtual rows).
    pub width: u32,
    /// Item count echoed from the dispatch (accounting parity with
    /// per-batch framing needs it; it is 2 bytes, not a span table).
    pub items: u32,
    /// Total rows in the region.
    pub rows: u32,
    /// The single contiguous data region.
    pub data: PackedData,
}

/// A master↔worker protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Marks the start of a step; workers zero their gradients.
    StepBegin {
        /// Step counter (for assertions/debugging).
        step: u64,
    },
    /// Token features for one expert (master → worker, forward pass).
    TokenBatch {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// Activations.
        payload: Payload,
    },
    /// Expert output (worker → master, forward pass).
    ExpertResult {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// Activations.
        payload: Payload,
    },
    /// Output gradients for one expert (master → worker, backward pass).
    GradBatch {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// Gradients.
        payload: Payload,
    },
    /// Input gradients (worker → master, backward pass).
    GradResult {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// Gradients.
        payload: Payload,
    },
    /// Marks the end of a step; workers run their optimizer.
    StepEnd,
    /// Worker acknowledgement that its optimizer step finished.
    StepDone,
    /// Asks the worker to evict and serialize one expert (master → worker,
    /// expert migration).
    FetchExpert {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
    },
    /// Serialized expert parameters in transit (worker → master and
    /// master → destination worker; the destination installs them).
    ExpertState {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// Checkpoint bytes of the expert's parameters.
        data: Vec<u8>,
    },
    /// Worker acknowledgement that an expert was installed.
    InstallDone {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
    },
    /// Terminates the worker loop.
    Shutdown,
    /// One chunk of a worker's expert batches for a block-pass in a single
    /// frame (master → worker). Coalesces O(experts-per-worker) per-batch
    /// frames into one round-trip; a microbatched exchange sends one group
    /// per worker per chunk, each tagged with its chunk id so replies can
    /// be matched while several chunks are in flight.
    DispatchGroup {
        /// MoE block index.
        block: u32,
        /// Forward (token activations) or backward (gradients).
        pass: GroupPass,
        /// Pipeline chunk index within the block-pass (0 when the
        /// exchange is unchunked).
        chunk: u32,
        /// Per-expert payloads, in the master's dispatch order.
        items: Vec<GroupItem>,
    },
    /// The worker's replies to a [`Message::DispatchGroup`], one item per
    /// dispatched item in the same order (worker → master).
    ResultGroup {
        /// MoE block index.
        block: u32,
        /// Pass of the dispatch this answers.
        pass: GroupPass,
        /// Chunk id echoed from the dispatch this answers.
        chunk: u32,
        /// Per-expert results, in dispatch order.
        items: Vec<GroupItem>,
    },
    /// Column-packed dispatch frame (`VELA_WIRE=packed`): the role of
    /// [`Message::DispatchGroup`] with one contiguous region + span table
    /// instead of per-item payload headers.
    PackedDispatch(PackedGroup),
    /// Column-packed reply to a [`Message::PackedDispatch`].
    PackedResult(PackedReply),
    /// NTP-style clock probe (master → worker): `t1` is the master's
    /// send timestamp, echoed back so the reply is self-contained.
    /// Clock traffic is pure observability — the transport keeps it out
    /// of the ledger, frame counts and wire stats entirely.
    ClockProbe {
        /// Master clock at probe send (µs since its trace epoch).
        t1: u64,
    },
    /// The worker's answer to a [`Message::ClockProbe`].
    ClockReply {
        /// The probe's `t1`, echoed.
        t1: u64,
        /// Worker clock at probe receipt.
        t2: u64,
        /// Worker clock at reply send.
        t3: u64,
    },
    /// Asks the serving replica to serialize one expert's accumulated
    /// trainable-parameter gradients (master → worker, replica sync after
    /// backward). `grad_bytes` is the real gradient size, carried so an
    /// echo (virtual) worker can size its reply honestly.
    FetchGrads {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// Byte size of the expert's flattened trainable gradients.
        grad_bytes: u32,
    },
    /// Flattened trainable-parameter gradients in transit (serving
    /// replica → master, then master → each peer replica, which installs
    /// them before its optimizer step). Exactly one replica serves an
    /// expert per step, so sync is copy-and-install — no summation — and
    /// replicas stay bitwise identical.
    GradState {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// `1 × N` row of gradients in parameter-visit order (virtual in
        /// the simulated engine).
        payload: Payload,
    },
    /// Worker acknowledgement that replica gradients were installed.
    GradSyncDone {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
    },
    /// Asks the worker to serialize one expert *without evicting it*
    /// (master → source worker, background migration). The worker streams
    /// the checkpoint back as bounded [`Message::ExpertChunk`] frames
    /// followed by one [`Message::OptimState`] frame, then keeps serving
    /// the expert until it receives [`Message::Evict`] at cutover.
    FetchShadow {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
    },
    /// One bounded chunk of a serialized expert in transit (source →
    /// master → destination). Chunks are emitted in offset order on one
    /// link, so the receiver enforces contiguity (`offset` must equal the
    /// bytes received so far) instead of allocating `total` up front.
    ExpertChunk {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// Byte offset of this chunk within the serialized expert.
        offset: u64,
        /// Total serialized size, repeated in every chunk.
        total: u64,
        /// The chunk's bytes (at most [`EXPERT_CHUNK_BYTES`]).
        data: Vec<u8>,
    },
    /// Flattened Adam moment estimates for one expert (source → master →
    /// destination): for each trainable parameter in visit order, the
    /// first-moment row then the second-moment row. Part of the pinned
    /// snapshot a shadow install replays forward from.
    OptimState {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
        /// `1 × 2N` row of moments (virtual in the simulated engine).
        payload: Payload,
    },
    /// Announces an incoming shadow install (master → destination,
    /// control plane): the destination starts buffering chunks and any
    /// gradients forwarded for the expert before its install completes.
    ShadowBegin {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
    },
    /// Cutover control frame (master → source): drop the now-stale source
    /// copy of a migrated expert.
    Evict {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
    },
    /// Cutover control frame (master → destination): the shadow install
    /// becomes the serving copy; the destination restores whatever
    /// optimizer-moment entries the expert's parameters had before the
    /// install, so its state is exactly what a stop-the-world migration
    /// at the cutover step would have produced.
    MigrationCommit {
        /// MoE block index.
        block: u32,
        /// Expert index within the block.
        expert: u32,
    },
}

const TAG_STEP_BEGIN: u8 = 1;
const TAG_TOKEN_BATCH: u8 = 2;
const TAG_EXPERT_RESULT: u8 = 3;
const TAG_GRAD_BATCH: u8 = 4;
const TAG_GRAD_RESULT: u8 = 5;
const TAG_STEP_END: u8 = 6;
const TAG_STEP_DONE: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;
const TAG_FETCH_EXPERT: u8 = 9;
const TAG_EXPERT_STATE: u8 = 10;
const TAG_INSTALL_DONE: u8 = 11;
const TAG_DISPATCH_GROUP: u8 = 12;
const TAG_RESULT_GROUP: u8 = 13;
const TAG_PACKED_DISPATCH: u8 = 14;
const TAG_PACKED_RESULT: u8 = 15;
const TAG_CLOCK_PROBE: u8 = 16;
const TAG_CLOCK_REPLY: u8 = 17;
const TAG_FETCH_GRADS: u8 = 18;
const TAG_GRAD_STATE: u8 = 19;
const TAG_GRAD_SYNC_DONE: u8 = 20;
const TAG_FETCH_SHADOW: u8 = 21;
const TAG_EXPERT_CHUNK: u8 = 22;
const TAG_OPTIM_STATE: u8 = 23;
const TAG_SHADOW_BEGIN: u8 = 24;
const TAG_EVICT: u8 = 25;
const TAG_MIGRATION_COMMIT: u8 = 26;

/// Upper bound on the payload of one [`Message::ExpertChunk`] frame.
/// Bounded chunks keep the per-link writer queues responsive: a multi-MB
/// expert transfer interleaves with dispatch frames instead of
/// head-of-line blocking them.
pub const EXPERT_CHUNK_BYTES: usize = 64 * 1024;

const PAYLOAD_REAL: u8 = 0;
const PAYLOAD_VIRTUAL: u8 = 1;

const PASS_FORWARD: u8 = 0;
const PASS_BACKWARD: u8 = 1;

const ENC_F32: u8 = 0;
const ENC_INT8: u8 = 1;
const ENC_VIRTUAL: u8 = 2;

/// Encoded bytes of one packed span table entry
/// (`u16 expert | u32 offset | u16 rows`).
const SPAN_BYTES: u64 = 8;

/// Smallest possible encoded group item: 4 expert bytes + a virtual
/// payload (1 tag + 4 rows + 4 bytes-per-token). Used to reject frames
/// whose declared item count could not possibly fit before allocating.
const MIN_GROUP_ITEM_BYTES: u64 = 13;

impl Message {
    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = ByteWriter::with_capacity(16);
        match self {
            Message::StepBegin { step } => {
                buf.put_u8(TAG_STEP_BEGIN);
                buf.put_u64(*step);
            }
            Message::TokenBatch {
                block,
                expert,
                payload,
            } => encode_payload_msg(&mut buf, TAG_TOKEN_BATCH, *block, *expert, payload),
            Message::ExpertResult {
                block,
                expert,
                payload,
            } => encode_payload_msg(&mut buf, TAG_EXPERT_RESULT, *block, *expert, payload),
            Message::GradBatch {
                block,
                expert,
                payload,
            } => encode_payload_msg(&mut buf, TAG_GRAD_BATCH, *block, *expert, payload),
            Message::GradResult {
                block,
                expert,
                payload,
            } => encode_payload_msg(&mut buf, TAG_GRAD_RESULT, *block, *expert, payload),
            Message::StepEnd => buf.put_u8(TAG_STEP_END),
            Message::StepDone => buf.put_u8(TAG_STEP_DONE),
            Message::FetchExpert { block, expert } => {
                buf.put_u8(TAG_FETCH_EXPERT);
                buf.put_u32(*block);
                buf.put_u32(*expert);
            }
            Message::ExpertState {
                block,
                expert,
                data,
            } => {
                buf.put_u8(TAG_EXPERT_STATE);
                buf.put_u32(*block);
                buf.put_u32(*expert);
                buf.put_u64(data.len() as u64);
                buf.put_slice(data);
            }
            Message::InstallDone { block, expert } => {
                buf.put_u8(TAG_INSTALL_DONE);
                buf.put_u32(*block);
                buf.put_u32(*expert);
            }
            Message::Shutdown => buf.put_u8(TAG_SHUTDOWN),
            Message::DispatchGroup {
                block,
                pass,
                chunk,
                items,
            } => encode_group(&mut buf, TAG_DISPATCH_GROUP, *block, *pass, *chunk, items),
            Message::ResultGroup {
                block,
                pass,
                chunk,
                items,
            } => encode_group(&mut buf, TAG_RESULT_GROUP, *block, *pass, *chunk, items),
            Message::PackedDispatch(group) => encode_packed_dispatch(&mut buf, group),
            Message::PackedResult(reply) => encode_packed_result(&mut buf, reply),
            Message::ClockProbe { t1 } => {
                buf.put_u8(TAG_CLOCK_PROBE);
                buf.put_u64(*t1);
            }
            Message::ClockReply { t1, t2, t3 } => {
                buf.put_u8(TAG_CLOCK_REPLY);
                buf.put_u64(*t1);
                buf.put_u64(*t2);
                buf.put_u64(*t3);
            }
            Message::FetchGrads {
                block,
                expert,
                grad_bytes,
            } => {
                buf.put_u8(TAG_FETCH_GRADS);
                buf.put_u32(*block);
                buf.put_u32(*expert);
                buf.put_u32(*grad_bytes);
            }
            Message::GradState {
                block,
                expert,
                payload,
            } => encode_payload_msg(&mut buf, TAG_GRAD_STATE, *block, *expert, payload),
            Message::GradSyncDone { block, expert } => {
                buf.put_u8(TAG_GRAD_SYNC_DONE);
                buf.put_u32(*block);
                buf.put_u32(*expert);
            }
            Message::FetchShadow { block, expert } => {
                buf.put_u8(TAG_FETCH_SHADOW);
                buf.put_u32(*block);
                buf.put_u32(*expert);
            }
            Message::ExpertChunk {
                block,
                expert,
                offset,
                total,
                data,
            } => {
                buf.put_u8(TAG_EXPERT_CHUNK);
                buf.put_u32(*block);
                buf.put_u32(*expert);
                buf.put_u64(*offset);
                buf.put_u64(*total);
                buf.put_u64(data.len() as u64);
                buf.put_slice(data);
            }
            Message::OptimState {
                block,
                expert,
                payload,
            } => encode_payload_msg(&mut buf, TAG_OPTIM_STATE, *block, *expert, payload),
            Message::ShadowBegin { block, expert } => {
                buf.put_u8(TAG_SHADOW_BEGIN);
                buf.put_u32(*block);
                buf.put_u32(*expert);
            }
            Message::Evict { block, expert } => {
                buf.put_u8(TAG_EVICT);
                buf.put_u32(*block);
                buf.put_u32(*expert);
            }
            Message::MigrationCommit { block, expert } => {
                buf.put_u8(TAG_MIGRATION_COMMIT);
                buf.put_u32(*block);
                buf.put_u32(*expert);
            }
        }
        buf.into_vec()
    }

    /// Deserializes a message produced by [`encode`](Self::encode).
    ///
    /// Frames may arrive over a real socket, so truncated or corrupted
    /// input returns a [`WireError`] rather than panicking. Declared
    /// lengths are validated against the bytes actually present before any
    /// allocation, so an adversarial header cannot trigger a huge
    /// `Vec::with_capacity`.
    pub fn decode(frame: &[u8]) -> Result<Message, WireError> {
        let mut bytes = ByteReader::new(frame);
        let tag = bytes.get_u8()?;
        let msg = match tag {
            TAG_STEP_BEGIN => Message::StepBegin {
                step: bytes.get_u64()?,
            },
            TAG_TOKEN_BATCH | TAG_EXPERT_RESULT | TAG_GRAD_BATCH | TAG_GRAD_RESULT => {
                let block = bytes.get_u32()?;
                let expert = bytes.get_u32()?;
                let payload = decode_payload(&mut bytes)?;
                match tag {
                    TAG_TOKEN_BATCH => Message::TokenBatch {
                        block,
                        expert,
                        payload,
                    },
                    TAG_EXPERT_RESULT => Message::ExpertResult {
                        block,
                        expert,
                        payload,
                    },
                    TAG_GRAD_BATCH => Message::GradBatch {
                        block,
                        expert,
                        payload,
                    },
                    _ => Message::GradResult {
                        block,
                        expert,
                        payload,
                    },
                }
            }
            TAG_STEP_END => Message::StepEnd,
            TAG_STEP_DONE => Message::StepDone,
            TAG_FETCH_EXPERT => Message::FetchExpert {
                block: bytes.get_u32()?,
                expert: bytes.get_u32()?,
            },
            TAG_EXPERT_STATE => {
                let block = bytes.get_u32()?;
                let expert = bytes.get_u32()?;
                let len = bytes.get_u64()?;
                if len > bytes.remaining() as u64 {
                    return Err(WireError::BadLength {
                        what: "expert state",
                        declared: len,
                        available: bytes.remaining(),
                    });
                }
                let mut data = vec![0u8; len as usize];
                bytes.copy_to_slice(&mut data)?;
                Message::ExpertState {
                    block,
                    expert,
                    data,
                }
            }
            TAG_INSTALL_DONE => Message::InstallDone {
                block: bytes.get_u32()?,
                expert: bytes.get_u32()?,
            },
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_DISPATCH_GROUP | TAG_RESULT_GROUP => {
                let block = bytes.get_u32()?;
                let pass = match bytes.get_u8()? {
                    PASS_FORWARD => GroupPass::Forward,
                    PASS_BACKWARD => GroupPass::Backward,
                    other => {
                        return Err(WireError::BadTag {
                            what: "group pass",
                            tag: other,
                        })
                    }
                };
                let chunk = bytes.get_u32()?;
                let count = bytes.get_u32()?;
                // Reject impossible counts before allocating: every item
                // occupies at least MIN_GROUP_ITEM_BYTES on the wire.
                if u64::from(count) * MIN_GROUP_ITEM_BYTES > bytes.remaining() as u64 {
                    return Err(WireError::BadLength {
                        what: "group item count",
                        declared: u64::from(count),
                        available: bytes.remaining(),
                    });
                }
                let mut items = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let expert = bytes.get_u32()?;
                    let payload = decode_payload(&mut bytes)?;
                    items.push(GroupItem { expert, payload });
                }
                if tag == TAG_DISPATCH_GROUP {
                    Message::DispatchGroup {
                        block,
                        pass,
                        chunk,
                        items,
                    }
                } else {
                    Message::ResultGroup {
                        block,
                        pass,
                        chunk,
                        items,
                    }
                }
            }
            TAG_PACKED_DISPATCH => Message::PackedDispatch(decode_packed_dispatch(&mut bytes)?),
            TAG_PACKED_RESULT => Message::PackedResult(decode_packed_result(&mut bytes)?),
            TAG_CLOCK_PROBE => Message::ClockProbe {
                t1: bytes.get_u64()?,
            },
            TAG_CLOCK_REPLY => Message::ClockReply {
                t1: bytes.get_u64()?,
                t2: bytes.get_u64()?,
                t3: bytes.get_u64()?,
            },
            TAG_FETCH_GRADS => Message::FetchGrads {
                block: bytes.get_u32()?,
                expert: bytes.get_u32()?,
                grad_bytes: bytes.get_u32()?,
            },
            TAG_GRAD_STATE => {
                let block = bytes.get_u32()?;
                let expert = bytes.get_u32()?;
                let payload = decode_payload(&mut bytes)?;
                Message::GradState {
                    block,
                    expert,
                    payload,
                }
            }
            TAG_GRAD_SYNC_DONE => Message::GradSyncDone {
                block: bytes.get_u32()?,
                expert: bytes.get_u32()?,
            },
            TAG_FETCH_SHADOW => Message::FetchShadow {
                block: bytes.get_u32()?,
                expert: bytes.get_u32()?,
            },
            TAG_EXPERT_CHUNK => {
                let block = bytes.get_u32()?;
                let expert = bytes.get_u32()?;
                let offset = bytes.get_u64()?;
                let total = bytes.get_u64()?;
                let len = bytes.get_u64()?;
                if len > bytes.remaining() as u64 {
                    return Err(WireError::BadLength {
                        what: "expert chunk",
                        declared: len,
                        available: bytes.remaining(),
                    });
                }
                // A chunk that would run past the declared blob size is
                // corrupt; reject before allocating, like the length check
                // above.
                if offset.checked_add(len).map_or(true, |end| end > total) {
                    return Err(WireError::BadLength {
                        what: "expert chunk span",
                        declared: offset.saturating_add(len),
                        available: total as usize,
                    });
                }
                let mut data = vec![0u8; len as usize];
                bytes.copy_to_slice(&mut data)?;
                Message::ExpertChunk {
                    block,
                    expert,
                    offset,
                    total,
                    data,
                }
            }
            TAG_OPTIM_STATE => {
                let block = bytes.get_u32()?;
                let expert = bytes.get_u32()?;
                let payload = decode_payload(&mut bytes)?;
                Message::OptimState {
                    block,
                    expert,
                    payload,
                }
            }
            TAG_SHADOW_BEGIN => Message::ShadowBegin {
                block: bytes.get_u32()?,
                expert: bytes.get_u32()?,
            },
            TAG_EVICT => Message::Evict {
                block: bytes.get_u32()?,
                expert: bytes.get_u32()?,
            },
            TAG_MIGRATION_COMMIT => Message::MigrationCommit {
                block: bytes.get_u32()?,
                expert: bytes.get_u32()?,
            },
            other => {
                return Err(WireError::BadTag {
                    what: "message",
                    tag: other,
                })
            }
        };
        bytes.finish()?;
        Ok(msg)
    }

    /// The byte count the ledger should record for this message: payload
    /// bytes (accounted, so virtual sizes are honoured) plus the header.
    pub fn accounted_bytes(&self) -> u64 {
        match self {
            Message::TokenBatch { payload, .. }
            | Message::ExpertResult { payload, .. }
            | Message::GradBatch { payload, .. }
            | Message::GradResult { payload, .. } => 9 + payload.accounted_bytes(),
            Message::StepBegin { .. } => 9,
            // Clock probes exist only to timestamp the wire; they must
            // not perturb ledgers (the hub additionally skips them in
            // its frame/byte accounting entirely).
            Message::ClockProbe { .. } | Message::ClockReply { .. } => 0,
            Message::ExpertState { data, .. } => 17 + data.len() as u64,
            Message::FetchExpert { .. } | Message::InstallDone { .. } => 9,
            // Replica gradient sync is real traffic the ledger must see:
            // the state frame accounts like any payload frame, and the
            // request/ack frames account their routing headers.
            Message::GradState { payload, .. } => 9 + payload.accounted_bytes(),
            Message::FetchGrads { .. } => 13,
            Message::GradSyncDone { .. } => 9,
            // A chunked expert transfer accounts exactly what the single
            // ExpertState frame it replaces would have (17 + blob bytes):
            // the first chunk carries the 17-byte header charge, later
            // chunks account data only. FetchShadow mirrors FetchExpert's
            // 9 bytes, so a full shadow migration's ledger bytes equal a
            // stop-the-world migration's by construction.
            Message::FetchShadow { .. } => 9,
            Message::ExpertChunk { offset, data, .. } => {
                if *offset == 0 {
                    17 + data.len() as u64
                } else {
                    data.len() as u64
                }
            }
            Message::OptimState { payload, .. } => 9 + payload.accounted_bytes(),
            // Cutover/announce frames are control-plane plumbing sent via
            // the hub's unaccounted control path (like bootstrap frames);
            // the values here are their header sizes for completeness.
            Message::ShadowBegin { .. }
            | Message::Evict { .. }
            | Message::MigrationCommit { .. } => 9,
            Message::StepEnd | Message::StepDone | Message::Shutdown => 1,
            // A group accounts exactly what its items would have cost as
            // individual per-batch frames (9-byte routing header each), so
            // ledgers are coalescing- and chunking-independent by
            // construction: the group/chunk header is local framing, never
            // accounted.
            Message::DispatchGroup { items, .. } | Message::ResultGroup { items, .. } => items
                .iter()
                .map(|item| 9 + item.payload.accounted_bytes())
                .sum(),
            // Packed frames account the same 9-byte routing header per item
            // as per-batch framing, plus actual data bytes per row — so
            // exact (f32/virtual) packed exchanges are ledger-identical to
            // legacy framing by construction, while int8's smaller rows
            // show up honestly.
            Message::PackedDispatch(group) => {
                9 * group.spans.len() as u64
                    + u64::from(group.total_rows()) * group.data.row_cost(group.width)
            }
            Message::PackedResult(reply) => {
                9 * u64::from(reply.items)
                    + u64::from(reply.rows) * reply.data.row_cost(reply.width)
            }
        }
    }

    /// Whether this is clock-probe traffic, which every accounting layer
    /// (ledger, frame counters, wire stats) must bypass so traced runs
    /// stay byte- and frame-identical to untraced ones.
    pub fn is_clock(&self) -> bool {
        matches!(
            self,
            Message::ClockProbe { .. } | Message::ClockReply { .. }
        )
    }

    /// Whether this frame belongs to the replica gradient-sync protocol,
    /// so the ledger can attribute its bytes to `sync_bytes` as well as
    /// the ordinary per-link totals.
    pub fn is_grad_sync(&self) -> bool {
        matches!(
            self,
            Message::FetchGrads { .. }
                | Message::GradState { .. }
                | Message::GradSyncDone { .. }
                // Optimizer moments ride the sync bucket, not the
                // migration bucket: they are extra state the overlap path
                // ships to keep the shadow in lockstep, priced honestly
                // but kept out of the migration-byte parity between sync
                // and overlap modes.
                | Message::OptimState { .. }
        )
    }

    /// Whether this frame moves expert parameters between workers
    /// (stop-the-world migration, chunked shadow transfer, or the
    /// fetch/ack frames around them), so the ledger can attribute its
    /// bytes to `migration_bytes` as well as the ordinary per-link
    /// totals.
    pub fn is_migration(&self) -> bool {
        matches!(
            self,
            Message::FetchExpert { .. }
                | Message::ExpertState { .. }
                | Message::InstallDone { .. }
                | Message::FetchShadow { .. }
                | Message::ExpertChunk { .. }
        )
    }

    /// Classifies this message and splits its encoded size into header
    /// vs payload bytes for the `wire.*` obs counters: `payload` is data
    /// actually on the wire (f32 values, int8 scales+codes, expert-state
    /// blobs — virtual rows carry none), `header` is everything else.
    /// `encoded_len` must be the length of [`encode`](Self::encode)'s
    /// output for this message.
    pub fn wire_cost(&self, encoded_len: usize) -> (FrameKind, u64, u64) {
        let real_bytes = |payload: &Payload| match payload {
            Payload::Real { data, .. } => (data.len() * 4) as u64,
            Payload::Virtual { .. } => 0,
        };
        let packed_bytes = |data: &PackedData| match data {
            PackedData::F32(values) => (values.len() * 4) as u64,
            PackedData::Int8 { scales, codes } => (scales.len() * 4 + codes.len()) as u64,
            PackedData::Virtual => 0,
        };
        let (kind, payload) = match self {
            Message::TokenBatch { payload, .. } | Message::GradBatch { payload, .. } => {
                (FrameKind::Dispatch, real_bytes(payload))
            }
            Message::ExpertResult { payload, .. } | Message::GradResult { payload, .. } => {
                (FrameKind::Result, real_bytes(payload))
            }
            Message::DispatchGroup { items, .. } => (
                FrameKind::Dispatch,
                items.iter().map(|i| real_bytes(&i.payload)).sum(),
            ),
            Message::ResultGroup { items, .. } => (
                FrameKind::Result,
                items.iter().map(|i| real_bytes(&i.payload)).sum(),
            ),
            Message::PackedDispatch(group) => (FrameKind::Dispatch, packed_bytes(&group.data)),
            Message::PackedResult(reply) => (FrameKind::Result, packed_bytes(&reply.data)),
            Message::ExpertState { data, .. } => (FrameKind::ExpertState, data.len() as u64),
            // Replica gradient state rides the expert-state lane of the
            // wire counters: like migration, it moves per-parameter
            // tensors, not token batches.
            Message::GradState { payload, .. } => (FrameKind::ExpertState, real_bytes(payload)),
            Message::ExpertChunk { data, .. } => (FrameKind::ExpertState, data.len() as u64),
            Message::OptimState { payload, .. } => (FrameKind::ExpertState, real_bytes(payload)),
            _ => (FrameKind::Control, 0),
        };
        (kind, (encoded_len as u64).saturating_sub(payload), payload)
    }
}

/// Frame classification for per-kind wire byte counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Master → worker activation/gradient traffic.
    Dispatch,
    /// Worker → master result traffic.
    Result,
    /// Expert parameter transfers (migration, seeding, fetch-back).
    ExpertState,
    /// Everything else (step markers, acks, shutdown).
    Control,
}

/// Splits a serialized expert into bounded [`Message::ExpertChunk`]
/// frames in offset order. Always yields at least one frame (an empty
/// chunk for an empty blob) so the receiver learns `total` even when it
/// is zero.
pub fn chunk_expert_state(block: u32, expert: u32, data: &[u8]) -> Vec<Message> {
    let total = data.len() as u64;
    if data.is_empty() {
        return vec![Message::ExpertChunk {
            block,
            expert,
            offset: 0,
            total,
            data: Vec::new(),
        }];
    }
    let mut frames = Vec::with_capacity(data.len().div_ceil(EXPERT_CHUNK_BYTES));
    let mut offset = 0u64;
    for chunk in data.chunks(EXPERT_CHUNK_BYTES) {
        frames.push(Message::ExpertChunk {
            block,
            expert,
            offset,
            total,
            data: chunk.to_vec(),
        });
        offset += chunk.len() as u64;
    }
    frames
}

/// Reassembles [`Message::ExpertChunk`] frames back into the serialized
/// expert. The buffer grows chunk by chunk — never allocated from the
/// declared `total` — and every frame must continue exactly where the
/// previous one ended: overlaps, gaps, inconsistent totals and overruns
/// are all rejected before any bytes are copied.
#[derive(Debug)]
pub struct ChunkAssembler {
    block: u32,
    expert: u32,
    total: Option<u64>,
    buf: Vec<u8>,
}

impl ChunkAssembler {
    /// An empty assembler for one expert's transfer.
    pub fn new(block: u32, expert: u32) -> Self {
        ChunkAssembler {
            block,
            expert,
            total: None,
            buf: Vec::new(),
        }
    }

    /// The expert this assembler collects, as `(block, expert)`.
    pub fn key(&self) -> (u32, u32) {
        (self.block, self.expert)
    }

    /// Bytes received so far.
    pub fn received(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Accepts one chunk. `offset` must equal the bytes received so far
    /// (frames arrive in order on one link, so anything else is a gap,
    /// an overlap or a reordering bug) and every frame must agree on
    /// `total`.
    pub fn accept(&mut self, offset: u64, total: u64, data: &[u8]) -> Result<(), WireError> {
        let clamp = |v: u64| v.min(u32::MAX as u64) as u32;
        if let Some(t) = self.total {
            if t != total {
                return Err(WireError::BadSpan {
                    what: "expert chunk total",
                    expert: self.expert,
                    declared: clamp(total),
                    expected: clamp(t),
                });
            }
        } else {
            self.total = Some(total);
        }
        if offset != self.received() {
            return Err(WireError::BadSpan {
                what: "expert chunk offset",
                expert: self.expert,
                declared: clamp(offset),
                expected: clamp(self.received()),
            });
        }
        let end = offset
            .checked_add(data.len() as u64)
            .filter(|&end| end <= total);
        if end.is_none() {
            return Err(WireError::BadLength {
                what: "expert chunk span",
                declared: offset.saturating_add(data.len() as u64),
                available: total as usize,
            });
        }
        self.buf.extend_from_slice(data);
        Ok(())
    }

    /// Whether every byte of the transfer has arrived.
    pub fn is_complete(&self) -> bool {
        self.total == Some(self.received())
    }

    /// The reassembled blob. Call once [`ChunkAssembler::is_complete`].
    pub fn into_bytes(self) -> Vec<u8> {
        debug_assert!(self.total == Some(self.buf.len() as u64));
        self.buf
    }
}

fn encode_group(
    buf: &mut ByteWriter,
    tag: u8,
    block: u32,
    pass: GroupPass,
    chunk: u32,
    items: &[GroupItem],
) {
    buf.put_u8(tag);
    buf.put_u32(block);
    buf.put_u8(match pass {
        GroupPass::Forward => PASS_FORWARD,
        GroupPass::Backward => PASS_BACKWARD,
    });
    buf.put_u32(chunk);
    buf.put_u32(items.len() as u32);
    for item in items {
        buf.put_u32(item.expert);
        encode_payload(buf, &item.payload);
    }
}

fn encode_payload_msg(buf: &mut ByteWriter, tag: u8, block: u32, expert: u32, payload: &Payload) {
    buf.put_u8(tag);
    buf.put_u32(block);
    buf.put_u32(expert);
    encode_payload(buf, payload);
}

fn encode_payload(buf: &mut ByteWriter, payload: &Payload) {
    match payload {
        Payload::Real { rows, cols, data } => {
            buf.put_u8(PAYLOAD_REAL);
            buf.put_u32(*rows);
            buf.put_u32(*cols);
            buf.put_f32s(data);
        }
        Payload::Virtual {
            rows,
            bytes_per_token,
        } => {
            buf.put_u8(PAYLOAD_VIRTUAL);
            buf.put_u32(*rows);
            buf.put_u32(*bytes_per_token);
        }
    }
}

fn put_pass(buf: &mut ByteWriter, pass: GroupPass) {
    buf.put_u8(match pass {
        GroupPass::Forward => PASS_FORWARD,
        GroupPass::Backward => PASS_BACKWARD,
    });
}

fn get_pass(bytes: &mut ByteReader<'_>) -> Result<GroupPass, WireError> {
    match bytes.get_u8()? {
        PASS_FORWARD => Ok(GroupPass::Forward),
        PASS_BACKWARD => Ok(GroupPass::Backward),
        other => Err(WireError::BadTag {
            what: "group pass",
            tag: other,
        }),
    }
}

fn encoding_tag(data: &PackedData) -> u8 {
    match data {
        PackedData::F32(_) => ENC_F32,
        PackedData::Int8 { .. } => ENC_INT8,
        PackedData::Virtual => ENC_VIRTUAL,
    }
}

fn encode_packed_region(buf: &mut ByteWriter, data: &PackedData) {
    match data {
        PackedData::F32(values) => {
            buf.put_f32s(values);
        }
        PackedData::Int8 { scales, codes } => {
            buf.put_f32s(scales);
            buf.reserve(codes.len());
            for &c in codes {
                buf.put_u8(c as u8);
            }
        }
        PackedData::Virtual => {}
    }
}

fn encode_packed_dispatch(buf: &mut ByteWriter, group: &PackedGroup) {
    buf.put_u8(TAG_PACKED_DISPATCH);
    buf.put_u32(group.block);
    put_pass(buf, group.pass);
    buf.put_u32(group.chunk);
    buf.put_u8(encoding_tag(&group.data));
    buf.put_u32(group.width);
    assert!(
        group.spans.len() <= u16::MAX as usize,
        "packed frame caps spans at 65535"
    );
    buf.put_u16(group.spans.len() as u16);
    for span in &group.spans {
        assert!(
            span.expert <= u16::MAX as u32 && span.rows <= u16::MAX as u32,
            "packed spans cap expert index and rows/expert at 65535"
        );
        buf.put_u16(span.expert as u16);
        buf.put_u32(span.offset);
        buf.put_u16(span.rows as u16);
    }
    encode_packed_region(buf, &group.data);
}

fn encode_packed_result(buf: &mut ByteWriter, reply: &PackedReply) {
    buf.put_u8(TAG_PACKED_RESULT);
    buf.put_u32(reply.block);
    put_pass(buf, reply.pass);
    buf.put_u32(reply.chunk);
    buf.put_u8(encoding_tag(&reply.data));
    buf.put_u32(reply.width);
    assert!(
        reply.items <= u16::MAX as u32,
        "packed frame caps items at 65535"
    );
    buf.put_u16(reply.items as u16);
    buf.put_u32(reply.rows);
    encode_packed_region(buf, &reply.data);
}

/// Validates a packed region's declared size against the bytes actually
/// present, then decodes it. Nothing is allocated before validation.
fn decode_packed_region(
    bytes: &mut ByteReader<'_>,
    enc: u8,
    width: u32,
    total_rows: u64,
) -> Result<PackedData, WireError> {
    match enc {
        ENC_F32 => {
            let declared = total_rows
                .checked_mul(u64::from(width))
                .and_then(|n| n.checked_mul(4))
                .unwrap_or(u64::MAX);
            if declared > bytes.remaining() as u64 {
                return Err(WireError::BadLength {
                    what: "packed f32 region",
                    declared,
                    available: bytes.remaining(),
                });
            }
            let n = total_rows as usize * width as usize;
            Ok(PackedData::F32(bytes.get_f32s(n)?))
        }
        ENC_INT8 => {
            let declared = total_rows
                .checked_mul(u64::from(width) + 4)
                .unwrap_or(u64::MAX);
            if declared > bytes.remaining() as u64 {
                return Err(WireError::BadLength {
                    what: "packed int8 region",
                    declared,
                    available: bytes.remaining(),
                });
            }
            let rows = total_rows as usize;
            let scales = bytes.get_f32s(rows)?;
            let raw = bytes.get_bytes(rows * width as usize)?;
            let codes = raw.iter().map(|&b| b as i8).collect();
            Ok(PackedData::Int8 { scales, codes })
        }
        ENC_VIRTUAL => Ok(PackedData::Virtual),
        other => Err(WireError::BadTag {
            what: "packed encoding",
            tag: other,
        }),
    }
}

fn decode_packed_dispatch(bytes: &mut ByteReader<'_>) -> Result<PackedGroup, WireError> {
    let block = bytes.get_u32()?;
    let pass = get_pass(bytes)?;
    let chunk = bytes.get_u32()?;
    let enc = bytes.get_u8()?;
    let width = bytes.get_u32()?;
    let count = u64::from(bytes.get_u16()?);
    // The span table itself must fit before the span vector is allocated.
    if count * SPAN_BYTES > bytes.remaining() as u64 {
        return Err(WireError::BadLength {
            what: "packed span table",
            declared: count,
            available: bytes.remaining(),
        });
    }
    let mut spans = Vec::with_capacity(count as usize);
    let mut expected_offset = 0u32;
    for _ in 0..count {
        let expert = u32::from(bytes.get_u16()?);
        let offset = bytes.get_u32()?;
        let rows = u32::from(bytes.get_u16()?);
        // Spans must tile the region exactly: each one starts where the
        // previous ended. Overlapping, out-of-order, or gapped regions are
        // rejected here, before the data region is even sized.
        if offset != expected_offset {
            return Err(WireError::BadSpan {
                what: "packed row region",
                expert,
                declared: offset,
                expected: expected_offset,
            });
        }
        expected_offset = expected_offset
            .checked_add(rows)
            .ok_or(WireError::BadSpan {
                what: "packed row count",
                expert,
                declared: rows,
                expected: u32::MAX - offset,
            })?;
        spans.push(RowSpan {
            expert,
            offset,
            rows,
        });
    }
    let data = decode_packed_region(bytes, enc, width, u64::from(expected_offset))?;
    Ok(PackedGroup {
        block,
        pass,
        chunk,
        width,
        spans,
        data,
    })
}

fn decode_packed_result(bytes: &mut ByteReader<'_>) -> Result<PackedReply, WireError> {
    let block = bytes.get_u32()?;
    let pass = get_pass(bytes)?;
    let chunk = bytes.get_u32()?;
    let enc = bytes.get_u8()?;
    let width = bytes.get_u32()?;
    let items = u32::from(bytes.get_u16()?);
    let rows = bytes.get_u32()?;
    let data = decode_packed_region(bytes, enc, width, u64::from(rows))?;
    Ok(PackedReply {
        block,
        pass,
        chunk,
        width,
        items,
        rows,
        data,
    })
}

fn decode_payload(bytes: &mut ByteReader<'_>) -> Result<Payload, WireError> {
    match bytes.get_u8()? {
        PAYLOAD_REAL => {
            let rows = bytes.get_u32()?;
            let cols = bytes.get_u32()?;
            let n = u64::from(rows) * u64::from(cols);
            // checked: rows and cols near u32::MAX would overflow n * 4.
            let declared = n.checked_mul(4).unwrap_or(u64::MAX);
            if declared > bytes.remaining() as u64 {
                return Err(WireError::BadLength {
                    what: "real payload",
                    declared,
                    available: bytes.remaining(),
                });
            }
            let data = bytes.get_f32s(n as usize)?;
            Ok(Payload::Real { rows, cols, data })
        }
        PAYLOAD_VIRTUAL => Ok(Payload::Virtual {
            rows: bytes.get_u32()?,
            bytes_per_token: bytes.get_u32()?,
        }),
        other => Err(WireError::BadTag {
            what: "payload",
            tag: other,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vela_tensor::rng::DetRng;

    #[test]
    fn roundtrip_all_variants() {
        let mut rng = DetRng::new(1);
        let t = Tensor::uniform((3, 4), -1.0, 1.0, &mut rng);
        let msgs = vec![
            Message::StepBegin { step: 42 },
            Message::TokenBatch {
                block: 7,
                expert: 3,
                payload: Payload::from_tensor(&t),
            },
            Message::ExpertResult {
                block: 0,
                expert: 0,
                payload: Payload::Virtual {
                    rows: 100,
                    bytes_per_token: 8192,
                },
            },
            Message::GradBatch {
                block: 31,
                expert: 7,
                payload: Payload::from_tensor(&t),
            },
            Message::GradResult {
                block: 1,
                expert: 2,
                payload: Payload::Virtual {
                    rows: 5,
                    bytes_per_token: 64,
                },
            },
            Message::StepEnd,
            Message::StepDone,
            Message::Shutdown,
            Message::ClockProbe { t1: 123_456_789 },
            Message::ClockReply {
                t1: 123_456_789,
                t2: 123_400_000,
                t3: 123_400_050,
            },
        ];
        for msg in msgs {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn clock_messages_are_unaccounted_control_frames() {
        let probe = Message::ClockProbe { t1: 9 };
        let reply = Message::ClockReply {
            t1: 9,
            t2: 1,
            t3: 2,
        };
        assert!(probe.is_clock() && reply.is_clock());
        assert!(!Message::StepEnd.is_clock());
        assert_eq!(probe.accounted_bytes(), 0);
        assert_eq!(reply.accounted_bytes(), 0);
        let len = probe.encode().len();
        assert_eq!(probe.wire_cost(len), (FrameKind::Control, len as u64, 0));
    }

    #[test]
    fn tensor_payload_roundtrip() {
        let mut rng = DetRng::new(2);
        let t = Tensor::uniform((5, 6), -2.0, 2.0, &mut rng);
        let p = Payload::from_tensor(&t);
        assert_eq!(p.to_tensor(), t);
        assert_eq!(p.rows(), 5);
        assert_eq!(p.accounted_bytes(), 5 * 6 * 4);
    }

    #[test]
    fn virtual_payload_accounts_declared_size() {
        let p = Payload::Virtual {
            rows: 2600,
            bytes_per_token: 8192,
        };
        // The paper's ~2600 tokens × 8 KiB ≈ 21 MB per block per direction.
        assert_eq!(p.accounted_bytes(), 2600 * 8192);
    }

    #[test]
    fn real_encoded_size_matches_accounting() {
        let t = Tensor::ones((2, 3));
        let msg = Message::TokenBatch {
            block: 0,
            expert: 0,
            payload: Payload::from_tensor(&t),
        };
        // Header (1 tag + 4 block + 4 expert) + payload header (1 + 4 + 4)
        // + 24 data bytes.
        assert_eq!(msg.encode().len(), 9 + 9 + 24);
        // Accounted bytes track payload + routing header, not the local
        // encoding details.
        assert_eq!(msg.accounted_bytes(), 9 + 24);
    }

    #[test]
    fn migration_messages_roundtrip() {
        let msgs = vec![
            Message::FetchExpert {
                block: 3,
                expert: 5,
            },
            Message::ExpertState {
                block: 3,
                expert: 5,
                data: vec![1, 2, 3, 255, 0, 42],
            },
            Message::InstallDone {
                block: 3,
                expert: 5,
            },
        ];
        for msg in msgs {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn grad_sync_messages_roundtrip_and_account() {
        let mut rng = DetRng::new(3);
        let t = Tensor::uniform((1, 12), -1.0, 1.0, &mut rng);
        let msgs = vec![
            Message::FetchGrads {
                block: 2,
                expert: 4,
                grad_bytes: 48,
            },
            Message::GradState {
                block: 2,
                expert: 4,
                payload: Payload::from_tensor(&t),
            },
            Message::GradState {
                block: 2,
                expert: 4,
                payload: Payload::Virtual {
                    rows: 1,
                    bytes_per_token: 48,
                },
            },
            Message::GradSyncDone {
                block: 2,
                expert: 4,
            },
        ];
        for msg in &msgs {
            assert_eq!(&Message::decode(&msg.encode()).unwrap(), msg);
            assert!(msg.is_grad_sync());
            assert!(!msg.is_clock());
        }
        assert!(!Message::StepEnd.is_grad_sync());
        // Request/ack account their headers; state frames account like any
        // payload frame (9-byte routing header + payload bytes).
        assert_eq!(msgs[0].accounted_bytes(), 13);
        assert_eq!(msgs[1].accounted_bytes(), 9 + 48);
        assert_eq!(msgs[2].accounted_bytes(), 9 + 48);
        assert_eq!(msgs[3].accounted_bytes(), 9);
        // Gradient state rides the expert-state wire lane.
        let len = msgs[1].encode().len();
        let (kind, header, payload) = msgs[1].wire_cost(len);
        assert_eq!(kind, FrameKind::ExpertState);
        assert_eq!(payload, 48);
        assert_eq!(header + payload, len as u64);
    }

    #[test]
    fn expert_state_accounts_payload_bytes() {
        let msg = Message::ExpertState {
            block: 0,
            expert: 0,
            data: vec![0; 1000],
        };
        assert_eq!(msg.accounted_bytes(), 17 + 1000);
    }

    #[test]
    fn control_messages_are_tiny() {
        assert_eq!(Message::StepEnd.accounted_bytes(), 1);
        assert_eq!(Message::Shutdown.encode().len(), 1);
        assert_eq!(Message::StepBegin { step: 1 }.accounted_bytes(), 9);
    }

    #[test]
    #[should_panic(expected = "virtual payload carries no tensor")]
    fn virtual_to_tensor_panics() {
        Payload::Virtual {
            rows: 1,
            bytes_per_token: 1,
        }
        .to_tensor();
    }

    #[test]
    fn garbage_decode_is_an_error() {
        assert_eq!(
            Message::decode(&[99]),
            Err(WireError::BadTag {
                what: "message",
                tag: 99
            })
        );
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let frame = Message::StepBegin { step: 7 }.encode();
        assert!(matches!(
            Message::decode(&frame[..frame.len() - 1]),
            Err(WireError::Underflow { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut frame = Message::StepDone.encode();
        frame.push(0);
        assert_eq!(
            Message::decode(&frame),
            Err(WireError::TrailingBytes { left: 1 })
        );
    }

    #[test]
    fn group_frames_roundtrip() {
        let mut rng = DetRng::new(4);
        let t = Tensor::uniform((2, 3), -1.0, 1.0, &mut rng);
        let msgs = vec![
            Message::DispatchGroup {
                block: 2,
                pass: GroupPass::Forward,
                chunk: 3,
                items: vec![
                    GroupItem {
                        expert: 1,
                        payload: Payload::from_tensor(&t),
                    },
                    GroupItem {
                        expert: 6,
                        payload: Payload::Virtual {
                            rows: 9,
                            bytes_per_token: 128,
                        },
                    },
                ],
            },
            Message::ResultGroup {
                block: 0,
                pass: GroupPass::Backward,
                chunk: u32::MAX,
                items: vec![],
            },
        ];
        for msg in msgs {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn group_accounting_equals_per_batch_sum() {
        // The whole point of the accounting rule: a coalesced frame costs
        // byte-for-byte what its items would as individual frames.
        let mut rng = DetRng::new(5);
        let items: Vec<GroupItem> = (0..4)
            .map(|e| GroupItem {
                expert: e,
                payload: Payload::from_tensor(&Tensor::uniform(
                    (e as usize + 1, 3),
                    -1.0,
                    1.0,
                    &mut rng,
                )),
            })
            .collect();
        let per_batch: u64 = items
            .iter()
            .map(|i| {
                Message::TokenBatch {
                    block: 1,
                    expert: i.expert,
                    payload: i.payload.clone(),
                }
                .accounted_bytes()
            })
            .sum();
        let group = Message::DispatchGroup {
            block: 1,
            pass: GroupPass::Forward,
            chunk: 0,
            items,
        };
        assert_eq!(group.accounted_bytes(), per_batch);
        // The chunk id is local framing: it never changes accounting.
        let rechunked = match group {
            Message::DispatchGroup {
                block, pass, items, ..
            } => Message::DispatchGroup {
                block,
                pass,
                chunk: 7,
                items,
            },
            _ => unreachable!(),
        };
        assert_eq!(rechunked.accounted_bytes(), per_batch);
    }

    #[test]
    fn group_bad_pass_is_an_error() {
        let mut w = crate::wire::ByteWriter::with_capacity(16);
        w.put_u8(12); // DispatchGroup
        w.put_u32(0);
        w.put_u8(7); // no such pass
        w.put_u32(0);
        assert_eq!(
            Message::decode(&w.into_vec()),
            Err(WireError::BadTag {
                what: "group pass",
                tag: 7
            })
        );
    }

    fn sample_packed(quantize: bool) -> PackedGroup {
        let a: Vec<f32> = (0..8).map(|i| i as f32 * 0.25 - 1.0).collect();
        let b: Vec<f32> = (0..4).map(|i| -(i as f32) * 0.5).collect();
        PackedGroup::pack(
            3,
            GroupPass::Forward,
            1,
            4,
            quantize,
            vec![(2u32, a.as_slice()), (5u32, b.as_slice())].into_iter(),
        )
    }

    #[test]
    fn packed_frames_roundtrip() {
        for quantize in [false, true] {
            let group = sample_packed(quantize);
            assert_eq!(group.total_rows(), 3);
            let msg = Message::PackedDispatch(group);
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
        let reply = Message::PackedResult(PackedReply {
            block: 3,
            pass: GroupPass::Backward,
            chunk: 2,
            width: 4,
            items: 2,
            rows: 3,
            data: PackedData::F32(vec![0.5; 12]),
        });
        assert_eq!(Message::decode(&reply.encode()).unwrap(), reply);
        let virt = Message::PackedDispatch(PackedGroup::pack_virtual(
            0,
            GroupPass::Forward,
            0,
            8192,
            vec![(0u32, 100u32), (1, 50)].into_iter(),
        ));
        assert_eq!(Message::decode(&virt.encode()).unwrap(), virt);
    }

    #[test]
    fn packed_f32_region_survives_bitwise() {
        let group = sample_packed(false);
        let before: Vec<u32> = group
            .data
            .as_f32()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let msg = Message::PackedDispatch(group);
        match Message::decode(&msg.encode()).unwrap() {
            Message::PackedDispatch(got) => {
                let after: Vec<u32> = got
                    .data
                    .as_f32()
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(before, after);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn packed_f32_accounting_matches_legacy_group() {
        // The exact packed layout must be ledger-invisible: its accounted
        // bytes equal the legacy coalesced (and hence per-batch) framing
        // for the same items, even though far fewer bytes hit the wire.
        let mut rng = DetRng::new(6);
        let tensors: Vec<Tensor> = (0..3)
            .map(|i| Tensor::uniform((i + 1, 4), -1.0, 1.0, &mut rng))
            .collect();
        let legacy = Message::DispatchGroup {
            block: 0,
            pass: GroupPass::Forward,
            chunk: 0,
            items: tensors
                .iter()
                .enumerate()
                .map(|(e, t)| GroupItem {
                    expert: e as u32,
                    payload: Payload::from_tensor(t),
                })
                .collect(),
        };
        let packed = Message::PackedDispatch(PackedGroup::pack(
            0,
            GroupPass::Forward,
            0,
            4,
            false,
            tensors
                .iter()
                .enumerate()
                .map(|(e, t)| (e as u32, t.as_slice())),
        ));
        assert_eq!(packed.accounted_bytes(), legacy.accounted_bytes());
        assert!(
            packed.encode().len() < legacy.encode().len(),
            "packing must shrink actual wire bytes"
        );
        // Virtual packed frames are ledger-identical to virtual groups too.
        let virt_legacy = Message::DispatchGroup {
            block: 0,
            pass: GroupPass::Forward,
            chunk: 0,
            items: (0..3)
                .map(|e| GroupItem {
                    expert: e,
                    payload: Payload::Virtual {
                        rows: 10 * (e + 1),
                        bytes_per_token: 8192,
                    },
                })
                .collect(),
        };
        let virt_packed = Message::PackedDispatch(PackedGroup::pack_virtual(
            0,
            GroupPass::Forward,
            0,
            8192,
            (0..3).map(|e| (e, 10 * (e + 1))),
        ));
        assert_eq!(virt_packed.accounted_bytes(), virt_legacy.accounted_bytes());
    }

    #[test]
    fn int8_reconstruction_error_is_bounded() {
        let mut rng = DetRng::new(7);
        let t = Tensor::uniform((6, 16), -3.0, 3.0, &mut rng);
        let (scales, codes) = quantize_rows(t.as_slice(), 16);
        let data = PackedData::Int8 { scales, codes };
        let mut out = Vec::new();
        data.unpack_rows(16, 0, 6, &mut out);
        for (row, (orig, got)) in t.as_slice().chunks(16).zip(out.chunks(16)).enumerate() {
            let amax = orig.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            for (o, g) in orig.iter().zip(got) {
                assert!(
                    (o - g).abs() <= amax / 254.0 + 1e-6,
                    "row {row}: {o} reconstructed as {g} (amax {amax})"
                );
            }
        }
    }

    #[test]
    fn int8_accounts_actual_quantized_bytes() {
        let group = sample_packed(true);
        let msg = Message::PackedDispatch(group);
        // 2 items × 9-byte routing header + 3 rows × (width 4 codes + 4
        // scale bytes).
        assert_eq!(msg.accounted_bytes(), 2 * 9 + 3 * (4 + 4));
    }

    #[test]
    fn overlapping_or_gapped_spans_are_rejected() {
        let encode_with_offsets = |offsets: [u32; 2]| {
            let mut w = crate::wire::ByteWriter::with_capacity(64);
            w.put_u8(14); // PackedDispatch
            w.put_u32(0);
            w.put_u8(0); // Forward
            w.put_u32(0); // chunk
            w.put_u8(0); // f32
            w.put_u32(2); // width
            w.put_u16(2); // spans
            for (i, off) in offsets.iter().enumerate() {
                w.put_u16(i as u16);
                w.put_u32(*off);
                w.put_u16(2); // rows
            }
            for _ in 0..8 {
                w.put_f32(0.0);
            }
            w.into_vec()
        };
        // Dense layout (offsets 0, 2) decodes fine.
        assert!(Message::decode(&encode_with_offsets([0, 2])).is_ok());
        // Overlap (second span re-reads rows 1–2) is rejected.
        assert!(matches!(
            Message::decode(&encode_with_offsets([0, 1])),
            Err(WireError::BadSpan { expert: 1, .. })
        ));
        // A gap (span pointing past the dense end) is rejected too.
        assert!(matches!(
            Message::decode(&encode_with_offsets([0, 3])),
            Err(WireError::BadSpan { expert: 1, .. })
        ));
    }

    #[test]
    fn implausible_packed_lengths_never_allocate() {
        // A span table claiming 65535 entries with no bytes behind it.
        let mut w = crate::wire::ByteWriter::with_capacity(32);
        w.put_u8(14);
        w.put_u32(0);
        w.put_u8(0);
        w.put_u32(0);
        w.put_u8(0);
        w.put_u32(1024);
        w.put_u16(u16::MAX);
        assert!(matches!(
            Message::decode(&w.into_vec()),
            Err(WireError::BadLength {
                what: "packed span table",
                ..
            })
        ));
        // A result frame declaring u32::MAX rows with an empty region.
        let mut w = crate::wire::ByteWriter::with_capacity(32);
        w.put_u8(15);
        w.put_u32(0);
        w.put_u8(0);
        w.put_u32(0);
        w.put_u8(1); // int8
        w.put_u32(4096);
        w.put_u16(1);
        w.put_u32(u32::MAX);
        assert!(matches!(
            Message::decode(&w.into_vec()),
            Err(WireError::BadLength {
                what: "packed int8 region",
                ..
            })
        ));
    }

    #[test]
    fn wire_cost_splits_header_from_payload() {
        let t = Tensor::ones((2, 3));
        let msg = Message::TokenBatch {
            block: 0,
            expert: 0,
            payload: Payload::from_tensor(&t),
        };
        let frame = msg.encode();
        let (kind, header, payload) = msg.wire_cost(frame.len());
        assert_eq!(kind, FrameKind::Dispatch);
        assert_eq!(payload, 24);
        assert_eq!(header, frame.len() as u64 - 24);

        let packed = Message::PackedDispatch(sample_packed(false));
        let frame = packed.encode();
        let (kind, header, payload) = packed.wire_cost(frame.len());
        assert_eq!(kind, FrameKind::Dispatch);
        assert_eq!(payload, 12 * 4);
        // tag 1 + block 4 + pass 1 + chunk 4 + enc 1 + width 4 + count 2
        // + 2 spans × 8.
        assert_eq!(header, 17 + 16);

        let (kind, _, payload) = Message::StepEnd.wire_cost(1);
        assert_eq!(kind, FrameKind::Control);
        assert_eq!(payload, 0);
    }

    #[test]
    fn implausible_group_count_never_allocates() {
        // Claims u32::MAX items but carries none: reject before reserving.
        let mut w = crate::wire::ByteWriter::with_capacity(16);
        w.put_u8(13); // ResultGroup
        w.put_u32(0);
        w.put_u8(0); // Forward
        w.put_u32(0); // chunk
        w.put_u32(u32::MAX);
        assert!(matches!(
            Message::decode(&w.into_vec()),
            Err(WireError::BadLength {
                what: "group item count",
                ..
            })
        ));
    }

    #[test]
    fn implausible_lengths_never_allocate() {
        // Claims u32::MAX × u32::MAX f32 rows but carries no data: the
        // decoder must reject the header instead of attempting a huge
        // allocation.
        let mut w = crate::wire::ByteWriter::with_capacity(16);
        w.put_u8(2); // TokenBatch
        w.put_u32(0);
        w.put_u32(0);
        w.put_u8(0); // Payload::Real
        w.put_u32(u32::MAX);
        w.put_u32(u32::MAX);
        assert!(matches!(
            Message::decode(&w.into_vec()),
            Err(WireError::BadLength {
                what: "real payload",
                ..
            })
        ));

        // Same for an expert-state blob claiming more bytes than present.
        let mut w = crate::wire::ByteWriter::with_capacity(32);
        w.put_u8(10); // ExpertState
        w.put_u32(0);
        w.put_u32(0);
        w.put_u64(u64::MAX);
        assert!(matches!(
            Message::decode(&w.into_vec()),
            Err(WireError::BadLength {
                what: "expert state",
                ..
            })
        ));
    }

    #[test]
    fn migration_frames_roundtrip() {
        let msgs = [
            Message::FetchShadow {
                block: 3,
                expert: 7,
            },
            Message::ExpertChunk {
                block: 1,
                expert: 2,
                offset: 64,
                total: 200,
                data: vec![9u8; 32],
            },
            Message::OptimState {
                block: 0,
                expert: 5,
                payload: Payload::Real {
                    rows: 1,
                    cols: 4,
                    data: vec![0.5, -1.0, 2.0, 0.25],
                },
            },
            Message::ShadowBegin {
                block: 2,
                expert: 9,
            },
            Message::Evict {
                block: 4,
                expert: 0,
            },
            Message::MigrationCommit {
                block: 4,
                expert: 0,
            },
        ];
        for msg in &msgs {
            assert_eq!(&Message::decode(&msg.encode()).unwrap(), msg);
            assert!(!msg.is_clock());
        }
    }

    #[test]
    fn migration_classification_and_bucket_split() {
        // The migration bucket sees exactly the frames that move
        // parameter bytes (plus their fetch/ack), in both modes.
        for msg in [
            Message::FetchExpert {
                block: 0,
                expert: 0,
            },
            Message::ExpertState {
                block: 0,
                expert: 0,
                data: vec![1, 2, 3],
            },
            Message::InstallDone {
                block: 0,
                expert: 0,
            },
            Message::FetchShadow {
                block: 0,
                expert: 0,
            },
            Message::ExpertChunk {
                block: 0,
                expert: 0,
                offset: 0,
                total: 3,
                data: vec![1, 2, 3],
            },
        ] {
            assert!(msg.is_migration(), "{msg:?}");
            assert!(!msg.is_grad_sync(), "{msg:?}");
        }
        // Moments ride the sync bucket so migration-byte parity between
        // sync and overlap modes holds by construction.
        let optim = Message::OptimState {
            block: 0,
            expert: 0,
            payload: Payload::Real {
                rows: 1,
                cols: 1,
                data: vec![1.0],
            },
        };
        assert!(optim.is_grad_sync() && !optim.is_migration());
        // Control-plane cutover frames are in neither bucket.
        let evict = Message::Evict {
            block: 0,
            expert: 0,
        };
        assert!(!evict.is_migration() && !evict.is_grad_sync());
    }

    #[test]
    fn chunked_transfer_accounts_like_one_expert_state() {
        let data = vec![7u8; 3 * EXPERT_CHUNK_BYTES + 123];
        let whole = Message::ExpertState {
            block: 0,
            expert: 0,
            data: data.clone(),
        };
        let frames = chunk_expert_state(0, 0, &data);
        assert_eq!(frames.len(), 4);
        let chunked: u64 = frames.iter().map(|f| f.accounted_bytes()).sum();
        assert_eq!(chunked, whole.accounted_bytes());
        // FetchShadow accounts like FetchExpert, so the full shadow
        // transfer's ledger bytes equal a stop-the-world migration's.
        assert_eq!(
            Message::FetchShadow {
                block: 0,
                expert: 0
            }
            .accounted_bytes(),
            Message::FetchExpert {
                block: 0,
                expert: 0
            }
            .accounted_bytes(),
        );
    }

    #[test]
    fn chunk_assembler_reassembles_bitwise() {
        let data: Vec<u8> = (0..(2 * EXPERT_CHUNK_BYTES + 77))
            .map(|i| i as u8)
            .collect();
        let mut asm = ChunkAssembler::new(1, 2);
        for frame in chunk_expert_state(1, 2, &data) {
            let decoded = Message::decode(&frame.encode()).unwrap();
            match decoded {
                Message::ExpertChunk {
                    offset,
                    total,
                    data,
                    ..
                } => asm.accept(offset, total, &data).unwrap(),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(asm.is_complete());
        assert_eq!(asm.into_bytes(), data);
    }

    #[test]
    fn empty_expert_still_sends_one_chunk() {
        let frames = chunk_expert_state(0, 1, &[]);
        assert_eq!(frames.len(), 1);
        let mut asm = ChunkAssembler::new(0, 1);
        match &frames[0] {
            Message::ExpertChunk {
                offset,
                total,
                data,
                ..
            } => asm.accept(*offset, *total, data).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
        assert!(asm.is_complete());
        assert!(asm.into_bytes().is_empty());
    }

    #[test]
    fn chunk_assembler_rejects_gap_overlap_and_overrun() {
        // Gap: second chunk skips ahead.
        let mut asm = ChunkAssembler::new(0, 0);
        asm.accept(0, 10, &[1, 2, 3]).unwrap();
        assert!(matches!(
            asm.accept(5, 10, &[4, 5]),
            Err(WireError::BadSpan {
                what: "expert chunk offset",
                ..
            })
        ));
        // Overlap: second chunk rewinds.
        assert!(matches!(
            asm.accept(1, 10, &[4, 5]),
            Err(WireError::BadSpan {
                what: "expert chunk offset",
                ..
            })
        ));
        // Inconsistent total.
        assert!(matches!(
            asm.accept(3, 11, &[4]),
            Err(WireError::BadSpan {
                what: "expert chunk total",
                ..
            })
        ));
        // Overrun past the declared total.
        assert!(matches!(
            asm.accept(3, 10, &[0; 8]),
            Err(WireError::BadLength {
                what: "expert chunk span",
                ..
            })
        ));
        // The rejected frames left the buffer untouched.
        assert_eq!(asm.received(), 3);
    }

    #[test]
    fn implausible_chunk_lengths_never_allocate() {
        // Claims a huge chunk length but carries no data.
        let mut w = crate::wire::ByteWriter::with_capacity(40);
        w.put_u8(22); // ExpertChunk
        w.put_u32(0);
        w.put_u32(0);
        w.put_u64(0); // offset
        w.put_u64(u64::MAX); // total
        w.put_u64(u64::MAX); // len
        assert!(matches!(
            Message::decode(&w.into_vec()),
            Err(WireError::BadLength {
                what: "expert chunk",
                ..
            })
        ));

        // A chunk whose span runs past its declared total is rejected at
        // decode, before the receiver ever sees it.
        let mut w = crate::wire::ByteWriter::with_capacity(40);
        w.put_u8(22); // ExpertChunk
        w.put_u32(0);
        w.put_u32(0);
        w.put_u64(90); // offset
        w.put_u64(100); // total: 90 + 20 > 100
        w.put_u64(20); // len
        w.put_slice(&[0u8; 20]);
        assert!(matches!(
            Message::decode(&w.into_vec()),
            Err(WireError::BadLength {
                what: "expert chunk span",
                ..
            })
        ));
    }
}

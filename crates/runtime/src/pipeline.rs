//! The chunked exchange pipeline shared by the real broker and the
//! virtual engine.
//!
//! PR-5's microbatch knob split the *global* batch list, which silently
//! disabled coalescing: a chunk holding one worker's batch degenerated to
//! per-batch framing (BENCH_transport.json's 12 → 36 frames/step
//! regression at `microbatch=4`). This module fixes the composition by
//! planning chunks **per worker**: worker *w*'s item list is split into
//! `min(microbatch, items_w)` contiguous chunks, so a chunked block-pass
//! still ships exactly one coalesced frame per worker per chunk.
//!
//! The chunks then flow through a bounded ring: tick *c* ships every
//! worker's chunk *c*, and before shipping tick *c* the master drains all
//! replies owed through tick `c − depth` (`VELA_PIPELINE_DEPTH`,
//! default 2). Serialize, send, worker compute and receive all overlap;
//! `depth = 1` reproduces the old one-deep send→drain pipeline exactly.
//!
//! None of this can change results: chunk boundaries sit at whole
//! expert-batch granularity (each expert batch is still served by a
//! single `forward_block`/`backward_block` call on its worker), and the
//! broker delivers replies to the model in ascending batch-index order no
//! matter how frames interleave on the wire. That is why
//! `VELA_MICROBATCH=auto` — whose chunk counts depend on *measured time*
//! — still passes the bitwise parity grid.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use vela_obs::LazyCounter;

/// Per-tick span around encoding + shipping one tick's frames.
pub(crate) const SPAN_SERIALIZE: &str = "runtime.pipeline.serialize";
/// Span around each blocked drain bout (master idle, chunks in flight).
pub(crate) const SPAN_INFLIGHT: &str = "runtime.pipeline.inflight";
/// Span around streamed-combine delivery of a completed chunk prefix.
pub(crate) const SPAN_COMBINE: &str = "runtime.pipeline.combine";
/// Span around the boundary migration pump (non-blocking lane service).
pub(crate) const SPAN_MIGRATION_PUMP: &str = "runtime.migration.pump";

/// Depth-gated sends that found replies still in flight: the ring was
/// full and the master had to block before shipping the next tick.
pub(crate) static STALLS: LazyCounter = LazyCounter::new("runtime.pipeline.stalls");
/// Master time blocked in ring-full drains (the [`STALLS`] bouts), µs —
/// the backpressure slice of the inflight window.
pub(crate) static STALL_US: LazyCounter = LazyCounter::new("runtime.pipeline.stall_us");
/// Master time spent in streamed-combine delivery, µs.
pub(crate) static COMBINE_US: LazyCounter = LazyCounter::new("runtime.pipeline.combine_us");
/// Background migration chunk frames relayed master → destination.
pub(crate) static MIGRATION_CHUNKS: LazyCounter = LazyCounter::new("runtime.migration.chunks");
/// Background migration parameter bytes relayed master → destination.
pub(crate) static MIGRATION_BYTES: LazyCounter = LazyCounter::new("runtime.migration.bytes");
/// Background migrations cut over at a step boundary.
pub(crate) static MIGRATION_COMMITS: LazyCounter = LazyCounter::new("runtime.migration.commits");
/// Master time in the boundary migration pump, µs (lane relays that did
/// not overlap compute — the visible cost of background migration).
pub(crate) static MIGRATION_PUMP_US: LazyCounter = LazyCounter::new("runtime.migration.pump_us");
/// Master time blocked flushing in-flight lanes (`finish_migrations`), µs.
pub(crate) static MIGRATION_FLUSH_US: LazyCounter = LazyCounter::new("runtime.migration.flush_us");
/// Master time spent encoding + enqueueing frames, µs.
static SERIALIZE_US: LazyCounter = LazyCounter::new("runtime.pipeline.serialize_us");
/// Σ over ticks of (tick fully drained − tick fully sent), µs. Overlapped
/// ticks each count their own window, so this *exceeds* wall time when
/// the pipeline actually overlaps — the bench's overlap-efficiency column
/// is `exchange_us / (serialize_us + inflight_us)`, < 1 iff overlap won.
static INFLIGHT_US: LazyCounter = LazyCounter::new("runtime.pipeline.inflight_us");
/// Exchange wall time, µs.
static EXCHANGE_US: LazyCounter = LazyCounter::new("runtime.pipeline.exchange_us");

/// Per-worker chunk plan for one block-pass exchange.
///
/// Built once per exchange from the item → worker assignment; buffers are
/// reused across exchanges. Items keep their dispatch order: worker *w*'s
/// chunk *c* is a contiguous run of the indices routed to *w*.
#[derive(Debug, Default)]
pub(crate) struct ChunkPlan {
    by_worker: Vec<Vec<usize>>,
    chunks: Vec<usize>,
    ticks: usize,
}

impl ChunkPlan {
    /// Plans `chunks`-way chunking of an item list over `workers`, given
    /// each item's assigned worker (in item order).
    pub(crate) fn build(
        &mut self,
        workers: usize,
        chunks: usize,
        assignments: impl Iterator<Item = usize>,
    ) {
        self.by_worker.resize_with(workers, Vec::new);
        self.by_worker.truncate(workers);
        for list in &mut self.by_worker {
            list.clear();
        }
        for (item, w) in assignments.enumerate() {
            self.by_worker[w].push(item);
        }
        self.chunks.clear();
        self.ticks = 0;
        for list in &self.by_worker {
            let c = chunks.max(1).min(list.len());
            self.chunks.push(c);
            self.ticks = self.ticks.max(c);
        }
    }

    /// Number of ring ticks (= the largest per-worker chunk count).
    pub(crate) fn ticks(&self) -> usize {
        self.ticks
    }

    /// The packed-region layout of worker `w`'s chunk `tick`: yields
    /// `(item_index, row_offset, rows)` for each item in the chunk, given
    /// every item's row count. Packed frames carry one contiguous data
    /// region and no per-item payload headers, so this is both how a
    /// dispatch region is laid out and how the master re-slices a reply
    /// region back into per-batch tensors — the reply's implicit layout is
    /// the plan itself, never the wire.
    pub(crate) fn chunk_regions<'a>(
        &'a self,
        w: usize,
        tick: usize,
        rows_of: impl Fn(usize) -> usize + 'a,
    ) -> impl Iterator<Item = (usize, usize, usize)> + 'a {
        self.chunk_items(w, tick)
            .iter()
            .scan(0usize, move |offset, &item| {
                let rows = rows_of(item);
                let lo = *offset;
                *offset += rows;
                Some((item, lo, rows))
            })
    }

    /// The item indices of worker `w`'s chunk `tick` (empty once `w` has
    /// run out of chunks). Earlier chunks absorb the remainder, so chunk
    /// sizes within a worker differ by at most one.
    pub(crate) fn chunk_items(&self, w: usize, tick: usize) -> &[usize] {
        let list = &self.by_worker[w];
        let m = self.chunks[w];
        if tick >= m {
            return &[];
        }
        let (base, extra) = (list.len() / m, list.len() % m);
        let start = tick * base + tick.min(extra);
        let end = start + base + usize::from(tick < extra);
        &list[start..end]
    }
}

/// How often an auto-tuned (block, pass) re-probes, in exchange calls.
pub(crate) const AUTO_REESTIMATE_EVERY: u64 = 64;
/// Unchunked probe calls at the start of every re-estimation window.
pub(crate) const AUTO_WARMUP: u64 = 2;
/// Largest chunk count auto mode will pick.
pub(crate) const AUTO_MAX_CHUNKS: usize = 8;
/// Minimum hideable time (µs) before chunking is worth its frame
/// overhead. Keeps echo/virtual workloads — where serialize is a few µs —
/// deterministically at one chunk.
const AUTO_MIN_OVERLAP_US: f64 = 150.0;

/// The chunk count that best hides `serialize_us` behind `wait_us`
/// (in-flight worker time): roughly one more chunk than the wait/serialize
/// ratio, clamped to `2..=AUTO_MAX_CHUNKS`, or 1 when there is not enough
/// hideable time on either side to pay for extra frames.
pub(crate) fn pick_chunks(serialize_us: f64, wait_us: f64) -> usize {
    let hideable = serialize_us.min(wait_us);
    if !hideable.is_finite() || hideable < AUTO_MIN_OVERLAP_US {
        return 1;
    }
    let ratio = wait_us / serialize_us;
    ((ratio.round() as usize).saturating_add(1)).clamp(2, AUTO_MAX_CHUNKS)
}

#[derive(Debug)]
struct AutoEntry {
    calls: u64,
    serialize_us: f64,
    wait_us: f64,
    chunks: usize,
}

/// Online chunk-count tuner for `VELA_MICROBATCH=auto`.
///
/// Keyed by (block, backward?): the serialize/compute ratio differs per
/// block size and pass. The probe schedule is a pure function of the call
/// count — the first [`AUTO_WARMUP`] calls of every
/// [`AUTO_REESTIMATE_EVERY`]-call window run unchunked and re-measure —
/// so *which* calls probe is deterministic even though what they measure
/// is not. Chunk choices only ever change speed, never bits.
#[derive(Debug, Default)]
pub(crate) struct AutoTuner {
    entries: HashMap<(usize, bool), AutoEntry>,
}

impl AutoTuner {
    /// Picks the chunk count for the next exchange of (block, backward).
    /// Returns `(chunks, probe)`; a probe call runs unchunked and must
    /// report its measurement via [`record`](Self::record).
    pub(crate) fn plan(&mut self, block: usize, backward: bool) -> (usize, bool) {
        let e = self.entries.entry((block, backward)).or_insert(AutoEntry {
            calls: 0,
            serialize_us: 0.0,
            wait_us: 0.0,
            chunks: 1,
        });
        let probe = e.calls % AUTO_REESTIMATE_EVERY < AUTO_WARMUP;
        e.calls += 1;
        if probe {
            (1, true)
        } else {
            (e.chunks, false)
        }
    }

    /// Feeds one probe measurement back and re-picks the chunk count
    /// (exponential moving average over probes, α = ½).
    pub(crate) fn record(&mut self, block: usize, backward: bool, serialize_us: f64, wait_us: f64) {
        let Some(e) = self.entries.get_mut(&(block, backward)) else {
            return;
        };
        if e.serialize_us == 0.0 && e.wait_us == 0.0 {
            e.serialize_us = serialize_us;
            e.wait_us = wait_us;
        } else {
            e.serialize_us = 0.5 * (e.serialize_us + serialize_us);
            e.wait_us = 0.5 * (e.wait_us + wait_us);
        }
        e.chunks = pick_chunks(e.serialize_us, e.wait_us);
    }
}

/// Wall/serialize/in-flight stopwatch for one exchange. Inert (every
/// method a no-op returning `None`) unless measuring — probes and
/// obs-enabled runs — so the fixed-chunk fast path pays one branch.
#[derive(Debug)]
pub(crate) struct ExchangeTimer {
    started: Option<Instant>,
    serialize: Duration,
    wait: Duration,
    inflight: Duration,
    /// (send-done instant, cumulative frames owed) per shipped tick.
    sent_at: Vec<(Instant, usize)>,
    /// First `sent_at` entry whose frames are not yet fully drained.
    next_done: usize,
}

impl ExchangeTimer {
    pub(crate) fn new(measure: bool) -> Self {
        ExchangeTimer {
            started: measure.then(Instant::now),
            serialize: Duration::ZERO,
            wait: Duration::ZERO,
            inflight: Duration::ZERO,
            sent_at: Vec::new(),
            next_done: 0,
        }
    }

    /// A reference instant, or `None` when not measuring.
    pub(crate) fn mark(&self) -> Option<Instant> {
        self.started.map(|_| Instant::now())
    }

    /// Accounts time since `mark` as serialize time.
    pub(crate) fn add_serialize(&mut self, from: Option<Instant>) {
        if let Some(t) = from {
            self.serialize += t.elapsed();
        }
    }

    /// Accounts time since `mark` as blocked-drain time.
    pub(crate) fn add_wait(&mut self, from: Option<Instant>) {
        if let Some(t) = from {
            self.wait += t.elapsed();
        }
    }

    /// Records that a tick is fully shipped, owing `owed` cumulative
    /// reply frames.
    pub(crate) fn tick_sent(&mut self, owed: usize) {
        if self.started.is_some() {
            self.sent_at.push((Instant::now(), owed));
        }
    }

    /// Advances in-flight accounting to `drained` cumulative frames.
    pub(crate) fn drained(&mut self, drained: usize) {
        if self.started.is_none() {
            return;
        }
        let now = Instant::now();
        while self.next_done < self.sent_at.len() && self.sent_at[self.next_done].1 <= drained {
            self.inflight += now - self.sent_at[self.next_done].0;
            self.next_done += 1;
        }
    }

    /// Flushes counters (when obs is enabled) and returns
    /// `(serialize_us, wait_us)` for the auto-tuner.
    pub(crate) fn finish(self) -> Option<(f64, f64)> {
        let started = self.started?;
        if vela_obs::enabled() {
            SERIALIZE_US.add(self.serialize.as_micros() as u64);
            INFLIGHT_US.add(self.inflight.as_micros() as u64);
            EXCHANGE_US.add(started.elapsed().as_micros() as u64);
        }
        Some((
            self.serialize.as_secs_f64() * 1e6,
            self.wait.as_secs_f64() * 1e6,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(workers: usize, chunks: usize, assign: &[usize]) -> ChunkPlan {
        let mut p = ChunkPlan::default();
        p.build(workers, chunks, assign.iter().copied());
        p
    }

    #[test]
    fn chunks_are_per_worker_and_order_preserving() {
        // 8 items alternating between 2 workers (the bench placement).
        let assign: Vec<usize> = (0..8).map(|e| e % 2).collect();
        let p = plan(2, 4, &assign);
        assert_eq!(p.ticks(), 4);
        // Worker 0 owns items 0,2,4,6 split into 4 single-item chunks.
        for tick in 0..4 {
            assert_eq!(p.chunk_items(0, tick), &[tick * 2]);
            assert_eq!(p.chunk_items(1, tick), &[tick * 2 + 1]);
        }
        assert!(p.chunk_items(0, 4).is_empty());
    }

    #[test]
    fn chunk_count_clamps_to_items_per_worker() {
        // Worker 1 has a single item: asking for 4 chunks gives it 1,
        // while worker 0 still gets 4. Ticks follow the largest.
        let p = plan(2, 4, &[0, 0, 0, 0, 1]);
        assert_eq!(p.ticks(), 4);
        assert_eq!(p.chunk_items(1, 0), &[4]);
        assert!(p.chunk_items(1, 1).is_empty());
        let all: Vec<usize> = (0..4).flat_map(|t| p.chunk_items(0, t).to_vec()).collect();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_chunk_plan_is_the_coalesced_baseline() {
        let p = plan(3, 1, &[2, 0, 2, 1]);
        assert_eq!(p.ticks(), 1);
        assert_eq!(p.chunk_items(0, 0), &[1]);
        assert_eq!(p.chunk_items(1, 0), &[3]);
        assert_eq!(p.chunk_items(2, 0), &[0, 2]);
    }

    #[test]
    fn workers_without_items_ship_no_chunks() {
        let p = plan(3, 2, &[1, 1]);
        assert_eq!(p.ticks(), 2);
        assert!(p.chunk_items(0, 0).is_empty());
        assert!(p.chunk_items(2, 0).is_empty());
        assert_eq!(p.chunk_items(1, 0), &[0]);
        assert_eq!(p.chunk_items(1, 1), &[1]);
    }

    #[test]
    fn chunk_regions_tile_the_packed_layout_densely() {
        // Items 0,2,4 on worker 0 with 1,3,5 rows: chunk 0 holds items
        // 0,2 (rows 1+3), chunk 1 holds item 4. Offsets restart per chunk
        // because every chunk is its own packed frame.
        let p = plan(2, 2, &[0, 1, 0, 1, 0]);
        let rows_of = |i: usize| i + 1;
        let c0: Vec<_> = p.chunk_regions(0, 0, rows_of).collect();
        assert_eq!(c0, vec![(0, 0, 1), (2, 1, 3)]);
        let c1: Vec<_> = p.chunk_regions(0, 1, rows_of).collect();
        assert_eq!(c1, vec![(4, 0, 5)]);
        assert_eq!(p.chunk_regions(0, 2, rows_of).count(), 0);
    }

    #[test]
    fn remainder_goes_to_earlier_chunks() {
        // 5 items on one worker in 2 chunks: 3 + 2, like chunk_ranges.
        let p = plan(1, 2, &[0, 0, 0, 0, 0]);
        assert_eq!(p.chunk_items(0, 0), &[0, 1, 2]);
        assert_eq!(p.chunk_items(0, 1), &[3, 4]);
    }

    #[test]
    fn pick_chunks_wants_substance_on_both_sides() {
        // Echo workloads: serialize is microseconds — stay at 1.
        assert_eq!(pick_chunks(3.0, 500.0), 1);
        assert_eq!(pick_chunks(500.0, 3.0), 1);
        assert_eq!(pick_chunks(0.0, 0.0), 1);
        // Balanced, substantial work: ratio + 1 chunks.
        assert_eq!(pick_chunks(1000.0, 1000.0), 2);
        assert_eq!(pick_chunks(1000.0, 3000.0), 4);
        // Heavily compute-bound clamps at the max.
        assert_eq!(pick_chunks(1000.0, 100_000.0), AUTO_MAX_CHUNKS);
    }

    #[test]
    fn auto_tuner_probe_schedule_is_deterministic() {
        let mut t = AutoTuner::default();
        // Warmup probes run unchunked regardless of what they measure.
        for _ in 0..AUTO_WARMUP {
            let (chunks, probe) = t.plan(0, false);
            assert_eq!((chunks, probe), (1, true));
            t.record(0, false, 2000.0, 6000.0);
        }
        // Settled: serves the measured pick without probing...
        for _ in AUTO_WARMUP..AUTO_REESTIMATE_EVERY {
            assert_eq!(t.plan(0, false), (4, false));
        }
        // ...and the next window re-probes on schedule.
        assert_eq!(t.plan(0, false), (1, true));
        // Other (block, pass) keys have their own state.
        assert_eq!(t.plan(0, true), (1, true));
        assert_eq!(t.plan(3, false), (1, true));
    }

    #[test]
    fn timer_is_inert_when_not_measuring() {
        let mut t = ExchangeTimer::new(false);
        assert!(t.mark().is_none());
        t.tick_sent(1);
        t.drained(1);
        assert!(t.finish().is_none());
    }

    #[test]
    fn timer_accounts_overlapping_inflight_windows() {
        let mut t = ExchangeTimer::new(true);
        let m = t.mark();
        assert!(m.is_some());
        t.add_serialize(m);
        t.tick_sent(2);
        std::thread::sleep(Duration::from_millis(2));
        t.tick_sent(4);
        std::thread::sleep(Duration::from_millis(2));
        t.drained(4);
        let (serialize_us, _) = t.finish().unwrap();
        assert!(serialize_us >= 0.0);
    }
}

//! In-process transport with byte-accurate traffic accounting.
//!
//! The master and its Expert Manager workers communicate over
//! `std::sync::mpsc` channels arranged in a star (the paper's one-to-all pattern). Every send
//! serializes the [`Message`] and records its accounted byte count against
//! the (source, destination) device pair in the shared
//! [`TrafficLedger`], so Fig. 5's cross-node traffic numbers come from the
//! actual message flow rather than a side calculation.

use std::sync::Arc;

use std::sync::mpsc::{channel, Receiver, Sender};
use vela_cluster::{DeviceId, TrafficLedger};

use crate::message::Message;

/// Master-side endpoint of the star network.
#[derive(Debug)]
pub struct MasterHub {
    to_workers: Vec<DownLink>,
    from_workers: Receiver<(usize, Vec<u8>)>,
    device: DeviceId,
}

/// Worker-side endpoint.
#[derive(Debug)]
pub struct WorkerPort {
    /// This worker's index in the master's worker list.
    pub index: usize,
    /// The device this worker runs on.
    pub device: DeviceId,
    rx: Receiver<Vec<u8>>,
    up: UpLink,
}

#[derive(Debug)]
struct DownLink {
    tx: Sender<Vec<u8>>,
    src: DeviceId,
    dst: DeviceId,
    ledger: Arc<TrafficLedger>,
}

#[derive(Debug)]
struct UpLink {
    tx: Sender<(usize, Vec<u8>)>,
    index: usize,
    src: DeviceId,
    dst: DeviceId,
    ledger: Arc<TrafficLedger>,
}

/// Builds a star network between `master` and `workers`, accounting all
/// traffic in `ledger`.
///
/// # Panics
/// Panics if `workers` is empty.
pub fn star(
    ledger: Arc<TrafficLedger>,
    master: DeviceId,
    workers: &[DeviceId],
) -> (MasterHub, Vec<WorkerPort>) {
    assert!(!workers.is_empty(), "star needs at least one worker");
    let (up_tx, up_rx) = channel();
    let mut to_workers = Vec::with_capacity(workers.len());
    let mut ports = Vec::with_capacity(workers.len());
    for (index, &dev) in workers.iter().enumerate() {
        let (down_tx, down_rx) = channel();
        to_workers.push(DownLink {
            tx: down_tx,
            src: master,
            dst: dev,
            ledger: ledger.clone(),
        });
        ports.push(WorkerPort {
            index,
            device: dev,
            rx: down_rx,
            up: UpLink {
                tx: up_tx.clone(),
                index,
                src: dev,
                dst: master,
                ledger: ledger.clone(),
            },
        });
    }
    (
        MasterHub {
            to_workers,
            from_workers: up_rx,
            device: master,
        },
        ports,
    )
}

impl MasterHub {
    /// The master's device.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Number of workers attached.
    pub fn worker_count(&self) -> usize {
        self.to_workers.len()
    }

    /// The device of worker `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn worker_device(&self, index: usize) -> DeviceId {
        self.to_workers[index].dst
    }

    /// Sends a message to worker `index`, recording its bytes.
    ///
    /// # Panics
    /// Panics if the worker has hung up (a worker thread died).
    pub fn send(&self, index: usize, msg: &Message) {
        let link = &self.to_workers[index];
        link.ledger
            .record(link.src, link.dst, msg.accounted_bytes());
        link.tx
            .send(msg.encode())
            .expect("worker channel closed unexpectedly");
    }

    /// Broadcasts a message to every worker.
    pub fn broadcast(&self, msg: &Message) {
        for index in 0..self.to_workers.len() {
            self.send(index, msg);
        }
    }

    /// Blocks for the next worker message, returning `(worker_index,
    /// message)`.
    ///
    /// # Panics
    /// Panics if all workers have hung up.
    pub fn recv(&self) -> (usize, Message) {
        let (index, bytes) = self
            .from_workers
            .recv()
            .expect("all worker channels closed");
        (index, Message::decode(&bytes))
    }
}

impl WorkerPort {
    /// Blocks for the next message from the master.
    ///
    /// # Panics
    /// Panics if the master hung up.
    pub fn recv(&self) -> Message {
        Message::decode(&self.rx.recv().expect("master channel closed"))
    }

    /// Sends a message to the master, recording its bytes.
    ///
    /// # Panics
    /// Panics if the master hung up.
    pub fn send(&self, msg: &Message) {
        self.up
            .ledger
            .record(self.up.src, self.up.dst, msg.accounted_bytes());
        self.up
            .tx
            .send((self.up.index, msg.encode()))
            .expect("master channel closed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use vela_cluster::Topology;

    fn setup() -> (Arc<TrafficLedger>, MasterHub, Vec<WorkerPort>) {
        let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let (hub, ports) = star(ledger.clone(), DeviceId(0), &workers);
        (ledger, hub, ports)
    }

    #[test]
    fn messages_flow_both_ways() {
        let (_, hub, ports) = setup();
        hub.send(2, &Message::StepBegin { step: 1 });
        assert_eq!(ports[2].recv(), Message::StepBegin { step: 1 });
        ports[4].send(&Message::StepDone);
        let (idx, msg) = hub.recv();
        assert_eq!(idx, 4);
        assert_eq!(msg, Message::StepDone);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let (_, hub, ports) = setup();
        hub.broadcast(&Message::StepEnd);
        for port in &ports {
            assert_eq!(port.recv(), Message::StepEnd);
        }
    }

    #[test]
    fn traffic_is_recorded_per_link() {
        let (ledger, hub, ports) = setup();
        let msg = Message::TokenBatch {
            block: 0,
            expert: 0,
            payload: Payload::Virtual {
                rows: 10,
                bytes_per_token: 100,
            },
        };
        hub.send(0, &msg); // master → worker on the same device: free
        hub.send(1, &msg); // same node: internal
        hub.send(2, &msg); // cross-node: external
        ports[2].send(&msg); // reply crosses back
        let t = ledger.peek();
        assert_eq!(t.internal_bytes, msg.accounted_bytes());
        assert_eq!(t.external_total(), 2 * msg.accounted_bytes());
    }

    #[test]
    fn worker_metadata() {
        let (_, hub, ports) = setup();
        assert_eq!(hub.worker_count(), 6);
        assert_eq!(hub.device(), DeviceId(0));
        assert_eq!(hub.worker_device(3), DeviceId(3));
        assert_eq!(ports[5].index, 5);
        assert_eq!(ports[5].device, DeviceId(5));
    }

    #[test]
    fn cross_thread_usage() {
        let (_, hub, mut ports) = setup();
        let port = ports.remove(0);
        let handle = std::thread::spawn(move || {
            let msg = port.recv();
            port.send(&Message::StepDone);
            msg
        });
        hub.send(0, &Message::StepBegin { step: 9 });
        let (idx, reply) = hub.recv();
        assert_eq!((idx, reply), (0, Message::StepDone));
        assert_eq!(handle.join().unwrap(), Message::StepBegin { step: 9 });
    }
}

//! The master-side Expert Broker (§IV-A, Fig. 4).
//!
//! `BrokerClient` implements the backbone's
//! [`ExpertProvider`] seam over the star
//! transport: the token dispatcher ships per-expert token groups to
//! whichever worker the placement assigns, the token receiver collects the
//! results, and the conjugated gradient dispatcher/receiver handle the
//! backward pass. It also logs, per MoE block and pass, the bytes and rows
//! exchanged with each worker — the inputs to the Eq. (7) time model.

use std::collections::HashMap;

use vela_model::provider::{ExpertBatch, ExpertProvider};
use vela_obs::LazyCounter;
use vela_placement::Placement;
use vela_tensor::Tensor;

use crate::message::{Message, Payload};
use crate::transport::{MasterHub, TransportError};

/// Aggregate dispatch/gather telemetry across all phases and engines.
static PHASE_BYTES_OUT: LazyCounter = LazyCounter::new("runtime.phase.bytes_out");
static PHASE_BYTES_BACK: LazyCounter = LazyCounter::new("runtime.phase.bytes_back");
static PHASE_ROWS: LazyCounter = LazyCounter::new("runtime.phase.rows");

/// Short span/event tag for a pass.
pub(crate) fn pass_name(pass: Pass) -> &'static str {
    match pass {
        Pass::Forward => "fwd",
        Pass::Backward => "bwd",
    }
}

/// Mirrors one completed [`PhaseLog`] into `vela-obs`: aggregate and
/// per-worker byte/row counters plus a per-expert rows event
/// (`src: "runtime"` — the dispatch-level view of routing, which the
/// trace summarizer prefers over the model-level view to avoid double
/// counting).
pub(crate) fn observe_phase(log: &PhaseLog, expert_rows: &[(usize, usize)]) {
    if !vela_obs::enabled() {
        return;
    }
    PHASE_BYTES_OUT.add(log.bytes_out.iter().sum());
    PHASE_BYTES_BACK.add(log.bytes_back.iter().sum());
    PHASE_ROWS.add(log.rows.iter().sum());
    for (w, ((&out, &back), &rows)) in log
        .bytes_out
        .iter()
        .zip(&log.bytes_back)
        .zip(&log.rows)
        .enumerate()
    {
        if out == 0 && back == 0 && rows == 0 {
            continue;
        }
        vela_obs::counter(&format!("runtime.worker.{w}.bytes_out")).add(out);
        vela_obs::counter(&format!("runtime.worker.{w}.bytes_back")).add(back);
        vela_obs::counter(&format!("runtime.worker.{w}.rows")).add(rows);
    }
    vela_obs::expert_rows("runtime", pass_name(log.pass), log.block, expert_rows);
}

/// Which half of the step a phase belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Token dispatch + result gather.
    Forward,
    /// Gradient dispatch + gradient gather.
    Backward,
}

/// Communication log of one MoE block's dispatch/gather for one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseLog {
    /// The MoE block.
    pub block: usize,
    /// Forward or backward.
    pub pass: Pass,
    /// Bytes sent master → worker, per worker index.
    pub bytes_out: Vec<u64>,
    /// Bytes received worker → master, per worker index.
    pub bytes_back: Vec<u64>,
    /// Token rows processed per worker (drives expert compute time).
    pub rows: Vec<u64>,
}

/// The master-side broker: routes expert work to workers per the placement.
#[derive(Debug)]
pub struct BrokerClient {
    hub: MasterHub,
    placement: Placement,
    phase_logs: Vec<PhaseLog>,
    step: u64,
}

impl BrokerClient {
    /// Creates a broker over `hub` using `placement`.
    ///
    /// # Panics
    /// Panics if the placement's worker count differs from the hub's.
    pub fn new(hub: MasterHub, placement: Placement) -> Self {
        assert_eq!(
            placement.workers(),
            hub.worker_count(),
            "placement targets {} workers but hub has {}",
            placement.workers(),
            hub.worker_count()
        );
        BrokerClient {
            hub,
            placement,
            phase_logs: Vec::new(),
            step: 0,
        }
    }

    /// The placement in force.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Label of the transport backend in use.
    pub fn transport(&self) -> &'static str {
        self.hub.transport()
    }

    /// Broadcasts `StepBegin`, starting a new step on every worker.
    pub fn step_begin(&mut self) -> Result<(), TransportError> {
        self.step += 1;
        self.hub.broadcast(&Message::StepBegin { step: self.step })
    }

    /// Broadcasts `StepEnd` and waits for every worker's `StepDone`.
    pub fn step_end_and_wait(&mut self) -> Result<(), TransportError> {
        self.hub.broadcast(&Message::StepEnd)?;
        let mut pending = self.hub.worker_count();
        while pending > 0 {
            let (_, msg) = self.hub.recv()?;
            assert_eq!(msg, Message::StepDone, "expected StepDone");
            pending -= 1;
        }
        Ok(())
    }

    /// Shuts down all workers and closes the links; the caller joins
    /// their threads (or reaps their processes) to finish teardown.
    pub fn shutdown(&mut self) -> Result<(), TransportError> {
        let sent = self.hub.broadcast(&Message::Shutdown);
        self.hub.shutdown();
        sent
    }

    /// Fetches (and evicts) one expert's serialized parameters from the
    /// worker currently hosting it, without reinstalling them anywhere.
    /// Used by process-mode teardown to reassemble the expert population
    /// on the master.
    pub fn fetch_expert(&mut self, block: usize, expert: usize) -> Result<Vec<u8>, TransportError> {
        let from = self.placement.worker_of(block, expert);
        self.hub.send(
            from,
            &Message::FetchExpert {
                block: block as u32,
                expert: expert as u32,
            },
        )?;
        let (src, msg) = self.hub.recv()?;
        assert_eq!(src, from, "expert state from wrong worker");
        let Message::ExpertState {
            block: rb,
            expert: re,
            data,
        } = msg
        else {
            panic!("expected ExpertState, got {msg:?}");
        };
        assert_eq!((rb as usize, re as usize), (block, expert));
        Ok(data)
    }

    /// Migrates one expert to worker `to` (no-op if already there),
    /// routing its serialized parameters through the master exactly like
    /// the framework's other flows. Must be called *between* steps.
    ///
    /// Returns the parameter bytes moved (0 for a no-op).
    ///
    /// # Panics
    /// Panics if indices are out of range or a worker misbehaves.
    pub fn migrate_expert(
        &mut self,
        block: usize,
        expert: usize,
        to: usize,
    ) -> Result<u64, TransportError> {
        let from = self.placement.worker_of(block, expert);
        if from == to {
            return Ok(0);
        }
        let data = self.fetch_expert(block, expert)?;
        let bytes = data.len() as u64;
        self.hub.send(
            to,
            &Message::ExpertState {
                block: block as u32,
                expert: expert as u32,
                data,
            },
        )?;
        let (dst, ack) = self.hub.recv()?;
        assert_eq!(dst, to, "install ack from wrong worker");
        assert!(
            matches!(ack, Message::InstallDone { .. }),
            "expected InstallDone, got {ack:?}"
        );
        self.placement.set_worker(block, expert, to);
        Ok(bytes)
    }

    /// Drains the per-block communication logs accumulated since the last
    /// call (two entries per block per step: forward and backward).
    pub fn take_phase_logs(&mut self) -> Vec<PhaseLog> {
        std::mem::take(&mut self.phase_logs)
    }

    /// Dispatch + gather for one block and pass. `make_msg` builds the
    /// outbound message; `extract` pulls the payload out of the matching
    /// reply kind.
    fn exchange(
        &mut self,
        block: usize,
        pass: Pass,
        batches: &[ExpertBatch],
        outbound: impl Fn(u32, u32, Payload) -> Message,
        extract: impl Fn(Message) -> (u32, u32, Payload),
    ) -> Result<Vec<Tensor>, TransportError> {
        let _span = vela_obs::span(match pass {
            Pass::Forward => "runtime.broker.fwd",
            Pass::Backward => "runtime.broker.bwd",
        });
        let workers = self.hub.worker_count();
        let mut log = PhaseLog {
            block,
            pass,
            bytes_out: vec![0; workers],
            bytes_back: vec![0; workers],
            rows: vec![0; workers],
        };

        // Token/gradient dispatcher.
        for batch in batches {
            let w = self.placement.worker_of(block, batch.expert);
            let msg = outbound(
                block as u32,
                batch.expert as u32,
                Payload::from_tensor(&batch.xs),
            );
            log.bytes_out[w] += msg.accounted_bytes();
            log.rows[w] += batch.xs.rows() as u64;
            self.hub.send(w, &msg)?;
        }

        // Receiver: collect one reply per batch, match by (block, expert).
        let mut by_expert: HashMap<usize, Tensor> = HashMap::with_capacity(batches.len());
        for _ in 0..batches.len() {
            let (w, msg) = self.hub.recv()?;
            log.bytes_back[w] += msg.accounted_bytes();
            let (rblock, rexpert, payload) = extract(msg);
            assert_eq!(rblock as usize, block, "reply for wrong block");
            by_expert.insert(rexpert as usize, payload.to_tensor());
        }
        if vela_obs::enabled() {
            let rows: Vec<(usize, usize)> =
                batches.iter().map(|b| (b.expert, b.xs.rows())).collect();
            observe_phase(&log, &rows);
        }
        self.phase_logs.push(log);

        Ok(batches
            .iter()
            .map(|b| {
                by_expert
                    .remove(&b.expert)
                    .expect("missing reply for expert")
            })
            .collect())
    }
}

// [`ExpertProvider`] is an infallible seam (the model crate knows nothing
// about transports), so a transport failure mid-exchange surfaces as a
// panic with the underlying error. Control-plane methods
// (`step_begin`/`step_end_and_wait`/`shutdown`/`migrate_expert`) propagate
// `TransportError` instead, which is where disconnects actually occur in
// practice (between steps, or while waiting on acks).
impl ExpertProvider for BrokerClient {
    fn forward_block(&mut self, block: usize, batches: &[ExpertBatch]) -> Vec<Tensor> {
        self.exchange(
            block,
            Pass::Forward,
            batches,
            |block, expert, payload| Message::TokenBatch {
                block,
                expert,
                payload,
            },
            |msg| match msg {
                Message::ExpertResult {
                    block,
                    expert,
                    payload,
                } => (block, expert, payload),
                other => panic!("expected ExpertResult, got {other:?}"),
            },
        )
        .unwrap_or_else(|e| panic!("transport failed during forward exchange: {e}"))
    }

    fn backward_block(&mut self, block: usize, grads: &[ExpertBatch]) -> Vec<Tensor> {
        self.exchange(
            block,
            Pass::Backward,
            grads,
            |block, expert, payload| Message::GradBatch {
                block,
                expert,
                payload,
            },
            |msg| match msg {
                Message::GradResult {
                    block,
                    expert,
                    payload,
                } => (block, expert, payload),
                other => panic!("expected GradResult, got {other:?}"),
            },
        )
        .unwrap_or_else(|e| panic!("transport failed during backward exchange: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::star;
    use crate::worker::ExpertManager;
    use std::sync::Arc;
    use vela_cluster::{DeviceId, Topology, TrafficLedger};
    use vela_model::{LocalExpertStore, ModelConfig};
    use vela_nn::optim::AdamWConfig;
    use vela_tensor::rng::DetRng;

    /// A full micro setup: 2 workers, experts split by expert parity.
    fn setup() -> (
        BrokerClient,
        Vec<ExpertManager>,
        LocalExpertStore,
        ModelConfig,
    ) {
        let cfg = ModelConfig::test_small();
        let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let (hub, ports) = star(ledger, DeviceId(0), &[DeviceId(1), DeviceId(2)]);

        let reference = LocalExpertStore::new(&cfg, &mut DetRng::new(7));
        let mut source = LocalExpertStore::new(&cfg, &mut DetRng::new(7));
        let mut shard0 = LocalExpertStore::empty(cfg.blocks, cfg.experts);
        let mut shard1 = LocalExpertStore::empty(cfg.blocks, cfg.experts);
        let mut assign = Vec::new();
        for l in 0..cfg.blocks {
            let mut row = Vec::new();
            for e in 0..cfg.experts {
                let ffn = source.take(l, e);
                if e % 2 == 0 {
                    shard0.insert(l, e, ffn);
                    row.push(0);
                } else {
                    shard1.insert(l, e, ffn);
                    row.push(1);
                }
            }
            assign.push(row);
        }
        let placement = Placement::new(assign, 2);

        let mut ports = ports.into_iter();
        let managers = vec![
            ExpertManager::spawn(ports.next().unwrap(), shard0, AdamWConfig::default()),
            ExpertManager::spawn(ports.next().unwrap(), shard1, AdamWConfig::default()),
        ];
        (BrokerClient::new(hub, placement), managers, reference, cfg)
    }

    fn teardown(broker: &mut BrokerClient, managers: Vec<ExpertManager>) {
        broker.shutdown().unwrap();
        for m in managers {
            m.join();
        }
    }

    #[test]
    fn forward_matches_local_store() {
        let (mut broker, managers, mut reference, cfg) = setup();
        let mut rng = DetRng::new(3);
        let batches = vec![
            ExpertBatch {
                expert: 0,
                xs: vela_tensor::Tensor::uniform((3, cfg.dim), -1.0, 1.0, &mut rng),
            },
            ExpertBatch {
                expert: 1,
                xs: vela_tensor::Tensor::uniform((2, cfg.dim), -1.0, 1.0, &mut rng),
            },
            ExpertBatch {
                expert: 3,
                xs: vela_tensor::Tensor::uniform((4, cfg.dim), -1.0, 1.0, &mut rng),
            },
        ];
        let remote = broker.forward_block(0, &batches);
        let local = reference.forward_block(0, &batches);
        assert_eq!(remote, local, "broker must be computation-transparent");
        teardown(&mut broker, managers);
    }

    #[test]
    fn backward_matches_local_store() {
        let (mut broker, managers, mut reference, cfg) = setup();
        let mut rng = DetRng::new(4);
        let xs = vela_tensor::Tensor::uniform((3, cfg.dim), -1.0, 1.0, &mut rng);
        let batches = vec![ExpertBatch {
            expert: 2,
            xs: xs.clone(),
        }];
        broker.forward_block(1, &batches);
        reference.forward_block(1, &batches);
        let g = vec![ExpertBatch {
            expert: 2,
            xs: vela_tensor::Tensor::ones((3, cfg.dim)),
        }];
        let remote = broker.backward_block(1, &g);
        let local = reference.backward_block(1, &g);
        assert_eq!(remote, local);
        teardown(&mut broker, managers);
    }

    #[test]
    fn phase_logs_track_bytes_and_rows() {
        let (mut broker, managers, _, cfg) = setup();
        let mut rng = DetRng::new(5);
        let batches = vec![
            ExpertBatch {
                expert: 0, // worker 0
                xs: vela_tensor::Tensor::uniform((3, cfg.dim), -1.0, 1.0, &mut rng),
            },
            ExpertBatch {
                expert: 1, // worker 1
                xs: vela_tensor::Tensor::uniform((5, cfg.dim), -1.0, 1.0, &mut rng),
            },
        ];
        broker.forward_block(0, &batches);
        let logs = broker.take_phase_logs();
        assert_eq!(logs.len(), 1);
        let log = &logs[0];
        assert_eq!(log.pass, Pass::Forward);
        assert_eq!(log.rows, vec![3, 5]);
        assert!(log.bytes_out[1] > log.bytes_out[0], "5 rows > 3 rows");
        assert_eq!(log.bytes_out, log.bytes_back, "results mirror inputs");
        assert!(broker.take_phase_logs().is_empty(), "logs drained");
        teardown(&mut broker, managers);
    }

    #[test]
    fn step_control_round_trips() {
        let (mut broker, managers, _, _) = setup();
        broker.step_begin().unwrap();
        broker.step_end_and_wait().unwrap(); // must not deadlock
        teardown(&mut broker, managers);
    }

    #[test]
    fn dead_workers_surface_as_errors_not_panics() {
        let (mut broker, managers, _, _) = setup();
        broker.shutdown().unwrap();
        for m in managers {
            m.join();
        }
        // Workers are gone and links closed: control-plane calls must
        // report the disconnect instead of aborting.
        assert!(broker.step_begin().is_err());
    }
}

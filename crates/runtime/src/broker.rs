//! The master-side Expert Broker (§IV-A, Fig. 4).
//!
//! `BrokerClient` implements the backbone's
//! [`ExpertProvider`] seam over the star
//! transport: the token dispatcher ships per-expert token groups to
//! whichever worker the placement assigns, the token receiver collects the
//! results, and the conjugated gradient dispatcher/receiver handle the
//! backward pass. It also logs, per MoE block and pass, the bytes and rows
//! exchanged with each worker — the inputs to the Eq. (7) time model.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

use vela_model::checkpoint;
use vela_model::provider::{ExpertBatch, ExpertProvider};
use vela_obs::{Counter, FlowPhase, LazyCounter};
use vela_placement::ReplicatedPlacement;
use vela_tensor::Tensor;

use crate::message::{GroupItem, GroupPass, Message, PackedData, PackedGroup, Payload};
use crate::pipeline::{AutoTuner, ChunkPlan, ExchangeTimer};
use crate::pipeline::{
    COMBINE_US, MIGRATION_BYTES, MIGRATION_CHUNKS, MIGRATION_COMMITS, MIGRATION_FLUSH_US,
    MIGRATION_PUMP_US, SPAN_COMBINE, SPAN_INFLIGHT, SPAN_MIGRATION_PUMP, SPAN_SERIALIZE, STALLS,
    STALL_US,
};
use crate::transport::{
    ExchangeConfig, MasterHub, Microbatch, TransportError, WireFormat, WireStats,
};

/// Aggregate dispatch/gather telemetry across all phases and engines.
static PHASE_BYTES_OUT: LazyCounter = LazyCounter::new("runtime.phase.bytes_out");
static PHASE_BYTES_BACK: LazyCounter = LazyCounter::new("runtime.phase.bytes_back");
static PHASE_ROWS: LazyCounter = LazyCounter::new("runtime.phase.rows");

/// One worker's byte/row counter handles, resolved once per worker index
/// instead of re-registering `runtime.worker.{w}.*` by formatted name on
/// every completed phase.
#[derive(Clone, Copy)]
struct WorkerCounters {
    out: Counter,
    back: Counter,
    rows: Counter,
}

/// Process-global cache of per-worker counter handles, grown lazily to
/// cover the highest worker index observed.
fn worker_counters(w: usize) -> WorkerCounters {
    static CACHE: Mutex<Vec<WorkerCounters>> = Mutex::new(Vec::new());
    let mut cache = CACHE.lock().unwrap();
    while cache.len() <= w {
        let i = cache.len();
        cache.push(WorkerCounters {
            out: vela_obs::counter(&format!("runtime.worker.{i}.bytes_out")),
            back: vela_obs::counter(&format!("runtime.worker.{i}.bytes_back")),
            rows: vela_obs::counter(&format!("runtime.worker.{i}.rows")),
        });
    }
    cache[w]
}

/// Short span/event tag for a pass.
pub(crate) fn pass_name(pass: Pass) -> &'static str {
    match pass {
        Pass::Forward => "fwd",
        Pass::Backward => "bwd",
    }
}

/// The wire-level pass discriminant for a broker pass.
pub(crate) fn group_pass(pass: Pass) -> GroupPass {
    match pass {
        Pass::Forward => GroupPass::Forward,
        Pass::Backward => GroupPass::Backward,
    }
}

/// Correlation key tying this master-side dispatch (and its reply) to the
/// worker's serve span. Both sides derive the step component from their
/// own [`vela_obs::current_step`], which agree because `StepBegin` frames
/// precede dispatches on every per-link FIFO.
pub(crate) fn exchange_corr(w: usize, block: usize, pass: Pass, chunk: usize) -> u64 {
    vela_obs::corr::pack(
        vela_obs::current_step(),
        w as u64,
        block as u64,
        matches!(pass, Pass::Backward) as u64,
        chunk as u64,
    )
}

/// Mirrors one completed [`PhaseLog`] into `vela-obs`: aggregate and
/// per-worker byte/row counters plus a per-expert rows event
/// (`src: "runtime"` — the dispatch-level view of routing, which the
/// trace summarizer prefers over the model-level view to avoid double
/// counting).
pub(crate) fn observe_phase(log: &PhaseLog, expert_rows: &[(usize, usize)]) {
    if !vela_obs::enabled() {
        return;
    }
    PHASE_BYTES_OUT.add(log.bytes_out.iter().sum());
    PHASE_BYTES_BACK.add(log.bytes_back.iter().sum());
    PHASE_ROWS.add(log.rows.iter().sum());
    for (w, ((&out, &back), &rows)) in log
        .bytes_out
        .iter()
        .zip(&log.bytes_back)
        .zip(&log.rows)
        .enumerate()
    {
        if out == 0 && back == 0 && rows == 0 {
            continue;
        }
        let c = worker_counters(w);
        c.out.add(out);
        c.back.add(back);
        c.rows.add(rows);
    }
    vela_obs::expert_rows("runtime", pass_name(log.pass), log.block, expert_rows);
}

/// Trace `src` labels for per-replica row events, one per worker index
/// (the obs layer wants `&'static str`; 16 covers every testbed here).
const WORKER_SRCS: [&str; 16] = [
    "worker0", "worker1", "worker2", "worker3", "worker4", "worker5", "worker6", "worker7",
    "worker8", "worker9", "worker10", "worker11", "worker12", "worker13", "worker14", "worker15",
];

pub(crate) fn worker_src(w: usize) -> &'static str {
    WORKER_SRCS.get(w).copied().unwrap_or("worker+")
}

/// Routes one block-pass's expert batches onto replicas.
///
/// `loads` is `(expert, rows)` per batch in dispatch order. Forward:
/// single-replica batches have no freedom and pin the base load; the
/// replicated ones are then placed largest-first on the least-loaded
/// replica (LPT), every tie broken on the lowest index, and the choice is
/// cached in `routes`. Backward mirrors the cached forward route — the
/// serving replica holds the activations backward needs — falling back to
/// the primary. Degree 1 everywhere degenerates to the single-owner
/// mapping exactly.
pub(crate) fn route_experts(
    placement: &ReplicatedPlacement,
    routes: &mut HashMap<(usize, usize), usize>,
    block: usize,
    backward: bool,
    loads: &[(usize, u64)],
) -> Vec<usize> {
    if backward {
        return loads
            .iter()
            .map(|&(e, _)| {
                routes
                    .get(&(block, e))
                    .copied()
                    .unwrap_or_else(|| placement.primary(block, e))
            })
            .collect();
    }
    let mut load = vec![0u64; placement.workers()];
    let mut out = vec![usize::MAX; loads.len()];
    let mut free: Vec<usize> = Vec::new();
    for (i, &(e, rows)) in loads.iter().enumerate() {
        let reps = placement.replicas_of(block, e);
        if reps.len() == 1 {
            out[i] = reps[0];
            load[reps[0]] += rows;
        } else {
            free.push(i);
        }
    }
    free.sort_by_key(|&i| (std::cmp::Reverse(loads[i].1), i));
    for i in free {
        let (e, rows) = loads[i];
        let w = placement
            .replicas_of(block, e)
            .iter()
            .copied()
            .min_by_key(|&w| (load[w], w))
            .expect("non-empty replica set");
        out[i] = w;
        load[w] += rows;
        routes.insert((block, e), w);
    }
    out
}

/// One in-flight background migration: expert `(block, expert)` is being
/// shadow-installed on `to` while `from` keeps serving it. The master
/// relays the source's chunk stream to the destination from whatever
/// drain loop happens to be running, so the transfer rides the per-link
/// writer threads underneath training compute.
#[derive(Debug)]
struct Lane {
    block: usize,
    expert: usize,
    from: usize,
    to: usize,
    /// Serialized parameter bytes relayed so far (payload, not framing) —
    /// what the synchronous `migrate_expert` would have reported.
    forwarded: u64,
    /// Destination acked `InstallDone`: the shadow now tracks the source
    /// in lockstep (forwarded gradients step it through the same
    /// updates), waiting for the rest of the plan so the whole placement
    /// change cuts over at one boundary.
    installed: bool,
}

/// How many lanes may *stream* concurrently. A full re-placement can
/// move the whole population; letting every source serialize at once
/// would dump all of it onto one step's critical path (the destination
/// ingests and installs megabytes inside a single window). Capping the
/// streaming lanes spreads the movement across several step boundaries,
/// so each step only carries a slice small enough to hide in worker idle
/// time — the queue drains as installs complete. Installed lanes hold no
/// slot: they sit in cheap gradient lockstep until the group cutover.
const MAX_ACTIVE_LANES: usize = 2;

/// Book-keeping for background migrations (overlap mode). Empty in sync
/// mode, in which case every routed drain degenerates to a plain `recv`.
#[derive(Debug, Default)]
pub(crate) struct MigrationState {
    lanes: Vec<Lane>,
    /// Requested moves waiting for an active-lane slot, in request order:
    /// `(block, expert, from, to)`. Queued experts keep training at their
    /// source untouched — their shadow window only opens on admission.
    queued: VecDeque<(usize, usize, usize, usize)>,
    /// Parameter bytes moved by committed lanes.
    bytes: u64,
    /// Lanes committed (cut over) so far.
    committed: u64,
    /// Engine step of the most recent cutover (0 = none yet).
    last_commit_step: u64,
}

impl MigrationState {
    /// Moves still streaming, awaiting cutover, or queued for a slot.
    pub(crate) fn in_flight(&self) -> usize {
        self.lanes.len() + self.queued.len()
    }

    /// Lanes still streaming chunks (not yet installed) — the admission
    /// cap counts these, not installed lanes awaiting the group cutover.
    fn streaming(&self) -> usize {
        self.lanes.iter().filter(|l| !l.installed).count()
    }

    /// The whole plan has landed: every requested move is installed and
    /// nothing waits in the queue. Only then may the cutover fire — all
    /// lanes commit at one step boundary, so the placement change is
    /// atomic and bit-identical to a stop-the-world migration there.
    fn group_ready(&self) -> bool {
        !self.lanes.is_empty() && self.queued.is_empty() && self.lanes.iter().all(|l| l.installed)
    }
}

/// Inspects a drained frame: if it belongs to an in-flight migration
/// lane it is serviced here — source chunks (`ExpertChunk`/`OptimState`)
/// relay to the destination over the accounted hub path, `InstallDone`
/// from the destination marks the lane ready for cutover — and `None` is
/// returned. Any other frame is handed back to the caller's protocol
/// loop untouched.
fn route_lane_frame(
    hub: &mut MasterHub,
    st: &mut MigrationState,
    w: usize,
    msg: Message,
) -> Result<Option<(usize, Message)>, TransportError> {
    let key = match &msg {
        Message::ExpertChunk { block, expert, .. }
        | Message::OptimState { block, expert, .. }
        | Message::InstallDone { block, expert } => (*block as usize, *expert as usize),
        _ => return Ok(Some((w, msg))),
    };
    let Some(lane) = st.lanes.iter_mut().find(|l| (l.block, l.expert) == key) else {
        // Not lane traffic (e.g. the sync-mode install ack) — the
        // caller's own protocol validation deals with it.
        return Ok(Some((w, msg)));
    };
    match msg {
        Message::ExpertChunk { ref data, .. } => {
            if w != lane.from {
                return Err(TransportError::Protocol(format!(
                    "migration chunk for expert ({},{}) arrived from worker {w}, \
                     lane source is {}",
                    key.0, key.1, lane.from
                )));
            }
            lane.forwarded += data.len() as u64;
            MIGRATION_CHUNKS.add(1);
            MIGRATION_BYTES.add(data.len() as u64);
            let to = lane.to;
            hub.send(to, &msg)?;
            Ok(None)
        }
        Message::OptimState { .. } => {
            if w != lane.from {
                return Err(TransportError::Protocol(format!(
                    "migration optimizer state for expert ({},{}) arrived from \
                     worker {w}, lane source is {}",
                    key.0, key.1, lane.from
                )));
            }
            let to = lane.to;
            hub.send(to, &msg)?;
            Ok(None)
        }
        Message::InstallDone { .. } => {
            if w != lane.to {
                return Err(TransportError::Protocol(format!(
                    "install ack for migrating expert ({},{}) arrived from worker \
                     {w}, lane destination is {}",
                    key.0, key.1, lane.to
                )));
            }
            lane.installed = true;
            Ok(None)
        }
        _ => unreachable!("key extraction and servicing must cover the same variants"),
    }
}

/// `hub.recv()` that transparently services migration-lane traffic:
/// chunk relays interleave with whatever protocol frames the caller is
/// actually waiting on. Every blocking drain in the broker goes through
/// here, so a background migration makes progress at any point of the
/// step — not just at boundaries.
pub(crate) fn recv_routed(
    hub: &mut MasterHub,
    st: &mut MigrationState,
) -> Result<(usize, Message), TransportError> {
    loop {
        let (w, msg) = hub.recv()?;
        if let Some(out) = route_lane_frame(hub, st, w, msg)? {
            return Ok(out);
        }
    }
}

/// One gradient-sync target: the serving worker's gradients for
/// `(block, expert)` are copied into each peer.
struct SyncTarget {
    block: usize,
    expert: usize,
    serving: usize,
    peers: Vec<usize>,
}

/// The sync fan-out for this step: every replicated pair, plus every
/// in-flight migration lane — the shadow install must see each window
/// step's gradients to stay in lockstep with the source.
fn sync_targets(
    placement: &ReplicatedPlacement,
    routes: &HashMap<(usize, usize), usize>,
    st: &MigrationState,
) -> Vec<SyncTarget> {
    let mut targets: Vec<SyncTarget> = placement
        .replicated_pairs()
        .into_iter()
        .map(|(block, expert)| {
            let serving = routes
                .get(&(block, expert))
                .copied()
                .unwrap_or_else(|| placement.primary(block, expert));
            let peers = placement
                .replicas_of(block, expert)
                .iter()
                .copied()
                .filter(|&w| w != serving)
                .collect();
            SyncTarget {
                block,
                expert,
                serving,
                peers,
            }
        })
        .collect();
    for lane in &st.lanes {
        let key = (lane.block, lane.expert);
        if let Some(t) = targets.iter_mut().find(|t| (t.block, t.expert) == key) {
            if !t.peers.contains(&lane.to) {
                t.peers.push(lane.to);
            }
        } else {
            targets.push(SyncTarget {
                block: lane.block,
                expert: lane.expert,
                serving: routes.get(&key).copied().unwrap_or(lane.from),
                peers: vec![lane.to],
            });
        }
    }
    targets
}

/// The replica gradient-sync round shared by the real and virtual
/// engines: for each sync target (replicated pairs plus migration
/// lanes), fetch the serving worker's gradients and install them into
/// every peer, frame by frame over the accounted hub. See
/// [`BrokerClient::sync_replica_grads`] for the protocol contract.
///
/// With `overlap` off the protocol is strictly sequential round-trips —
/// the seed behavior, byte- and flow-identical. With `overlap` on, every
/// `FetchGrads` is issued up front and gradient states are forwarded to
/// peers as they arrive, so per-target round-trips ride the wire
/// concurrently. Workers only *apply* synced gradients on `StepEnd`
/// either way, so the result is bitwise identical; the returned flow
/// list is emitted in canonical per-target order regardless of arrival
/// order, keeping the modeled sync time deterministic.
pub(crate) fn sync_grads_over(
    hub: &mut MasterHub,
    placement: &ReplicatedPlacement,
    routes: &HashMap<(usize, usize), usize>,
    grad_bytes: u32,
    overlap: bool,
    st: &mut MigrationState,
) -> Result<Vec<(usize, u64)>, TransportError> {
    let targets = sync_targets(placement, routes, st);
    if targets.is_empty() {
        return Ok(Vec::new());
    }
    if !overlap {
        return sync_sequential(hub, &targets, grad_bytes, st);
    }
    sync_overlapped(hub, &targets, grad_bytes, st)
}

/// Sequential per-target round-trips (the seed protocol).
fn sync_sequential(
    hub: &mut MasterHub,
    targets: &[SyncTarget],
    grad_bytes: u32,
    st: &mut MigrationState,
) -> Result<Vec<(usize, u64)>, TransportError> {
    let mut flows = Vec::new();
    for t in targets {
        let (block, expert, serving) = (t.block, t.expert, t.serving);
        let req = Message::FetchGrads {
            block: block as u32,
            expert: expert as u32,
            grad_bytes,
        };
        flows.push((serving, req.accounted_bytes()));
        hub.send(serving, &req)?;
        let (src, msg) = recv_routed(hub, st)?;
        if src != serving {
            return Err(TransportError::Protocol(format!(
                "grad state arrived from worker {src}, expected {serving}"
            )));
        }
        let reply_bytes = msg.accounted_bytes();
        let Message::GradState {
            block: rb,
            expert: re,
            payload,
        } = msg
        else {
            return Err(TransportError::Protocol(format!(
                "expected GradState, got {msg:?}"
            )));
        };
        if (rb as usize, re as usize) != (block, expert) {
            return Err(TransportError::Protocol(format!(
                "grad state for expert ({rb},{re}), asked for ({block},{expert})"
            )));
        }
        flows.push((serving, reply_bytes));
        for &w in &t.peers {
            let install = Message::GradState {
                block: block as u32,
                expert: expert as u32,
                payload: payload.clone(),
            };
            flows.push((w, install.accounted_bytes()));
            hub.send(w, &install)?;
            let (dst, ack) = recv_routed(hub, st)?;
            if dst != w {
                return Err(TransportError::Protocol(format!(
                    "grad sync ack arrived from worker {dst}, expected {w}"
                )));
            }
            let ack_bytes = ack.accounted_bytes();
            if !matches!(
                ack,
                Message::GradSyncDone { block: ab, expert: ae }
                    if (ab as usize, ae as usize) == (block, expert)
            ) {
                return Err(TransportError::Protocol(format!(
                    "expected GradSyncDone for ({block},{expert}), got {ack:?}"
                )));
            }
            flows.push((w, ack_bytes));
        }
    }
    Ok(flows)
}

/// All fetches issued up front; states forwarded to peers on arrival;
/// acks collected last. Flow accounting is slotted per target so the
/// returned list is identical to the sequential protocol's no matter
/// how replies interleave.
fn sync_overlapped(
    hub: &mut MasterHub,
    targets: &[SyncTarget],
    grad_bytes: u32,
    st: &mut MigrationState,
) -> Result<Vec<(usize, u64)>, TransportError> {
    let mut slots: Vec<Vec<(usize, u64)>> = Vec::with_capacity(targets.len());
    let mut index: HashMap<(usize, usize), usize> = HashMap::new();
    for (i, t) in targets.iter().enumerate() {
        index.insert((t.block, t.expert), i);
        let req = Message::FetchGrads {
            block: t.block as u32,
            expert: t.expert as u32,
            grad_bytes,
        };
        slots.push(vec![(t.serving, req.accounted_bytes())]);
        hub.send(t.serving, &req)?;
    }
    let mut states_left = targets.len();
    // Acks still owed, tracked per target by peer index so duplicates
    // and strangers are protocol errors, not miscounts.
    let mut acks_owed: Vec<Vec<usize>> = targets.iter().map(|t| t.peers.clone()).collect();
    let mut total_acks: usize = acks_owed.iter().map(Vec::len).sum();
    while states_left > 0 || total_acks > 0 {
        let (w, msg) = recv_routed(hub, st)?;
        let bytes = msg.accounted_bytes();
        match msg {
            Message::GradState {
                block,
                expert,
                payload,
            } => {
                let key = (block as usize, expert as usize);
                let &i = index.get(&key).ok_or_else(|| {
                    TransportError::Protocol(format!(
                        "grad state for unsynced expert ({block},{expert})"
                    ))
                })?;
                let t = &targets[i];
                if w != t.serving {
                    return Err(TransportError::Protocol(format!(
                        "grad state arrived from worker {w}, expected {}",
                        t.serving
                    )));
                }
                if slots[i].len() > 1 {
                    return Err(TransportError::Protocol(format!(
                        "duplicate grad state for expert ({block},{expert})"
                    )));
                }
                slots[i].push((w, bytes));
                for &p in &t.peers {
                    let install = Message::GradState {
                        block,
                        expert,
                        payload: payload.clone(),
                    };
                    slots[i].push((p, install.accounted_bytes()));
                    hub.send(p, &install)?;
                    // The fixed-size ack is appended now so the flow
                    // list comes out in canonical per-target order.
                    let ack = Message::GradSyncDone { block, expert };
                    slots[i].push((p, ack.accounted_bytes()));
                }
                states_left -= 1;
            }
            Message::GradSyncDone { block, expert } => {
                let key = (block as usize, expert as usize);
                let &i = index.get(&key).ok_or_else(|| {
                    TransportError::Protocol(format!(
                        "grad sync ack for unsynced expert ({block},{expert})"
                    ))
                })?;
                let Some(pos) = acks_owed[i].iter().position(|&p| p == w) else {
                    return Err(TransportError::Protocol(format!(
                        "unexpected grad sync ack from worker {w} for expert \
                         ({block},{expert})"
                    )));
                };
                acks_owed[i].swap_remove(pos);
                total_acks -= 1;
            }
            other => {
                return Err(TransportError::Protocol(format!(
                    "unexpected frame during grad sync: {other:?}"
                )))
            }
        }
    }
    Ok(slots.concat())
}

/// Emits per-worker `(expert, rows)` trace events for a routed exchange —
/// the raw data `trace_summary`'s replication section aggregates into
/// per-replica token shares. Only emitted for placements with actual
/// replication, so degree-1 traces stay identical to the seed's.
fn observe_replica_rows(pass: Pass, block: usize, batches: &[ExpertBatch], routes: &[usize]) {
    let workers = routes.iter().copied().max().map_or(0, |w| w + 1);
    for w in 0..workers {
        let rows: Vec<(usize, usize)> = batches
            .iter()
            .zip(routes)
            .filter(|&(_, &r)| r == w)
            .map(|(b, _)| (b.expert, b.xs.rows()))
            .collect();
        vela_obs::expert_rows(worker_src(w), pass_name(pass), block, &rows);
    }
}

/// Which half of the step a phase belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Token dispatch + result gather.
    Forward,
    /// Gradient dispatch + gradient gather.
    Backward,
}

/// Communication log of one MoE block's dispatch/gather for one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseLog {
    /// The MoE block.
    pub block: usize,
    /// Forward or backward.
    pub pass: Pass,
    /// Bytes sent master → worker, per worker index.
    pub bytes_out: Vec<u64>,
    /// Bytes received worker → master, per worker index.
    pub bytes_back: Vec<u64>,
    /// Token rows processed per worker (drives expert compute time).
    pub rows: Vec<u64>,
}

/// The master-side broker: routes expert work to workers per the
/// placement — a [`ReplicatedPlacement`], so each expert batch goes to
/// the least-loaded live replica (degree 1 reduces to the single-owner
/// mapping bit-for-bit).
#[derive(Debug)]
pub struct BrokerClient {
    hub: MasterHub,
    placement: ReplicatedPlacement,
    /// The replica that served each `(block, expert)`'s last forward —
    /// backward must follow it (the replica holds the cached activations).
    routes: HashMap<(usize, usize), usize>,
    phase_logs: Vec<PhaseLog>,
    step: u64,
    exchange_cfg: ExchangeConfig,
    plan: ChunkPlan,
    tuner: AutoTuner,
    /// Background migration lanes (overlap mode); empty in sync mode.
    migrations: MigrationState,
}

impl BrokerClient {
    /// Creates a broker over `hub` using `placement` (a plain
    /// [`Placement`] converts to the degree-1 relation).
    ///
    /// # Panics
    /// Panics if the placement's worker count differs from the hub's.
    pub fn new(hub: MasterHub, placement: impl Into<ReplicatedPlacement>) -> Self {
        let placement = placement.into();
        assert_eq!(
            placement.workers(),
            hub.worker_count(),
            "placement targets {} workers but hub has {}",
            placement.workers(),
            hub.worker_count()
        );
        BrokerClient {
            hub,
            placement,
            routes: HashMap::new(),
            phase_logs: Vec::new(),
            step: 0,
            exchange_cfg: ExchangeConfig::from_env(),
            plan: ChunkPlan::default(),
            tuner: AutoTuner::default(),
            migrations: MigrationState::default(),
        }
    }

    /// The placement in force.
    pub fn placement(&self) -> &ReplicatedPlacement {
        &self.placement
    }

    /// Overrides the exchange shape (coalescing / microbatching) chosen
    /// from the environment at construction. Any shape yields bitwise-
    /// identical results; this knob trades frames for pipeline overlap.
    pub fn set_exchange(&mut self, cfg: ExchangeConfig) {
        self.exchange_cfg = cfg;
    }

    /// The exchange shape in force.
    pub fn exchange_config(&self) -> ExchangeConfig {
        self.exchange_cfg
    }

    /// Wire frames shipped/drained by the underlying hub so far.
    pub fn frame_counts(&self) -> (u64, u64) {
        self.hub.frame_counts()
    }

    /// Actual encoded wire bytes shipped/received so far, split per frame
    /// kind into header vs payload. Distinct from the phase-log ledgers,
    /// which account a wire-format-independent cost by construction; these
    /// are the bytes the chosen `VELA_WIRE`/`VELA_QUANT` encoding really
    /// put on the wire.
    pub fn wire_stats(&self) -> WireStats {
        self.hub.wire_stats()
    }

    /// Label of the transport backend in use.
    pub fn transport(&self) -> &'static str {
        self.hub.transport()
    }

    /// Broadcasts `StepBegin`, starting a new step on every worker. The
    /// step sent on the wire is the process-unique trace step (not the
    /// engine-local count): the master tags its own trace stream with it
    /// and the workers adopt it from the frame, so flow correlation keys
    /// agree across processes and never collide across engine launches.
    /// Under tracing the master also periodically re-probes worker clocks
    /// in the quiescent window between steps (the handshake sample alone
    /// would drift on long runs).
    pub fn step_begin(&mut self) -> Result<(), TransportError> {
        self.step += 1;
        let trace_step = vela_obs::next_trace_step();
        if vela_obs::tracing() && self.step > 1 && self.step % 64 == 1 {
            self.hub.probe_clocks(4);
        }
        self.hub.broadcast(&Message::StepBegin { step: trace_step })
    }

    /// Broadcasts `StepEnd` and waits for every worker's `StepDone`.
    /// Migration-lane frames drained while waiting are relayed, not
    /// errors: the wait is a natural window for background transfers.
    pub fn step_end_and_wait(&mut self) -> Result<(), TransportError> {
        self.hub.broadcast(&Message::StepEnd)?;
        let mut pending = self.hub.worker_count();
        while pending > 0 {
            let (w, msg) = recv_routed(&mut self.hub, &mut self.migrations)?;
            if msg != Message::StepDone {
                return Err(TransportError::Protocol(format!(
                    "worker {w}: expected StepDone, got {msg:?}"
                )));
            }
            pending -= 1;
        }
        Ok(())
    }

    /// Shuts down all workers and closes the links; the caller joins
    /// their threads (or reaps their processes) to finish teardown.
    pub fn shutdown(&mut self) -> Result<(), TransportError> {
        let sent = self.hub.broadcast(&Message::Shutdown);
        self.hub.shutdown();
        sent
    }

    /// Fetches (and evicts) one expert's serialized parameters from the
    /// worker currently hosting it, without reinstalling them anywhere.
    /// Used by process-mode teardown to reassemble the expert population
    /// on the master.
    pub fn fetch_expert(&mut self, block: usize, expert: usize) -> Result<Vec<u8>, TransportError> {
        let from = self.placement.primary(block, expert);
        self.hub.send(
            from,
            &Message::FetchExpert {
                block: block as u32,
                expert: expert as u32,
            },
        )?;
        let (src, msg) = recv_routed(&mut self.hub, &mut self.migrations)?;
        if src != from {
            return Err(TransportError::Protocol(format!(
                "expert state arrived from worker {src}, expected {from}"
            )));
        }
        let Message::ExpertState {
            block: rb,
            expert: re,
            data,
        } = msg
        else {
            return Err(TransportError::Protocol(format!(
                "expected ExpertState, got {msg:?}"
            )));
        };
        if (rb as usize, re as usize) != (block, expert) {
            return Err(TransportError::Protocol(format!(
                "fetched expert ({rb},{re}), asked for ({block},{expert})"
            )));
        }
        Ok(data)
    }

    /// Migrates one expert to worker `to` (no-op if already there),
    /// routing its serialized parameters through the master exactly like
    /// the framework's other flows. Must be called *between* steps.
    ///
    /// Returns the parameter bytes moved (0 for a no-op).
    ///
    /// # Panics
    /// Panics if indices are out of range. A misbehaving worker surfaces
    /// as [`TransportError::Protocol`], not a panic.
    pub fn migrate_expert(
        &mut self,
        block: usize,
        expert: usize,
        to: usize,
    ) -> Result<u64, TransportError> {
        let from = self.placement.primary(block, expert);
        if from == to {
            return Ok(0);
        }
        if self.placement.replicas_of(block, expert).contains(&to) {
            // `to` already holds a bit-identical replica (gradient sync
            // keeps copies equal), so re-rooting the primary needs only
            // the eviction fetch, no install transfer.
            self.fetch_expert(block, expert)?;
            self.placement.set_primary(block, expert, to);
            self.routes.remove(&(block, expert));
            return Ok(0);
        }
        let data = self.fetch_expert(block, expert)?;
        // Only the master → worker install rides the lossy encoding:
        // worker → master fetches stay f32, so a master that keeps the
        // fetched bytes keeps an exact copy.
        let data = if self.exchange_cfg.quantized() {
            checkpoint::quantize(&data).map_err(|e| {
                TransportError::Protocol(format!(
                    "quantizing expert ({block},{expert}) for migration: {e}"
                ))
            })?
        } else {
            data
        };
        let bytes = data.len() as u64;
        self.hub.send(
            to,
            &Message::ExpertState {
                block: block as u32,
                expert: expert as u32,
                data,
            },
        )?;
        let (dst, ack) = recv_routed(&mut self.hub, &mut self.migrations)?;
        if dst != to {
            return Err(TransportError::Protocol(format!(
                "install ack arrived from worker {dst}, expected {to}"
            )));
        }
        if !matches!(ack, Message::InstallDone { .. }) {
            return Err(TransportError::Protocol(format!(
                "expected InstallDone, got {ack:?}"
            )));
        }
        self.placement.set_primary(block, expert, to);
        // The evicted copy is gone; make sure backward never follows a
        // stale forward route to it.
        self.routes.remove(&(block, expert));
        Ok(bytes)
    }

    /// Starts a background migration of one expert to worker `to` and
    /// returns immediately: the destination is told to expect a shadow
    /// install (`ShadowBegin`, control plane), the source is told to
    /// stream a boundary snapshot (`FetchShadow`), and the chunk stream
    /// is relayed by whatever routed drain runs next — the transfer rides
    /// the per-link writer threads underneath training compute. The old
    /// placement keeps serving until the lane cuts over at a step
    /// boundary (see [`Self::pump_migrations`]).
    ///
    /// No-ops when `to` is already the primary; the replica fast path
    /// re-roots the primary synchronously, exactly like
    /// [`Self::migrate_expert`] — there is nothing to stream.
    pub fn start_migration(
        &mut self,
        block: usize,
        expert: usize,
        to: usize,
    ) -> Result<(), TransportError> {
        let from = self.placement.primary(block, expert);
        if from == to {
            return Ok(());
        }
        if self
            .migrations
            .lanes
            .iter()
            .any(|l| (l.block, l.expert) == (block, expert))
            || self
                .migrations
                .queued
                .iter()
                .any(|&(b, e, ..)| (b, e) == (block, expert))
        {
            return Err(TransportError::Protocol(format!(
                "expert ({block},{expert}) already has a migration lane in flight"
            )));
        }
        if self.placement.replicas_of(block, expert).contains(&to) {
            // `to` already holds a bit-identical replica (gradient sync
            // keeps copies equal), so re-rooting the primary needs only
            // the eviction fetch.
            self.fetch_expert(block, expert)?;
            self.placement.set_primary(block, expert, to);
            self.routes.remove(&(block, expert));
            return Ok(());
        }
        if self.migrations.streaming() >= MAX_ACTIVE_LANES || !self.migrations.queued.is_empty() {
            // No free streaming slot (or earlier moves are already
            // waiting): the move queues so the per-step slice stays
            // small enough to hide. Admitted in request order as
            // installs complete.
            self.migrations.queued.push_back((block, expert, from, to));
            return Ok(());
        }
        self.begin_lane(block, expert, from, to)
    }

    /// Opens the shadow window for one admitted move: announce, snapshot
    /// request, lane record.
    fn begin_lane(
        &mut self,
        block: usize,
        expert: usize,
        from: usize,
        to: usize,
    ) -> Result<(), TransportError> {
        // The announce must precede any relayed frame on the
        // master → destination FIFO (a forwarded gradient state can
        // otherwise outrun the first chunk). It moves no parameters, so
        // it rides the unaccounted control path.
        self.hub.send_control(
            to,
            Message::ShadowBegin {
                block: block as u32,
                expert: expert as u32,
            }
            .encode(),
        )?;
        self.hub.send(
            from,
            &Message::FetchShadow {
                block: block as u32,
                expert: expert as u32,
            },
        )?;
        self.migrations.lanes.push(Lane {
            block,
            expert,
            from,
            to,
            forwarded: 0,
            installed: false,
        });
        Ok(())
    }

    /// Fills freed streaming slots from the admission queue.
    fn admit_queued(&mut self) -> Result<(), TransportError> {
        while self.migrations.streaming() < MAX_ACTIVE_LANES {
            let Some((block, expert, from, to)) = self.migrations.queued.pop_front() else {
                break;
            };
            self.begin_lane(block, expert, from, to)?;
        }
        Ok(())
    }

    /// Boundary service for background lanes: drains already-arrived lane
    /// frames without blocking, refills the streaming slots from the
    /// queue, and — once the *entire* plan is installed — cuts every lane
    /// over together. Returns the number of lanes committed. Must be
    /// called between steps — the next `StepBegin` on each link fences
    /// the cutover so both sides switch placement at the same step
    /// boundary.
    pub fn pump_migrations(&mut self, step: u64) -> Result<usize, TransportError> {
        if self.migrations.in_flight() == 0 {
            return Ok(0);
        }
        let _g = vela_obs::span(SPAN_MIGRATION_PUMP);
        let t0 = vela_obs::enabled().then(vela_obs::now_us);
        loop {
            match self.hub.recv_timeout(Duration::ZERO) {
                Ok((w, msg)) => {
                    if let Some((w, msg)) =
                        route_lane_frame(&mut self.hub, &mut self.migrations, w, msg)?
                    {
                        // Not lane traffic — put it back for the next
                        // real drain.
                        self.hub.push_pending(w, msg);
                        break;
                    }
                }
                Err(TransportError::Timeout) => break,
                Err(e) => return Err(e),
            }
        }
        self.admit_queued()?;
        let committed = self.commit_installed(step)?;
        if let Some(t0) = t0 {
            MIGRATION_PUMP_US.add(vela_obs::now_us().saturating_sub(t0));
        }
        Ok(committed)
    }

    /// Blocks until every in-flight lane has installed, then commits them
    /// all. Returns the number of lanes committed. Called before
    /// re-planning placement (a new `apply_placement` must observe the
    /// previous one's final state) and at shutdown.
    pub fn finish_migrations(&mut self, step: u64) -> Result<usize, TransportError> {
        if self.migrations.in_flight() == 0 {
            return Ok(0);
        }
        let t0 = vela_obs::enabled().then(vela_obs::now_us);
        let mut committed = 0usize;
        while self.migrations.in_flight() > 0 {
            // Keep the streaming slots full — a flush is stop-the-world
            // anyway, so the queue drains without steps to hide under.
            self.admit_queued()?;
            while self.migrations.lanes.iter().any(|l| !l.installed) {
                let (w, msg) = self.hub.recv()?;
                if let Some((w, msg)) =
                    route_lane_frame(&mut self.hub, &mut self.migrations, w, msg)?
                {
                    return Err(TransportError::Protocol(format!(
                        "unexpected frame from worker {w} while flushing migrations: {msg:?}"
                    )));
                }
            }
            committed += self.commit_installed(step)?;
        }
        if let Some(t0) = t0 {
            MIGRATION_FLUSH_US.add(vela_obs::now_us().saturating_sub(t0));
        }
        Ok(committed)
    }

    /// Cuts the whole plan over at once — but only when every lane is
    /// installed and the admission queue is empty. Committing lanes
    /// piecemeal as they land would reset each expert's destination
    /// optimizer moments at a *different* boundary, and AdamW is
    /// path-dependent: the result would diverge bitwise from a
    /// stop-the-world migration. Holding installed lanes in gradient
    /// lockstep until the group is complete keeps the single-boundary
    /// equivalence exact. Each cutover is `Evict` to the source and
    /// `MigrationCommit` to the destination (control-plane frames — the
    /// cutover itself moves no parameters), then the primary flips and
    /// any cached route to the evicted copy is dropped. FIFO links order
    /// both frames before the next step's traffic, so each side switches
    /// exactly at the boundary.
    fn commit_installed(&mut self, step: u64) -> Result<usize, TransportError> {
        if !self.migrations.group_ready() {
            return Ok(0);
        }
        let mut committed = 0usize;
        for lane in std::mem::take(&mut self.migrations.lanes) {
            let (b, e) = (lane.block as u32, lane.expert as u32);
            self.hub.send_control(
                lane.from,
                Message::Evict {
                    block: b,
                    expert: e,
                }
                .encode(),
            )?;
            self.hub.send_control(
                lane.to,
                Message::MigrationCommit {
                    block: b,
                    expert: e,
                }
                .encode(),
            )?;
            self.placement.set_primary(lane.block, lane.expert, lane.to);
            self.routes.remove(&(lane.block, lane.expert));
            self.migrations.bytes += lane.forwarded;
            self.migrations.committed += 1;
            self.migrations.last_commit_step = step;
            MIGRATION_COMMITS.add(1);
            committed += 1;
        }
        Ok(committed)
    }

    /// Lanes still streaming or awaiting cutover.
    pub fn migrations_in_flight(&self) -> usize {
        self.migrations.in_flight()
    }

    /// Parameter bytes moved by committed background lanes so far.
    pub fn migration_bytes(&self) -> u64 {
        self.migrations.bytes
    }

    /// Background lanes committed (cut over) so far.
    pub fn migrations_committed(&self) -> u64 {
        self.migrations.committed
    }

    /// Engine step of the most recent background cutover (0 = none yet).
    pub fn last_commit_step(&self) -> u64 {
        self.migrations.last_commit_step
    }

    /// Drains the per-block communication logs accumulated since the last
    /// call (two entries per block per step: forward and backward).
    pub fn take_phase_logs(&mut self) -> Vec<PhaseLog> {
        std::mem::take(&mut self.phase_logs)
    }

    /// Synchronises replica gradients after the backward pass: for every
    /// `(block, expert)` with degree ≥ 2, fetches the serving replica's
    /// accumulated gradients and installs them into each peer replica.
    /// Exactly one replica serves an expert per step (batches are whole),
    /// so this is a copy, never a summation — peers end the step with
    /// bit-identical gradients, and the deterministic optimizer step that
    /// follows keeps their weights bit-identical too. Every frame rides
    /// the accounted hub path, so the byte ledger sees sync traffic
    /// honestly.
    ///
    /// `grad_bytes` is the flattened trainable-gradient size of one
    /// expert; echo (virtual) workers use it to size their replies.
    ///
    /// Returns the `(worker, accounted bytes)` flows in protocol order —
    /// the input to the cost model's sync-time term. Empty at degree 1:
    /// the sync is free exactly when replication is off.
    pub fn sync_replica_grads(
        &mut self,
        grad_bytes: u32,
    ) -> Result<Vec<(usize, u64)>, TransportError> {
        sync_grads_over(
            &mut self.hub,
            &self.placement,
            &self.routes,
            grad_bytes,
            self.exchange_cfg.sync_overlap,
            &mut self.migrations,
        )
    }

    /// Dispatch + gather for one block and pass: the chunked, coalescing
    /// ring exchange.
    ///
    /// Each worker's batches are split into up to
    /// [`ExchangeConfig::microbatch`] contiguous chunks (the
    /// [`ChunkPlan`]), so chunking composes with coalescing: tick *c*
    /// ships one [`Message::DispatchGroup`] per worker carrying that
    /// worker's chunk *c*. Up to [`ExchangeConfig::depth`] ticks ride the
    /// wire at once; before shipping tick *c* the master drains all reply
    /// frames owed through tick `c − depth`, so serialize/send/compute/
    /// recv overlap (the transports' writer seam keeps sends from blocking
    /// on unread replies).
    ///
    /// Replies may interleave arbitrarily across workers and chunks — each
    /// carries its chunk id, is slotted by batch index, and `sink` is
    /// called with the completed *ascending-prefix* of batch indices as
    /// soon as it exists. Delivery order is therefore identical to the
    /// unpipelined exchange no matter how frames arrive, which is what
    /// keeps every {shape × transport × depth} combination bit-identical.
    fn exchange(
        &mut self,
        block: usize,
        pass: Pass,
        batches: &[ExpertBatch],
        sink: &mut dyn FnMut(usize, Tensor),
    ) -> Result<(), TransportError> {
        let _span = vela_obs::span(match pass {
            Pass::Forward => "runtime.broker.fwd",
            Pass::Backward => "runtime.broker.bwd",
        });
        let workers = self.hub.worker_count();
        let mut log = PhaseLog {
            block,
            pass,
            bytes_out: vec![0; workers],
            bytes_back: vec![0; workers],
            rows: vec![0; workers],
        };
        let cfg = self.exchange_cfg;
        let backward = matches!(pass, Pass::Backward);
        let (chunks, probe) = match cfg.microbatch {
            Microbatch::Fixed(n) => (n, false),
            Microbatch::Auto => self.tuner.plan(block, backward),
        };
        let loads: Vec<(usize, u64)> = batches
            .iter()
            .map(|b| (b.expert, b.xs.rows() as u64))
            .collect();
        let routes = route_experts(&self.placement, &mut self.routes, block, backward, &loads);
        self.plan.build(workers, chunks, routes.iter().copied());
        let ticks = self.plan.ticks();
        let depth = cfg.depth.max(1);
        let mut timer = ExchangeTimer::new(probe || vela_obs::enabled());

        // Replies slotted by batch index; `next_emit` is the ascending
        // prefix already handed to the sink.
        let mut pending: Vec<Option<Tensor>> = Vec::with_capacity(batches.len());
        pending.resize_with(batches.len(), || None);
        let mut next_emit = 0usize;
        // Per-batch replies (coalesce off) carry no chunk id; key them by
        // expert instead.
        let mut expert_index: HashMap<usize, usize> = HashMap::new();
        if !cfg.coalesce {
            expert_index.extend(batches.iter().enumerate().map(|(i, b)| (b.expert, i)));
        }

        let mut owed_after: Vec<usize> = Vec::with_capacity(ticks);
        let mut sent = 0usize; // wire frames dispatched so far
        let mut received = 0usize; // reply frames drained so far
        for tick in 0..ticks {
            if tick >= depth {
                // Ring full: drain everything owed through tick − depth
                // before shipping more.
                let owed = owed_after[tick - depth];
                let stall_t0 = if received < owed {
                    STALLS.add(1);
                    vela_obs::enabled().then(vela_obs::now_us)
                } else {
                    None
                };
                while received < owed {
                    received += drain_one(
                        &mut self.hub,
                        &mut self.migrations,
                        &self.plan,
                        &expert_index,
                        block,
                        pass,
                        batches,
                        &mut log,
                        &mut timer,
                        next_emit,
                        &mut pending,
                    )?;
                    timer.drained(received);
                    flush_prefix(&mut pending, &mut next_emit, sink);
                }
                if let Some(t0) = stall_t0 {
                    STALL_US.add(vela_obs::now_us().saturating_sub(t0));
                }
            }
            {
                let _g = vela_obs::span(SPAN_SERIALIZE);
                let t0 = timer.mark();
                sent += send_tick(
                    &mut self.hub,
                    &self.placement,
                    &self.plan,
                    cfg,
                    block,
                    pass,
                    tick,
                    batches,
                    &mut log,
                )?;
                timer.add_serialize(t0);
            }
            timer.tick_sent(sent);
            owed_after.push(sent);
        }
        while received < sent {
            received += drain_one(
                &mut self.hub,
                &mut self.migrations,
                &self.plan,
                &expert_index,
                block,
                pass,
                batches,
                &mut log,
                &mut timer,
                next_emit,
                &mut pending,
            )?;
            timer.drained(received);
            flush_prefix(&mut pending, &mut next_emit, sink);
        }
        if next_emit != batches.len() {
            return Err(TransportError::Protocol(format!(
                "{} exchange for block {block} drained all frames but only \
                 {next_emit}/{} batches have replies",
                pass_name(pass),
                batches.len()
            )));
        }
        if let Some((serialize_us, wait_us)) = timer.finish() {
            if probe {
                self.tuner.record(block, backward, serialize_us, wait_us);
            }
        }

        if vela_obs::enabled() {
            let rows: Vec<(usize, usize)> =
                batches.iter().map(|b| (b.expert, b.xs.rows())).collect();
            observe_phase(&log, &rows);
            if !self.placement.is_degree_one() {
                observe_replica_rows(pass, block, batches, &routes);
            }
        }
        self.phase_logs.push(log);
        Ok(())
    }
}

/// Hands the sink every completed batch in ascending index order. The
/// prefix gate is the determinism lever: a chunk that arrives early waits
/// in `pending` until everything before it has been delivered.
fn flush_prefix(
    pending: &mut [Option<Tensor>],
    next_emit: &mut usize,
    sink: &mut dyn FnMut(usize, Tensor),
) {
    if *next_emit >= pending.len() || pending[*next_emit].is_none() {
        return;
    }
    let _g = vela_obs::span(SPAN_COMBINE);
    let t0 = vela_obs::enabled().then(vela_obs::now_us);
    while *next_emit < pending.len() {
        match pending[*next_emit].take() {
            Some(t) => {
                sink(*next_emit, t);
                *next_emit += 1;
            }
            None => break,
        }
    }
    if let Some(t0) = t0 {
        COMBINE_US.add(vela_obs::now_us().saturating_sub(t0));
    }
}

/// Ships ring tick `tick`: one coalesced group per worker with items in
/// that chunk (or per-batch frames with coalescing off). Under
/// `VELA_WIRE=packed` the coalesced frame is column-packed — a span table
/// plus one contiguous row region, int8-encoded when quantization is on —
/// instead of a list of header-laden per-item payloads. Returns the wire
/// frames sent.
#[allow(clippy::too_many_arguments)]
fn send_tick(
    hub: &mut MasterHub,
    placement: &ReplicatedPlacement,
    plan: &ChunkPlan,
    cfg: ExchangeConfig,
    block: usize,
    pass: Pass,
    tick: usize,
    batches: &[ExpertBatch],
    log: &mut PhaseLog,
) -> Result<usize, TransportError> {
    let mut frames = 0usize;
    for w in 0..hub.worker_count() {
        let items = plan.chunk_items(w, tick);
        if items.is_empty() {
            continue;
        }
        if cfg.coalesce && cfg.wire == WireFormat::Packed {
            let width = batches[items[0]].xs.cols() as u32;
            for &i in items {
                log.rows[w] += batches[i].xs.rows() as u64;
            }
            let msg = Message::PackedDispatch(PackedGroup::pack(
                block as u32,
                group_pass(pass),
                tick as u32,
                width,
                cfg.quantized(),
                items
                    .iter()
                    .map(|&i| (batches[i].expert as u32, batches[i].xs.as_slice())),
            ));
            log.bytes_out[w] += msg.accounted_bytes();
            vela_obs::flow(FlowPhase::Start, exchange_corr(w, block, pass, tick));
            hub.send(w, &msg)?;
            frames += 1;
        } else if cfg.coalesce {
            let items: Vec<GroupItem> = items
                .iter()
                .map(|&i| {
                    let batch = &batches[i];
                    log.rows[w] += batch.xs.rows() as u64;
                    GroupItem {
                        expert: batch.expert as u32,
                        payload: Payload::from_tensor(&batch.xs),
                    }
                })
                .collect();
            let msg = Message::DispatchGroup {
                block: block as u32,
                pass: group_pass(pass),
                chunk: tick as u32,
                items,
            };
            log.bytes_out[w] += msg.accounted_bytes();
            vela_obs::flow(FlowPhase::Start, exchange_corr(w, block, pass, tick));
            hub.send(w, &msg)?;
            frames += 1;
        } else {
            for &i in items {
                let batch = &batches[i];
                debug_assert!(
                    placement.replicas_of(block, batch.expert).contains(&w),
                    "batch for expert ({block}, {}) routed to non-replica worker {w}",
                    batch.expert
                );
                let payload = Payload::from_tensor(&batch.xs);
                let (b, e) = (block as u32, batch.expert as u32);
                let msg = match pass {
                    Pass::Forward => Message::TokenBatch {
                        block: b,
                        expert: e,
                        payload,
                    },
                    Pass::Backward => Message::GradBatch {
                        block: b,
                        expert: e,
                        payload,
                    },
                };
                log.bytes_out[w] += msg.accounted_bytes();
                log.rows[w] += batch.xs.rows() as u64;
                hub.send(w, &msg)?;
                frames += 1;
            }
        }
    }
    Ok(frames)
}

/// Drains one reply frame into `pending`, validating it against the plan;
/// returns 1 (frames drained) on success. Wrong kinds, blocks, passes,
/// chunks or duplicate batches are protocol errors, not panics.
#[allow(clippy::too_many_arguments)]
fn drain_one(
    hub: &mut MasterHub,
    migrations: &mut MigrationState,
    plan: &ChunkPlan,
    expert_index: &HashMap<usize, usize>,
    block: usize,
    pass: Pass,
    batches: &[ExpertBatch],
    log: &mut PhaseLog,
    timer: &mut ExchangeTimer,
    next_emit: usize,
    pending: &mut [Option<Tensor>],
) -> Result<usize, TransportError> {
    let (w, msg) = {
        let _g = vela_obs::span(SPAN_INFLIGHT);
        let t0 = timer.mark();
        let r = recv_routed(hub, migrations)?;
        timer.add_wait(t0);
        r
    };
    log.bytes_back[w] += msg.accounted_bytes();
    // Packed replies carry no per-item expert ids — item identity is
    // positional against the dispatch layout — so the expert check only
    // applies to reply kinds that name their expert on the wire.
    let mut slot =
        |index: usize, expert: Option<usize>, tensor: Tensor| -> Result<(), TransportError> {
            if let Some(expert) = expert {
                if batches[index].expert != expert {
                    return Err(TransportError::Protocol(format!(
                        "worker {w} answered batch {index} with expert {expert}, \
                     expected {}",
                        batches[index].expert
                    )));
                }
            }
            if index < next_emit || pending[index].is_some() {
                return Err(TransportError::Protocol(format!(
                    "worker {w} sent a duplicate {} reply for batch {index} of block {block}",
                    pass_name(pass)
                )));
            }
            pending[index] = Some(tensor);
            Ok(())
        };
    match (pass, msg) {
        (
            Pass::Forward,
            Message::ExpertResult {
                block: rb,
                expert,
                payload,
            },
        )
        | (
            Pass::Backward,
            Message::GradResult {
                block: rb,
                expert,
                payload,
            },
        ) => {
            check_reply_block(block, rb, pass)?;
            let index = *expert_index.get(&(expert as usize)).ok_or_else(|| {
                TransportError::Protocol(format!(
                    "{} reply for undispatched expert ({block},{expert})",
                    pass_name(pass)
                ))
            })?;
            slot(index, Some(expert as usize), real_tensor(payload, pass)?)?;
        }
        (
            _,
            Message::ResultGroup {
                block: rb,
                pass: rp,
                chunk,
                items,
            },
        ) => {
            check_reply_block(block, rb, pass)?;
            if rp != group_pass(pass) {
                return Err(TransportError::Protocol(format!(
                    "{rp:?} result group during a {} exchange",
                    pass_name(pass)
                )));
            }
            let indices = plan.chunk_items(w, chunk as usize);
            if indices.len() != items.len() {
                return Err(TransportError::Protocol(format!(
                    "worker {w} answered chunk {chunk} with {} items, \
                     dispatch had {}",
                    items.len(),
                    indices.len()
                )));
            }
            for (&index, item) in indices.iter().zip(items) {
                slot(
                    index,
                    Some(item.expert as usize),
                    real_tensor(item.payload, pass)?,
                )?;
            }
            vela_obs::flow(
                FlowPhase::Finish,
                exchange_corr(w, block, pass, chunk as usize),
            );
        }
        (_, Message::PackedResult(reply)) => {
            check_reply_block(block, reply.block, pass)?;
            if reply.pass != group_pass(pass) {
                return Err(TransportError::Protocol(format!(
                    "{:?} packed result during a {} exchange",
                    reply.pass,
                    pass_name(pass)
                )));
            }
            if matches!(reply.data, PackedData::Virtual) {
                return Err(TransportError::Protocol(format!(
                    "virtual packed reply in a real {} exchange",
                    pass_name(pass)
                )));
            }
            let chunk = reply.chunk as usize;
            let indices = plan.chunk_items(w, chunk);
            let width = reply.width as usize;
            let total: usize = indices.iter().map(|&i| batches[i].xs.rows()).sum();
            if indices.len() != reply.items as usize
                || reply.rows as usize != total
                || indices.iter().any(|&i| batches[i].xs.cols() != width)
            {
                return Err(TransportError::Protocol(format!(
                    "worker {w} answered chunk {chunk} with {} items × {} rows of \
                     width {width}, dispatch had {} items × {total} rows",
                    reply.items,
                    reply.rows,
                    indices.len()
                )));
            }
            // The reply region's layout is implied by the dispatch plan:
            // re-slice it per batch in dispatch order, dequantizing int8
            // rows on the way in.
            for (index, lo, rows) in plan.chunk_regions(w, chunk, |i| batches[i].xs.rows()) {
                let mut vals = Vec::with_capacity(rows * width);
                reply.data.unpack_rows(width, lo, lo + rows, &mut vals);
                slot(index, None, Tensor::from_vec((rows, width), vals))?;
            }
            vela_obs::flow(FlowPhase::Finish, exchange_corr(w, block, pass, chunk));
        }
        (_, other) => {
            return Err(TransportError::Protocol(format!(
                "unexpected reply during {} exchange: {other:?}",
                pass_name(pass)
            )))
        }
    }
    Ok(1)
}

fn check_reply_block(block: usize, got: u32, pass: Pass) -> Result<(), TransportError> {
    if got as usize != block {
        return Err(TransportError::Protocol(format!(
            "{} reply for block {got}, expected {block}",
            pass_name(pass)
        )));
    }
    Ok(())
}

/// A data-plane reply must carry real features; a virtual payload here
/// means the peer is running a different engine.
fn real_tensor(payload: Payload, pass: Pass) -> Result<Tensor, TransportError> {
    match payload {
        Payload::Real { .. } => Ok(payload.to_tensor()),
        Payload::Virtual { .. } => Err(TransportError::Protocol(format!(
            "virtual payload in a real {} exchange",
            pass_name(pass)
        ))),
    }
}

// [`ExpertProvider`] is an infallible seam (the model crate knows nothing
// about transports), so a transport failure mid-exchange surfaces as a
// panic with the underlying error. Control-plane methods
// (`step_begin`/`step_end_and_wait`/`shutdown`/`migrate_expert`) propagate
// `TransportError` instead, which is where disconnects actually occur in
// practice (between steps, or while waiting on acks).
impl ExpertProvider for BrokerClient {
    fn replica_degree(&self, block: usize, expert: usize) -> usize {
        self.placement.degree(block, expert)
    }

    fn forward_block(&mut self, block: usize, batches: &[ExpertBatch]) -> Vec<Tensor> {
        let mut out = Vec::with_capacity(batches.len());
        self.exchange(block, Pass::Forward, batches, &mut |_, t| out.push(t))
            .unwrap_or_else(|e| panic!("transport failed during forward exchange: {e}"));
        out
    }

    fn backward_block(&mut self, block: usize, grads: &[ExpertBatch]) -> Vec<Tensor> {
        let mut out = Vec::with_capacity(grads.len());
        self.exchange(block, Pass::Backward, grads, &mut |_, t| out.push(t))
            .unwrap_or_else(|e| panic!("transport failed during backward exchange: {e}"));
        out
    }

    // The streamed overrides are where the model-layer overlap comes
    // from: `MoeBlock` scatters each chunk's results into its output
    // buffer while later chunks are still on the wire, instead of parking
    // them in a Vec until the block-pass completes.
    fn forward_block_streamed(
        &mut self,
        block: usize,
        batches: &[ExpertBatch],
        emit: &mut dyn FnMut(usize, Tensor),
    ) {
        self.exchange(block, Pass::Forward, batches, emit)
            .unwrap_or_else(|e| panic!("transport failed during forward exchange: {e}"));
    }

    fn backward_block_streamed(
        &mut self,
        block: usize,
        grads: &[ExpertBatch],
        emit: &mut dyn FnMut(usize, Tensor),
    ) {
        self.exchange(block, Pass::Backward, grads, emit)
            .unwrap_or_else(|e| panic!("transport failed during backward exchange: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{star, WireFormat};
    use crate::worker::ExpertManager;
    use std::sync::Arc;
    use vela_cluster::{DeviceId, Topology, TrafficLedger};
    use vela_model::{LocalExpertStore, ModelConfig};
    use vela_nn::optim::AdamWConfig;
    use vela_placement::Placement;
    use vela_tensor::rng::DetRng;

    /// A full micro setup: 2 workers, experts split by expert parity.
    fn setup() -> (
        BrokerClient,
        Vec<ExpertManager>,
        LocalExpertStore,
        ModelConfig,
    ) {
        let cfg = ModelConfig::test_small();
        let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let (hub, ports) = star(ledger, DeviceId(0), &[DeviceId(1), DeviceId(2)]);

        let reference = LocalExpertStore::new(&cfg, &mut DetRng::new(7));
        let mut source = LocalExpertStore::new(&cfg, &mut DetRng::new(7));
        let mut shard0 = LocalExpertStore::empty(cfg.blocks, cfg.experts);
        let mut shard1 = LocalExpertStore::empty(cfg.blocks, cfg.experts);
        let mut assign = Vec::new();
        for l in 0..cfg.blocks {
            let mut row = Vec::new();
            for e in 0..cfg.experts {
                let ffn = source.take(l, e);
                if e % 2 == 0 {
                    shard0.insert(l, e, ffn);
                    row.push(0);
                } else {
                    shard1.insert(l, e, ffn);
                    row.push(1);
                }
            }
            assign.push(row);
        }
        let placement = Placement::new(assign, 2);

        let mut ports = ports.into_iter();
        let managers = vec![
            ExpertManager::spawn(ports.next().unwrap(), shard0, AdamWConfig::default()),
            ExpertManager::spawn(ports.next().unwrap(), shard1, AdamWConfig::default()),
        ];
        (BrokerClient::new(hub, placement), managers, reference, cfg)
    }

    fn teardown(broker: &mut BrokerClient, managers: Vec<ExpertManager>) {
        broker.shutdown().unwrap();
        for m in managers {
            m.join();
        }
    }

    #[test]
    fn forward_matches_local_store() {
        let (mut broker, managers, mut reference, cfg) = setup();
        let mut rng = DetRng::new(3);
        let batches = vec![
            ExpertBatch {
                expert: 0,
                xs: vela_tensor::Tensor::uniform((3, cfg.dim), -1.0, 1.0, &mut rng),
            },
            ExpertBatch {
                expert: 1,
                xs: vela_tensor::Tensor::uniform((2, cfg.dim), -1.0, 1.0, &mut rng),
            },
            ExpertBatch {
                expert: 3,
                xs: vela_tensor::Tensor::uniform((4, cfg.dim), -1.0, 1.0, &mut rng),
            },
        ];
        let remote = broker.forward_block(0, &batches);
        let local = reference.forward_block(0, &batches);
        assert_eq!(remote, local, "broker must be computation-transparent");
        teardown(&mut broker, managers);
    }

    #[test]
    fn backward_matches_local_store() {
        let (mut broker, managers, mut reference, cfg) = setup();
        let mut rng = DetRng::new(4);
        let xs = vela_tensor::Tensor::uniform((3, cfg.dim), -1.0, 1.0, &mut rng);
        let batches = vec![ExpertBatch {
            expert: 2,
            xs: xs.clone(),
        }];
        broker.forward_block(1, &batches);
        reference.forward_block(1, &batches);
        let g = vec![ExpertBatch {
            expert: 2,
            xs: vela_tensor::Tensor::ones((3, cfg.dim)),
        }];
        let remote = broker.backward_block(1, &g);
        let local = reference.backward_block(1, &g);
        assert_eq!(remote, local);
        teardown(&mut broker, managers);
    }

    #[test]
    fn phase_logs_track_bytes_and_rows() {
        let (mut broker, managers, _, cfg) = setup();
        let mut rng = DetRng::new(5);
        let batches = vec![
            ExpertBatch {
                expert: 0, // worker 0
                xs: vela_tensor::Tensor::uniform((3, cfg.dim), -1.0, 1.0, &mut rng),
            },
            ExpertBatch {
                expert: 1, // worker 1
                xs: vela_tensor::Tensor::uniform((5, cfg.dim), -1.0, 1.0, &mut rng),
            },
        ];
        broker.forward_block(0, &batches);
        let logs = broker.take_phase_logs();
        assert_eq!(logs.len(), 1);
        let log = &logs[0];
        assert_eq!(log.pass, Pass::Forward);
        assert_eq!(log.rows, vec![3, 5]);
        assert!(log.bytes_out[1] > log.bytes_out[0], "5 rows > 3 rows");
        assert_eq!(log.bytes_out, log.bytes_back, "results mirror inputs");
        assert!(broker.take_phase_logs().is_empty(), "logs drained");
        teardown(&mut broker, managers);
    }

    #[test]
    fn step_control_round_trips() {
        let (mut broker, managers, _, _) = setup();
        broker.step_begin().unwrap();
        broker.step_end_and_wait().unwrap(); // must not deadlock
        teardown(&mut broker, managers);
    }

    #[test]
    fn every_exchange_shape_is_bitwise_identical() {
        // The same forward+backward exchange under every {coalesce ×
        // microbatch} shape must reproduce the per-batch baseline bit for
        // bit — results, phase logs, everything the model sees.
        let run = |cfg: ExchangeConfig| {
            let (mut broker, managers, _, model_cfg) = setup();
            broker.set_exchange(cfg);
            let mut rng = DetRng::new(11);
            let batches: Vec<ExpertBatch> = (0..model_cfg.experts)
                .map(|e| ExpertBatch {
                    expert: e,
                    xs: vela_tensor::Tensor::uniform((2 + e, model_cfg.dim), -1.0, 1.0, &mut rng),
                })
                .collect();
            let fwd = broker.forward_block(0, &batches);
            let grads: Vec<ExpertBatch> = batches
                .iter()
                .map(|b| ExpertBatch {
                    expert: b.expert,
                    xs: vela_tensor::Tensor::ones(b.xs.shape().as_2d()),
                })
                .collect();
            let bwd = broker.backward_block(0, &grads);
            let logs = broker.take_phase_logs();
            teardown(&mut broker, managers);
            (fwd, bwd, logs)
        };
        let baseline = run(ExchangeConfig::per_batch());
        for wire in [WireFormat::Legacy, WireFormat::Packed] {
            for coalesce in [false, true] {
                for microbatch in [Microbatch::Fixed(1), Microbatch::Fixed(3), Microbatch::Auto] {
                    for depth in [1, 2, 4] {
                        let shaped = run(ExchangeConfig {
                            coalesce,
                            microbatch,
                            depth,
                            wire,
                            ..ExchangeConfig::default()
                        });
                        assert_eq!(
                            baseline,
                            shaped,
                            "wire={} coalesce={coalesce} microbatch={microbatch} depth={depth} \
                             must be invisible",
                            wire.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn streamed_delivery_is_an_ascending_prefix() {
        // The sink must see batch indices 0..n in order — with chunking
        // and a deep ring, out-of-order arrivals have to wait in pending.
        let (mut broker, managers, mut reference, model_cfg) = setup();
        broker.set_exchange(ExchangeConfig {
            coalesce: true,
            microbatch: Microbatch::Fixed(3),
            depth: 4,
            ..ExchangeConfig::default()
        });
        let mut rng = DetRng::new(21);
        let batches: Vec<ExpertBatch> = (0..model_cfg.experts)
            .map(|e| ExpertBatch {
                expert: e,
                xs: vela_tensor::Tensor::uniform((2, model_cfg.dim), -1.0, 1.0, &mut rng),
            })
            .collect();
        let mut order = Vec::new();
        let mut streamed = Vec::new();
        broker.forward_block_streamed(0, &batches, &mut |i, t| {
            order.push(i);
            streamed.push(t);
        });
        assert_eq!(order, (0..model_cfg.experts).collect::<Vec<_>>());
        assert_eq!(streamed, reference.forward_block(0, &batches));
        teardown(&mut broker, managers);
    }

    #[test]
    fn coalescing_shrinks_frames_not_bytes() {
        let run = |cfg: ExchangeConfig| {
            let (mut broker, managers, _, model_cfg) = setup();
            broker.set_exchange(cfg);
            let mut rng = DetRng::new(13);
            let batches: Vec<ExpertBatch> = (0..model_cfg.experts)
                .map(|e| ExpertBatch {
                    expert: e,
                    xs: vela_tensor::Tensor::uniform((3, model_cfg.dim), -1.0, 1.0, &mut rng),
                })
                .collect();
            broker.forward_block(0, &batches);
            let frames = broker.frame_counts();
            let log = broker.take_phase_logs().pop().unwrap();
            teardown(&mut broker, managers);
            (frames, log.bytes_out, log.bytes_back)
        };
        let (per_frames, per_out, per_back) = run(ExchangeConfig::per_batch());
        let (co_frames, co_out, co_back) = run(ExchangeConfig::default());
        // 2 workers × 4 experts: 4 frames each way per-batch, 2 coalesced.
        assert_eq!(per_frames, (4, 4));
        assert_eq!(co_frames, (2, 2));
        // ...while the accounted bytes are identical.
        assert_eq!(per_out, co_out);
        assert_eq!(per_back, co_back);
    }

    #[test]
    fn routing_is_lpt_with_deterministic_ties() {
        // 2 workers; experts 1 and 2 are replicated on both, experts 0
        // and 3 are pinned.
        let placement =
            ReplicatedPlacement::new(vec![vec![vec![0], vec![0, 1], vec![0, 1], vec![1]]], 2);
        let loads = [(0usize, 5u64), (1, 4), (2, 4), (3, 1)];
        let mut routes = HashMap::new();
        let fwd = route_experts(&placement, &mut routes, 0, false, &loads);
        // Pinned batches set the base load (w0: 5, w1: 1); the free ones
        // go largest-first, index-ascending on equal rows: expert 1 →
        // worker 1 (1 < 5), expert 2 → worker 0 (5 = 5, tie → lowest
        // index).
        assert_eq!(fwd, vec![0, 1, 0, 1]);
        assert_eq!(routes.get(&(0, 1)), Some(&1));
        assert_eq!(routes.get(&(0, 2)), Some(&0));
        // Same inputs, fresh cache → same answer, at any thread count or
        // transport: routing reads nothing but the placement and loads.
        let again = route_experts(&placement, &mut HashMap::new(), 0, false, &loads);
        assert_eq!(again, fwd);
    }

    #[test]
    fn backward_follows_the_cached_forward_route() {
        let placement =
            ReplicatedPlacement::new(vec![vec![vec![0], vec![0, 1], vec![0, 1], vec![1]]], 2);
        let loads = [(0usize, 5u64), (1, 4), (2, 4), (3, 1)];
        let mut routes = HashMap::new();
        let fwd = route_experts(&placement, &mut routes, 0, false, &loads);
        // Backward row counts differ (grads, not tokens) but the route
        // must mirror forward — the serving replica holds the activations.
        let grad_loads = [(0usize, 1u64), (1, 9), (2, 9), (3, 9)];
        let bwd = route_experts(&placement, &mut routes, 0, true, &grad_loads);
        assert_eq!(bwd, fwd);
        // With no cached forward (fresh session), backward falls back to
        // the primary.
        let cold = route_experts(&placement, &mut HashMap::new(), 0, true, &grad_loads);
        assert_eq!(cold, vec![0, 0, 0, 1]);
    }

    #[test]
    fn degree_one_routing_is_the_single_owner_mapping() {
        let base = Placement::new(vec![vec![0, 1, 0, 1]], 2);
        let placement = ReplicatedPlacement::from(&base);
        let mut routes = HashMap::new();
        let loads = [(0usize, 9u64), (1, 1), (2, 3), (3, 7)];
        let fwd = route_experts(&placement, &mut routes, 0, false, &loads);
        assert_eq!(fwd, vec![0, 1, 0, 1], "load must not sway a pinned expert");
        assert!(routes.is_empty(), "degree 1 caches nothing");
        let bwd = route_experts(&placement, &mut routes, 0, true, &loads);
        assert_eq!(bwd, fwd);
    }

    /// Like [`setup`], but expert 0 of every block is replicated on both
    /// workers (bit-identical copies from identical seeds).
    fn setup_replicated() -> (
        BrokerClient,
        Vec<ExpertManager>,
        LocalExpertStore,
        ModelConfig,
    ) {
        let cfg = ModelConfig::test_small();
        let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let (hub, ports) = star(ledger, DeviceId(0), &[DeviceId(1), DeviceId(2)]);

        let reference = LocalExpertStore::new(&cfg, &mut DetRng::new(7));
        let mut a = LocalExpertStore::new(&cfg, &mut DetRng::new(7));
        let mut b = LocalExpertStore::new(&cfg, &mut DetRng::new(7));
        let mut shard0 = LocalExpertStore::empty(cfg.blocks, cfg.experts);
        let mut shard1 = LocalExpertStore::empty(cfg.blocks, cfg.experts);
        let mut replicas = Vec::new();
        for l in 0..cfg.blocks {
            let mut row = Vec::new();
            for e in 0..cfg.experts {
                if e == 0 {
                    shard0.insert(l, e, a.take(l, e));
                    shard1.insert(l, e, b.take(l, e));
                    row.push(vec![0, 1]);
                } else if e % 2 == 0 {
                    shard0.insert(l, e, a.take(l, e));
                    row.push(vec![0]);
                } else {
                    shard1.insert(l, e, a.take(l, e));
                    row.push(vec![1]);
                }
            }
            replicas.push(row);
        }
        let placement = ReplicatedPlacement::new(replicas, 2);

        let mut ports = ports.into_iter();
        let managers = vec![
            ExpertManager::spawn(ports.next().unwrap(), shard0, AdamWConfig::default()),
            ExpertManager::spawn(ports.next().unwrap(), shard1, AdamWConfig::default()),
        ];
        (BrokerClient::new(hub, placement), managers, reference, cfg)
    }

    #[test]
    fn replicated_exchange_is_computation_transparent_and_syncs_grads() {
        let (mut broker, managers, mut reference, cfg) = setup_replicated();
        let mut rng = DetRng::new(31);
        let batches: Vec<ExpertBatch> = (0..cfg.experts)
            .map(|e| ExpertBatch {
                expert: e,
                xs: vela_tensor::Tensor::uniform((2 + e, cfg.dim), -1.0, 1.0, &mut rng),
            })
            .collect();
        // Which replica serves is a routing detail; the math must match
        // the local single-store reference bit for bit.
        assert_eq!(
            broker.forward_block(0, &batches),
            reference.forward_block(0, &batches)
        );
        let grads: Vec<ExpertBatch> = batches
            .iter()
            .map(|b| ExpertBatch {
                expert: b.expert,
                xs: vela_tensor::Tensor::ones(b.xs.shape().as_2d()),
            })
            .collect();
        assert_eq!(
            broker.backward_block(0, &grads),
            reference.backward_block(0, &grads)
        );
        // One replicated pair per block; each degree-2 sync is 4 flows
        // (fetch + state from the serving replica, install + ack per
        // peer), and every flow carries bytes the ledger will see.
        let flows = broker.sync_replica_grads(64).unwrap();
        assert_eq!(flows.len(), cfg.blocks * 4);
        assert!(flows.iter().all(|&(_, bytes)| bytes > 0));
        teardown(&mut broker, managers);
    }

    #[test]
    fn replica_degree_reports_the_placement() {
        let (broker, managers, _, cfg) = setup_replicated();
        let mut broker = broker;
        assert_eq!(broker.replica_degree(0, 0), 2);
        assert_eq!(broker.replica_degree(cfg.blocks - 1, 1), 1);
        teardown(&mut broker, managers);
    }

    #[test]
    fn wrong_reply_is_a_protocol_error_not_a_panic() {
        // A worker that answers FetchExpert with StepDone must surface as
        // TransportError::Protocol on the master.
        let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let (hub, mut ports) = star(ledger, DeviceId(0), &[DeviceId(1)]);
        let mut port = ports.remove(0);
        let rogue = std::thread::spawn(move || {
            while let Ok(msg) = port.recv() {
                match msg {
                    Message::Shutdown => break,
                    _ => port.send(&Message::StepDone).unwrap(),
                }
            }
        });
        let placement = Placement::new(vec![vec![0]], 1);
        let mut broker = BrokerClient::new(hub, placement);
        let err = broker.fetch_expert(0, 0).unwrap_err();
        assert!(matches!(err, TransportError::Protocol(_)), "got {err:?}");
        broker.shutdown().unwrap();
        rogue.join().unwrap();
    }

    #[test]
    fn dead_workers_surface_as_errors_not_panics() {
        let (mut broker, managers, _, _) = setup();
        broker.shutdown().unwrap();
        for m in managers {
            m.join();
        }
        // Workers are gone and links closed: control-plane calls must
        // report the disconnect instead of aborting.
        assert!(broker.step_begin().is_err());
    }
}

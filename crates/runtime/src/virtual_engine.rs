//! The master–worker engine at evaluation scale with virtual payloads.
//!
//! Runs the *same* transport, message protocol and Expert Manager loop as
//! the real runtime, but the payloads are size descriptors at the
//! evaluation model's true dimensions (Mixtral-8x7B: `H = 4096`, 16-bit
//! features, 32 blocks × 8 experts). Routing is sampled from a measured
//! [`LocalityProfile`], which [sharpens](LocalityProfile::sharpen) slightly
//! every step — the drift the paper observes in Fig. 3(c)/Fig. 5(a).
//!
//! This engine produces the VELA / Sequential / Random series of
//! Figs. 5–6; pick the series by the [`Placement`] you launch it with.
//! Like [`RealRuntime`](crate::RealRuntime), the transport behind it is
//! pluggable ([`TransportConfig`]) — the ledger windows it reports are
//! byte-identical across channel, TCP-thread and TCP-process backends
//! (pinned by the `transport_parity` integration test).

use std::collections::HashMap;
use std::sync::Arc;

use vela_cluster::{CostModel, DeviceId, Topology, TrafficLedger};
use vela_locality::LocalityProfile;
use vela_model::MoeSpec;
use vela_placement::ReplicatedPlacement;
use vela_tensor::rng::DetRng;

use vela_obs::FlowPhase;

use crate::broker::{
    exchange_corr, group_pass, pass_name, route_experts, sync_grads_over, worker_src,
    MigrationState, Pass, PhaseLog,
};
use crate::launch::{launch_process_star, WorkerHandle};
use crate::message::{GroupItem, Message, PackedData, PackedGroup, Payload};
use crate::metrics::{backbone_flops_per_token, master_worker_time, StepMetrics};
use crate::pipeline::{AutoTuner, ChunkPlan, ExchangeTimer};
use crate::pipeline::{SPAN_INFLIGHT, SPAN_SERIALIZE, STALLS};
use crate::routing::sample_expert_counts;
use crate::transport::{
    build_star, ExchangeConfig, MasterHub, Microbatch, TransportConfig, WireFormat, WireStats,
};
use crate::worker::{ExpertManager, WorkerBootstrap};

/// Scale parameters of a virtual evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// The simulated model's shape.
    pub spec: MoeSpec,
    /// Sequences per batch (the paper uses 8).
    pub batch: usize,
    /// Tokens per sequence.
    pub seq: usize,
    /// LoRA rank (sizes EP's gradient all-reduce).
    pub lora_rank: usize,
    /// Per-step profile sharpening rate (routing drift).
    pub drift: f64,
    /// Routing-sampling seed.
    pub seed: u64,
}

impl ScaleConfig {
    /// The paper's fine-tuning workload on the given model shape:
    /// batch 8 sequences of 256 tokens (which reproduces the paper's
    /// ">2600 tokens sent externally per block" and ~866 MB/node/step
    /// derivation), LoRA r = 8, gentle routing drift.
    pub fn paper_default(spec: MoeSpec) -> Self {
        ScaleConfig {
            spec,
            batch: 8,
            seq: 256,
            lora_rank: 8,
            drift: 2e-4,
            seed: 7,
        }
    }

    /// Tokens entering each MoE block per step.
    pub fn tokens(&self) -> usize {
        self.batch * self.seq
    }
}

/// Bytes of parameters of a single expert at the spec's precision (three
/// `H × ffn` projection matrices).
pub fn expert_param_bytes(spec: &MoeSpec) -> u64 {
    3 * spec.hidden as u64 * spec.ffn as u64 * (spec.bits as u64 / 8)
}

/// Bytes of one expert's trainable LoRA gradients at rank `rank`: an
/// `H × r` A and `r × ffn` B adapter on each of the three projections,
/// fp32 gradients. This is what a replica gradient-sync frame carries at
/// evaluation scale (~1.8 MB for Mixtral-8x7B at r = 8 — far below the
/// ~352 MB full expert, which is why replication syncs are cheap).
pub fn expert_lora_grad_bytes(spec: &MoeSpec, rank: usize) -> u64 {
    (3 * rank * (spec.hidden + spec.ffn) * 4) as u64
}

/// Per-worker expert capacities derived from device memory (constraint
/// (11)): `C_n = reserve_frac · mem / expert_bytes`.
///
/// # Panics
/// Panics if any device is too small to host a single expert.
pub fn capacity_from_memory(
    topology: &Topology,
    workers: &[DeviceId],
    spec: &MoeSpec,
    reserve_frac: f64,
) -> Vec<usize> {
    workers
        .iter()
        .map(|&w| {
            let mem = topology.device(w).mem_bytes as f64 * reserve_frac;
            let cap = (mem / expert_param_bytes(spec) as f64) as usize;
            assert!(cap >= 1, "device {w} cannot host any expert");
            cap
        })
        .collect()
}

/// A live scale-virtual master–worker session.
#[derive(Debug)]
pub struct VirtualEngine {
    hub: MasterHub,
    workers: Vec<WorkerHandle>,
    placement: ReplicatedPlacement,
    routes: HashMap<(usize, usize), usize>,
    row_totals: Vec<u64>,
    profile: LocalityProfile,
    scale: ScaleConfig,
    ledger: Arc<TrafficLedger>,
    cost: CostModel,
    master: DeviceId,
    worker_devices: Vec<DeviceId>,
    rng: DetRng,
    step: usize,
    exchange_cfg: ExchangeConfig,
    plan: ChunkPlan,
    tuner: AutoTuner,
}

impl VirtualEngine {
    /// Launches echo workers over the transport selected by
    /// `VELA_TRANSPORT` and prepares a session. See
    /// [`launch_with`](Self::launch_with).
    pub fn launch(
        topology: Topology,
        master: DeviceId,
        worker_devices: Vec<DeviceId>,
        placement: impl Into<ReplicatedPlacement>,
        profile: LocalityProfile,
        scale: ScaleConfig,
    ) -> Self {
        Self::launch_with(
            TransportConfig::from_env(),
            topology,
            master,
            worker_devices,
            placement,
            profile,
            scale,
        )
    }

    /// Launches echo workers over `transport` and prepares a session.
    /// Virtual workers carry no expert state, so process mode ships a
    /// template-free bootstrap and there is nothing to seed or fetch back.
    ///
    /// # Panics
    /// Panics if the profile or placement shapes disagree with the spec,
    /// or if the transport cannot be brought up.
    pub fn launch_with(
        transport: TransportConfig,
        topology: Topology,
        master: DeviceId,
        worker_devices: Vec<DeviceId>,
        placement: impl Into<ReplicatedPlacement>,
        profile: LocalityProfile,
        scale: ScaleConfig,
    ) -> Self {
        let placement: ReplicatedPlacement = placement.into();
        assert_eq!(
            profile.blocks(),
            scale.spec.blocks,
            "profile block mismatch"
        );
        assert_eq!(
            profile.experts(),
            scale.spec.experts,
            "profile expert mismatch"
        );
        assert_eq!(
            placement.blocks(),
            scale.spec.blocks,
            "placement block mismatch"
        );
        assert_eq!(
            placement.experts(),
            scale.spec.experts,
            "placement expert mismatch"
        );
        assert_eq!(
            placement.workers(),
            worker_devices.len(),
            "placement worker mismatch"
        );
        let ledger = Arc::new(TrafficLedger::new(topology.clone()));
        let cost = CostModel::new(topology);
        let (hub, workers) = if transport.is_process_mode() {
            let bootstrap = WorkerBootstrap {
                blocks: scale.spec.blocks,
                experts: scale.spec.experts,
                optim: vela_nn::optim::AdamWConfig::default(),
                template: None,
            };
            let (hub, children) =
                launch_process_star(ledger.clone(), master, &worker_devices, &bootstrap)
                    .unwrap_or_else(|e| panic!("launching worker processes failed: {e}"));
            (
                hub,
                children.into_iter().map(WorkerHandle::Process).collect(),
            )
        } else {
            let (hub, ports) = build_star(transport, ledger.clone(), master, &worker_devices)
                .unwrap_or_else(|e| {
                    panic!("bringing up {} transport failed: {e}", transport.label())
                });
            let workers = ports
                .into_iter()
                .map(|port| {
                    WorkerHandle::Thread(ExpertManager::spawn(
                        port,
                        vela_model::LocalExpertStore::empty(scale.spec.blocks, scale.spec.experts),
                        vela_nn::optim::AdamWConfig::default(),
                    ))
                })
                .collect();
            (hub, workers)
        };
        let rng = DetRng::new(scale.seed);
        let row_totals = vec![0; worker_devices.len()];
        VirtualEngine {
            hub,
            workers,
            placement,
            routes: HashMap::new(),
            row_totals,
            profile,
            scale,
            ledger,
            cost,
            master,
            worker_devices,
            rng,
            step: 0,
            exchange_cfg: ExchangeConfig::from_env(),
            plan: ChunkPlan::default(),
            tuner: AutoTuner::default(),
        }
    }

    /// The placement driving this session.
    pub fn placement(&self) -> &ReplicatedPlacement {
        &self.placement
    }

    /// Total token rows routed to experts across every step so far
    /// (summed over workers, both passes). Replication rebalances *where*
    /// rows go, never how many there are, so two engines running the same
    /// workload must agree on this exactly whatever their placements —
    /// the correctness witness the bench_transport replication gate uses
    /// (ledger bytes are not placement-independent: traffic to a worker
    /// sharing the master's device is unaccounted).
    pub fn routed_rows(&self) -> u64 {
        self.row_totals.iter().sum()
    }

    /// Max/mean routed token rows per worker, accumulated over every
    /// step so far — the straggler index the fig6/bench replication
    /// column reports. 1.0 before any step has run.
    pub fn straggler_index(&self) -> f64 {
        let max = self.row_totals.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.row_totals.iter().sum::<u64>() as f64 / self.row_totals.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Overrides the exchange shape (coalescing / microbatching) chosen
    /// from the environment at launch. Ledger windows are byte-identical
    /// for every shape; only wire frame counts change.
    pub fn set_exchange(&mut self, cfg: ExchangeConfig) {
        self.exchange_cfg = cfg;
    }

    /// Wire frames shipped/drained by the hub so far (out, in).
    pub fn frame_counts(&self) -> (u64, u64) {
        self.hub.frame_counts()
    }

    /// Actual encoded wire bytes by frame kind (headers vs payloads).
    pub fn wire_stats(&self) -> WireStats {
        self.hub.wire_stats()
    }

    /// The (drifting) locality profile.
    pub fn profile(&self) -> &LocalityProfile {
        &self.profile
    }

    /// Label of the transport backend carrying this session's traffic.
    pub fn transport_label(&self) -> &'static str {
        self.hub.transport()
    }

    /// Runs one virtual fine-tuning step: for every block, forward token
    /// dispatch + gather and backward gradient dispatch + gather through
    /// the real message path, with routing sampled from the profile.
    ///
    /// # Panics
    /// Panics if the transport fails mid-step.
    pub fn step(&mut self) -> StepMetrics {
        self.step += 1;
        // Process-unique trace step: broadcast so worker-side correlation
        // keys match the master's and never collide across engine runs.
        let trace_step = vela_obs::next_trace_step();
        let _span = vela_obs::span("runtime.virtual.step");
        self.ledger.take_step();
        self.hub
            .broadcast(&Message::StepBegin { step: trace_step })
            .unwrap_or_else(|e| panic!("transport failed at step begin: {e}"));

        let spec = self.scale.spec;
        let tokens = self.scale.tokens();
        let bytes_per_token = spec.token_bytes() as u32;
        let mut logs = Vec::with_capacity(spec.blocks * 2);
        for block in 0..spec.blocks {
            let counts =
                sample_expert_counts(&self.profile, block, tokens, spec.top_k, &mut self.rng);
            logs.push(self.exchange(block, Pass::Forward, &counts, bytes_per_token));
            logs.push(self.exchange(block, Pass::Backward, &counts, bytes_per_token));
        }
        for log in &logs {
            for (t, &r) in self.row_totals.iter_mut().zip(&log.rows) {
                *t += r;
            }
        }

        // Replica gradient sync: the same protocol frames as the real
        // runtime, with virtual payloads sized to one expert's LoRA
        // gradients. A no-op (zero frames, zero bytes) at degree 1.
        let sync_flows = {
            let _sync = vela_obs::span("runtime.virtual.grad_sync");
            let grad_bytes = expert_lora_grad_bytes(&spec, self.scale.lora_rank) as u32;
            // The virtual engine never migrates, so it syncs over an
            // empty lane table; the overlap knob still applies.
            let mut no_lanes = MigrationState::default();
            sync_grads_over(
                &mut self.hub,
                &self.placement,
                &self.routes,
                grad_bytes,
                self.exchange_cfg.sync_overlap,
                &mut no_lanes,
            )
            .unwrap_or_else(|e| panic!("transport failed during grad sync: {e}"))
        };

        // Step end: workers ack their (empty) optimizer step.
        self.hub
            .broadcast(&Message::StepEnd)
            .unwrap_or_else(|e| panic!("transport failed at step end: {e}"));
        let mut pending = self.hub.worker_count();
        while pending > 0 {
            let (_, msg) = self
                .hub
                .recv()
                .unwrap_or_else(|e| panic!("transport failed awaiting StepDone: {e}"));
            assert_eq!(msg, Message::StepDone);
            pending -= 1;
        }

        let traffic = self.ledger.take_step();
        let master_flops = tokens as f64 * backbone_flops_per_token(&spec, self.scale.seq) * 3.0;
        let mut time = master_worker_time(
            &self.cost,
            self.master,
            &self.worker_devices,
            &logs,
            &spec,
            master_flops,
        );
        time.sync_s += sync_flows
            .iter()
            .map(|&(w, bytes)| {
                self.cost
                    .transfer_time(self.master, self.worker_devices[w], bytes)
            })
            .sum::<f64>();
        self.profile.sharpen(self.scale.drift);
        StepMetrics {
            step: self.step,
            loss: None,
            traffic,
            time,
        }
    }

    /// Runs `steps` steps.
    pub fn run(&mut self, steps: usize) -> Vec<StepMetrics> {
        (0..steps).map(|_| self.step()).collect()
    }

    /// Shuts the workers down (threads joined, processes reaped).
    pub fn shutdown(mut self) {
        if let Err(e) = self.hub.broadcast(&Message::Shutdown) {
            vela_obs::warn!("shutdown broadcast failed (workers already gone?): {e}");
        }
        self.hub.shutdown();
        for w in self.workers {
            w.finish();
        }
        vela_obs::flush();
    }

    /// One dispatch + gather round for a block: virtual token (or
    /// gradient) groups to each expert's worker, echoes back.
    fn exchange(
        &mut self,
        block: usize,
        pass: Pass,
        counts: &[usize],
        bytes_per_token: u32,
    ) -> PhaseLog {
        let _span = vela_obs::span(match pass {
            Pass::Forward => "runtime.virtual.fwd",
            Pass::Backward => "runtime.virtual.bwd",
        });
        let workers = self.hub.worker_count();
        let mut log = PhaseLog {
            block,
            pass,
            bytes_out: vec![0; workers],
            bytes_back: vec![0; workers],
            rows: vec![0; workers],
        };
        let sends: Vec<(usize, u32)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &rows)| rows > 0)
            .map(|(expert, &rows)| (expert, rows as u32))
            .collect();
        // The same bounded ring as `BrokerClient::exchange`: each worker's
        // sends are split into per-worker chunks (so chunking composes with
        // coalescing), up to `depth` ticks ride the wire at once, and
        // before shipping tick c the master drains every frame owed
        // through tick c − depth.
        let cfg = self.exchange_cfg;
        let backward = matches!(pass, Pass::Backward);
        let loads: Vec<(usize, u64)> = sends
            .iter()
            .map(|&(e, rows)| (e, u64::from(rows)))
            .collect();
        let routes = route_experts(&self.placement, &mut self.routes, block, backward, &loads);
        let (chunks, probe) = match cfg.microbatch {
            Microbatch::Fixed(n) => (n, false),
            Microbatch::Auto => self.tuner.plan(block, backward),
        };
        self.plan.build(workers, chunks, routes.iter().copied());
        let ticks = self.plan.ticks();
        let depth = cfg.depth.max(1);
        let mut timer = ExchangeTimer::new(probe || vela_obs::enabled());
        let mut owed_after: Vec<usize> = Vec::with_capacity(ticks);
        let mut sent = 0usize;
        let mut received = 0usize;
        for tick in 0..ticks {
            if tick >= depth {
                let owed = owed_after[tick - depth];
                if received < owed {
                    STALLS.add(1);
                }
                while received < owed {
                    received += self.drain_virtual(pass, &mut log, &mut timer);
                    timer.drained(received);
                }
            }
            {
                let _g = vela_obs::span(SPAN_SERIALIZE);
                let t0 = timer.mark();
                sent +=
                    self.send_virtual_tick(block, pass, tick, &sends, bytes_per_token, &mut log);
                timer.add_serialize(t0);
            }
            timer.tick_sent(sent);
            owed_after.push(sent);
        }
        while received < sent {
            received += self.drain_virtual(pass, &mut log, &mut timer);
            timer.drained(received);
        }
        if let Some((serialize_us, wait_us)) = timer.finish() {
            if probe {
                self.tuner.record(block, backward, serialize_us, wait_us);
            }
        }
        if vela_obs::enabled() {
            let rows: Vec<(usize, usize)> = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(e, &c)| (e, c))
                .collect();
            crate::broker::observe_phase(&log, &rows);
            if !self.placement.is_degree_one() {
                for w in 0..workers {
                    let wrows: Vec<(usize, usize)> = sends
                        .iter()
                        .zip(&routes)
                        .filter(|&(_, &r)| r == w)
                        .map(|(&(e, n), _)| (e, n as usize))
                        .collect();
                    vela_obs::expert_rows(worker_src(w), pass_name(pass), block, &wrows);
                }
            }
        }
        log
    }

    /// Ships ring tick `tick`: one coalesced group per worker carrying
    /// that worker's chunk of virtual sends (or per-batch frames with
    /// coalescing off). Returns the wire frames dispatched.
    fn send_virtual_tick(
        &mut self,
        block: usize,
        pass: Pass,
        tick: usize,
        sends: &[(usize, u32)],
        bytes_per_token: u32,
        log: &mut PhaseLog,
    ) -> usize {
        let payload_for = |rows: u32| Payload::Virtual {
            rows,
            bytes_per_token,
        };
        let mut frames = 0usize;
        for w in 0..self.hub.worker_count() {
            let indices = self.plan.chunk_items(w, tick);
            if indices.is_empty() {
                continue;
            }
            if self.exchange_cfg.coalesce && self.exchange_cfg.wire == WireFormat::Packed {
                // Column-packed framing: one span table, no per-item
                // Payload headers. Virtual rows carry no data region, so
                // quantization does not apply here.
                for &i in indices {
                    log.rows[w] += u64::from(sends[i].1);
                }
                let msg = Message::PackedDispatch(PackedGroup::pack_virtual(
                    block as u32,
                    group_pass(pass),
                    tick as u32,
                    bytes_per_token,
                    indices.iter().map(|&i| (sends[i].0 as u32, sends[i].1)),
                ));
                log.bytes_out[w] += msg.accounted_bytes();
                vela_obs::flow(FlowPhase::Start, exchange_corr(w, block, pass, tick));
                self.hub
                    .send(w, &msg)
                    .unwrap_or_else(|e| panic!("transport failed during dispatch: {e}"));
                frames += 1;
            } else if self.exchange_cfg.coalesce {
                let items: Vec<GroupItem> = indices
                    .iter()
                    .map(|&i| {
                        let (expert, rows) = sends[i];
                        log.rows[w] += u64::from(rows);
                        GroupItem {
                            expert: expert as u32,
                            payload: payload_for(rows),
                        }
                    })
                    .collect();
                let msg = Message::DispatchGroup {
                    block: block as u32,
                    pass: group_pass(pass),
                    chunk: tick as u32,
                    items,
                };
                log.bytes_out[w] += msg.accounted_bytes();
                vela_obs::flow(FlowPhase::Start, exchange_corr(w, block, pass, tick));
                self.hub
                    .send(w, &msg)
                    .unwrap_or_else(|e| panic!("transport failed during dispatch: {e}"));
                frames += 1;
            } else {
                for &i in indices {
                    let (expert, rows) = sends[i];
                    let payload = payload_for(rows);
                    let msg = match pass {
                        Pass::Forward => Message::TokenBatch {
                            block: block as u32,
                            expert: expert as u32,
                            payload,
                        },
                        Pass::Backward => Message::GradBatch {
                            block: block as u32,
                            expert: expert as u32,
                            payload,
                        },
                    };
                    log.bytes_out[w] += msg.accounted_bytes();
                    log.rows[w] += u64::from(rows);
                    self.hub
                        .send(w, &msg)
                        .unwrap_or_else(|e| panic!("transport failed during dispatch: {e}"));
                    frames += 1;
                }
            }
        }
        frames
    }

    /// Drains one reply frame (per-batch echo or a `ResultGroup`),
    /// accounting its uplink bytes. Returns the frames consumed (1).
    fn drain_virtual(
        &mut self,
        pass: Pass,
        log: &mut PhaseLog,
        timer: &mut ExchangeTimer,
    ) -> usize {
        let (w, msg) = {
            let _g = vela_obs::span(SPAN_INFLIGHT);
            let t0 = timer.mark();
            let r = self
                .hub
                .recv()
                .unwrap_or_else(|e| panic!("transport failed during gather: {e}"));
            timer.add_wait(t0);
            r
        };
        log.bytes_back[w] += msg.accounted_bytes();
        match (pass, msg) {
            (Pass::Forward, Message::ExpertResult { .. })
            | (Pass::Backward, Message::GradResult { .. }) => {}
            (
                _,
                Message::ResultGroup {
                    block,
                    pass: rp,
                    chunk,
                    ref items,
                },
            ) if rp == group_pass(pass) => {
                let expected = self.plan.chunk_items(w, chunk as usize).len();
                assert_eq!(
                    items.len(),
                    expected,
                    "worker {w} echoed chunk {chunk} with wrong item count"
                );
                vela_obs::flow(
                    FlowPhase::Finish,
                    exchange_corr(w, block as usize, pass, chunk as usize),
                );
            }
            (_, Message::PackedResult(ref reply)) if reply.pass == group_pass(pass) => {
                assert!(
                    matches!(reply.data, PackedData::Virtual),
                    "real packed reply in a virtual exchange"
                );
                let expected = self.plan.chunk_items(w, reply.chunk as usize).len();
                assert_eq!(
                    reply.items as usize, expected,
                    "worker {w} echoed packed chunk {} with wrong item count",
                    reply.chunk
                );
                vela_obs::flow(
                    FlowPhase::Finish,
                    exchange_corr(w, reply.block as usize, pass, reply.chunk as usize),
                );
            }
            (_, other) => panic!("unexpected reply {other:?}"),
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vela_placement::Placement;
    use vela_placement::PlacementProblem;
    use vela_placement::Strategy;

    fn small_spec() -> MoeSpec {
        MoeSpec {
            blocks: 4,
            experts: 8,
            top_k: 2,
            hidden: 4096,
            ffn: 14336,
            bits: 16,
        }
    }

    fn launch(
        placement: impl Into<ReplicatedPlacement>,
        profile: LocalityProfile,
        scale: ScaleConfig,
    ) -> VirtualEngine {
        VirtualEngine::launch(
            Topology::paper_testbed(),
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            placement,
            profile,
            scale,
        )
    }

    fn seq_placement(spec: &MoeSpec, workers: usize) -> Placement {
        Placement::new(
            (0..spec.blocks)
                .map(|_| (0..spec.experts).map(|e| e % workers).collect())
                .collect(),
            workers,
        )
    }

    #[test]
    fn virtual_step_accounts_mixtral_scale_traffic() {
        let spec = small_spec();
        let scale = ScaleConfig {
            batch: 8,
            seq: 128,
            ..ScaleConfig::paper_default(spec)
        };
        let profile = LocalityProfile::synthetic("p", spec.blocks, spec.experts, 1.0, 1);
        let mut engine = launch(seq_placement(&spec, 6), profile, scale.clone());
        let m = engine.step();
        // 1024 tokens × 2 experts × 8 KiB × 2 directions × 2 passes × 4 blocks.
        let expected_total = (scale.tokens() * spec.top_k) as u64 * spec.token_bytes() * 4 * 4;
        // Worker 0 shares the master device, so its share is unaccounted;
        // headers add a little. Total must be in the right ballpark.
        assert!(
            m.traffic.total_bytes > expected_total / 2
                && m.traffic.total_bytes < expected_total + (1 << 20),
            "total {} vs expected ≈ {}",
            m.traffic.total_bytes,
            expected_total
        );
        assert!(m.traffic.external_total() > 0);
        assert!(m.time.comm_s > 0.0 && m.time.compute_s > 0.0);
        assert!(m.loss.is_none());
        engine.shutdown();
    }

    #[test]
    fn vela_placement_beats_sequential_on_skewed_profile() {
        let spec = small_spec();
        let scale = ScaleConfig {
            batch: 4,
            seq: 64,
            ..ScaleConfig::paper_default(spec)
        };
        let profile = LocalityProfile::synthetic("skew", spec.blocks, spec.experts, 1.5, 3);

        let problem = PlacementProblem::new(
            Topology::paper_testbed(),
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            profile.to_matrix(),
            (scale.tokens() * spec.top_k) as f64,
            spec.token_bytes(),
            vec![8; 6],
        );
        let run = |placement: Placement| {
            let mut engine = launch(placement, profile.clone(), scale.clone());
            let steps = engine.run(5);
            engine.shutdown();
            crate::metrics::RunSummary::from_steps(&steps).avg_external_per_node
        };
        let vela = run(Strategy::Vela.place(&problem));
        let seq = run(Strategy::Sequential.place(&problem));
        assert!(vela < seq, "vela {vela} vs sequential {seq}");
    }

    #[test]
    fn packed_virtual_ledger_matches_legacy() {
        let spec = small_spec();
        let scale = ScaleConfig {
            batch: 2,
            seq: 32,
            ..ScaleConfig::paper_default(spec)
        };
        let profile = LocalityProfile::synthetic("p", spec.blocks, spec.experts, 1.2, 2);
        let run = |wire: WireFormat| {
            let mut engine = launch(seq_placement(&spec, 6), profile.clone(), scale.clone());
            engine.set_exchange(ExchangeConfig {
                wire,
                microbatch: Microbatch::Fixed(2),
                ..ExchangeConfig::default()
            });
            let metrics = engine.run(3);
            let stats = engine.wire_stats();
            engine.shutdown();
            let bytes: Vec<u64> = metrics.iter().map(|m| m.traffic.total_bytes).collect();
            (bytes, stats)
        };
        let (legacy, legacy_stats) = run(WireFormat::Legacy);
        let (packed, packed_stats) = run(WireFormat::Packed);
        // The accounted ledger is identical by construction; the actual
        // encoded bytes shrink because span tables replace Payload headers.
        assert_eq!(legacy, packed);
        assert!(
            packed_stats.dispatch_total() < legacy_stats.dispatch_total(),
            "packed {} vs legacy {}",
            packed_stats.dispatch_total(),
            legacy_stats.dispatch_total()
        );
    }

    #[test]
    fn replication_balances_routing_and_accounts_sync_traffic() {
        use vela_placement::ReplicationConfig;
        let spec = small_spec();
        let scale = ScaleConfig {
            batch: 4,
            seq: 64,
            ..ScaleConfig::paper_default(spec)
        };
        let profile = LocalityProfile::synthetic("skew", spec.blocks, spec.experts, 1.5, 3);
        let problem = PlacementProblem::new(
            Topology::paper_testbed(),
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            profile.to_matrix(),
            (scale.tokens() * spec.top_k) as f64,
            spec.token_bytes(),
            vec![8; 6],
        );
        let base = Strategy::Vela.place(&problem);

        let mut single = launch(base.clone(), profile.clone(), scale.clone());
        let single_steps = single.run(4);
        let single_straggler = single.straggler_index();
        single.shutdown();
        assert!(single_steps.iter().all(|m| m.traffic.sync_bytes == 0));
        assert!(single_steps.iter().all(|m| m.time.sync_s == 0.0));

        let replicated = ReplicationConfig::Budget { frac: 1.0 }.apply(&base, &problem);
        assert!(replicated.total_replicas() > base.blocks() * base.experts());
        let mut engine = launch(replicated, profile, scale);
        let steps = engine.run(4);
        let straggler = engine.straggler_index();
        engine.shutdown();
        // The sync frames are real, accounted traffic...
        assert!(steps.iter().all(|m| m.traffic.sync_bytes > 0));
        assert!(steps.iter().any(|m| m.time.sync_s > 0.0));
        assert!(steps
            .iter()
            .all(|m| m.traffic.sync_bytes < m.traffic.total_bytes));
        // ...and least-loaded routing flattens the skewed row distribution.
        assert!(
            straggler < single_straggler,
            "replicated {straggler} vs single {single_straggler}"
        );
    }

    #[test]
    fn drift_sharpens_profile_over_steps() {
        let spec = small_spec();
        let scale = ScaleConfig {
            batch: 1,
            seq: 16,
            drift: 0.01,
            ..ScaleConfig::paper_default(spec)
        };
        let profile = LocalityProfile::synthetic("p", spec.blocks, spec.experts, 1.0, 4);
        let before = profile.mean_concentration();
        let mut engine = launch(seq_placement(&spec, 6), profile, scale);
        engine.run(10);
        let after = engine.profile().mean_concentration();
        assert!(after > before, "{before} -> {after}");
        engine.shutdown();
    }

    #[test]
    fn capacity_helpers() {
        let spec = MoeSpec::mixtral_8x7b();
        // 3 × 4096 × 14336 × 2 bytes ≈ 352 MB per expert.
        let b = expert_param_bytes(&spec);
        assert!(b > 330 << 20 && b < 360 << 20, "{b}");
        let topology = Topology::paper_testbed();
        let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let caps = capacity_from_memory(&topology, &workers, &spec, 0.5);
        // 16 GB usable / 352 MB ≈ 46 experts.
        assert!(caps.iter().all(|&c| c > 40 && c < 50), "{caps:?}");
        assert!(caps.iter().sum::<usize>() >= spec.total_experts());
    }

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let scale = ScaleConfig::paper_default(MoeSpec::mixtral_8x7b());
        assert_eq!(scale.batch, 8);
        assert_eq!(scale.lora_rank, 8);
        assert_eq!(scale.tokens(), 2048);
        // Paper §V-B: ~2/3 of the 4096 top-2 assignments leave the node in
        // a balanced placement — "more than 2600 tokens" sent externally.
        assert!((scale.tokens() * scale.spec.top_k) as f64 * 2.0 / 3.0 > 2600.0);
    }
}

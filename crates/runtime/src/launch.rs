//! Process-mode launch plumbing: spawning `vela_worker` OS processes and
//! wiring them into a TCP star.
//!
//! Thread mode and process mode share every protocol byte; the only extra
//! machinery here is (a) locating the worker binary, (b) handing each
//! child its connect coordinates via environment variables, and (c) the
//! bootstrap control frame that tells a fresh process what shard shape and
//! optimizer it serves. Worker processes are always reaped — teardown
//! waits with a deadline and kills stragglers, so a crashed master never
//! leaks children past [`WorkerHandle::finish`].

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vela_cluster::{DeviceId, TrafficLedger};
use vela_model::LocalExpertStore;

use crate::transport::tcp::ACCEPT_DEADLINE;
use crate::transport::{MasterHub, TcpStarBuilder, TransportError};
use crate::worker::{ExpertManager, WorkerBootstrap};

/// Environment variables a `vela_worker` process reads at startup.
pub mod env_keys {
    /// `host:port` of the master's listener.
    pub const CONNECT: &str = "VELA_WORKER_CONNECT";
    /// This worker's index in the master's worker list.
    pub const INDEX: &str = "VELA_WORKER_INDEX";
    /// Numeric device id this worker represents.
    pub const DEVICE: &str = "VELA_WORKER_DEVICE";
    /// Overrides the worker binary path used by the spawner.
    pub const BIN: &str = "VELA_WORKER_BIN";
}

/// A launched worker: a thread in this process or a child OS process.
#[derive(Debug)]
pub enum WorkerHandle {
    /// In-process Expert Manager thread.
    Thread(ExpertManager),
    /// `vela_worker` child process.
    Process(Child),
}

impl WorkerHandle {
    /// Finishes the worker: joins a thread (returning its shard) or reaps
    /// a process (returning `None` — process shards are fetched back over
    /// the wire before shutdown). A process that ignores the shutdown is
    /// killed after a 10 s grace period; none are ever leaked.
    pub fn finish(self) -> Option<LocalExpertStore> {
        match self {
            WorkerHandle::Thread(manager) => Some(manager.join()),
            WorkerHandle::Process(mut child) => {
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    match child.try_wait() {
                        Ok(Some(status)) => {
                            if !status.success() {
                                vela_obs::warn!("vela_worker exited with {status}");
                            }
                            return None;
                        }
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Ok(None) => {
                            vela_obs::error!("vela_worker ignored shutdown; killing it");
                            let _ = child.kill();
                            let _ = child.wait();
                            return None;
                        }
                        Err(e) => {
                            vela_obs::error!("waiting on vela_worker failed: {e}; killing it");
                            let _ = child.kill();
                            let _ = child.wait();
                            return None;
                        }
                    }
                }
            }
        }
    }
}

/// Locates the `vela_worker` binary: `VELA_WORKER_BIN` if set, otherwise
/// next to the current executable (hopping out of `deps/` or `examples/`
/// subdirectories cargo uses for tests and examples).
pub fn worker_binary() -> Result<PathBuf, TransportError> {
    if let Ok(path) = std::env::var(env_keys::BIN) {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(TransportError::Handshake(format!(
            "{}={} does not exist",
            env_keys::BIN,
            path.display()
        )));
    }
    let exe = std::env::current_exe().map_err(TransportError::Io)?;
    let mut dir = exe.parent().map(PathBuf::from).unwrap_or_default();
    // target/{profile}/deps/test-… and target/{profile}/examples/… both
    // live one level below the directory that holds the worker binary.
    if matches!(
        dir.file_name().and_then(|n| n.to_str()),
        Some("deps") | Some("examples")
    ) {
        dir.pop();
    }
    let candidate = dir.join("vela_worker");
    if candidate.is_file() {
        return Ok(candidate);
    }
    Err(TransportError::Handshake(format!(
        "vela_worker binary not found at {} — build it with `cargo build --release -p \
         vela-runtime` or set {}",
        candidate.display(),
        env_keys::BIN
    )))
}

/// Spawns one `vela_worker` process per device, pointed at `addr`.
///
/// Children inherit this process's environment (so `VELA_THREADS`,
/// `VELA_LOG` etc. apply), with `VELA_TRACE_OUT` suffixed per worker so
/// tracing children never clobber the master's trace file.
pub fn spawn_worker_processes(
    addr: std::net::SocketAddr,
    workers: &[DeviceId],
) -> Result<Vec<Child>, TransportError> {
    let bin = worker_binary()?;
    let mut children = Vec::with_capacity(workers.len());
    for (index, &device) in workers.iter().enumerate() {
        let mut cmd = Command::new(&bin);
        cmd.env(env_keys::CONNECT, addr.to_string())
            .env(env_keys::INDEX, index.to_string())
            .env(env_keys::DEVICE, device.0.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        match std::env::var("VELA_TRACE_OUT") {
            Ok(out) => {
                cmd.env("VELA_TRACE_OUT", format!("{out}.worker{index}"));
            }
            // Tracing without an explicit output file would have every
            // process write the same default path; disable it in children.
            Err(_) => {
                cmd.env_remove("VELA_TRACE");
            }
        }
        let child = cmd.spawn().map_err(|e| {
            TransportError::Handshake(format!("spawning {} failed: {e}", bin.display()))
        })?;
        children.push(child);
    }
    Ok(children)
}

/// Builds a complete process-mode star: bind, spawn one `vela_worker` per
/// device, accept them all, and ship each its bootstrap control frame.
/// Children are killed if the star cannot be assembled.
pub fn launch_process_star(
    ledger: Arc<TrafficLedger>,
    master: DeviceId,
    workers: &[DeviceId],
    bootstrap: &WorkerBootstrap,
) -> Result<(MasterHub, Vec<Child>), TransportError> {
    let builder = TcpStarBuilder::bind(ledger, master, workers)?;
    let mut children = spawn_worker_processes(builder.addr(), workers)?;
    let assemble: Result<MasterHub, TransportError> = (|| {
        let mut hub = builder.accept_workers(ACCEPT_DEADLINE)?;
        let frame = bootstrap.encode();
        for index in 0..workers.len() {
            hub.send_control(index, frame.clone())?;
        }
        Ok(hub)
    })();
    match assemble {
        Ok(hub) => Ok((hub, children)),
        Err(e) => {
            for child in &mut children {
                let _ = child.kill();
                let _ = child.wait();
            }
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_worker_binary_is_a_clear_error() {
        // Tests run from target/{profile}/deps; unless a prior build left
        // a vela_worker binary around, the locator must explain itself
        // rather than panic. Either outcome is acceptable here — the point
        // is that it never aborts.
        match worker_binary() {
            Ok(path) => assert!(path.is_file()),
            Err(TransportError::Handshake(msg)) => {
                assert!(msg.contains("vela_worker"), "unhelpful error: {msg}")
            }
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
}

//! The pluggable transport seam between the master and its Expert Manager
//! workers.
//!
//! The paper's master–worker star (§IV-A) is a *topology*, not an
//! implementation: the broker only needs hub/port endpoints with send,
//! recv, try-recv/timeout-recv and shutdown semantics. This module defines
//! that seam ([`HubBackend`] / [`PortBackend`]) and two std-only
//! implementations:
//!
//! * [`channel`] — the original in-process `std::sync::mpsc` star;
//! * [`tcp`] — loopback `std::net` sockets with length-prefixed framing,
//!   a connect handshake with bounded-backoff retry, read timeouts, and a
//!   clean shutdown handshake. The same code path serves both the
//!   hermetic "tcp-threads" mode (workers as threads, sockets in between)
//!   and true multi-process runs via the `vela_worker` binary.
//!
//! **Traffic accounting is transport-independent by construction**: every
//! accounted byte is recorded by the *master-side* [`MasterHub`] wrapper —
//! downlink bytes when it sends, uplink bytes when it receives — so the
//! [`TrafficLedger`] sees the identical byte stream whether the peer is a
//! thread an mpsc hop away or a separate OS process across a socket.
//! (Workers cannot share the master's ledger once they live in another
//! process, which is why the accounting lives here and not in the ports.)
//! Fig. 5/6 traffic numbers are therefore byte-exact across transports —
//! pinned by `tests/transport_parity.rs`.

pub mod channel;
pub mod tcp;

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use vela_cluster::{DeviceId, TrafficLedger};
use vela_obs::LazyCounter;

use crate::message::{FrameKind, Message};
use crate::wire::WireError;

pub use tcp::{connect_worker, tcp_star, TcpStarBuilder};

/// A transport-layer failure. Unlike the original mpsc star, which
/// panicked on any hiccup, every condition a real link can produce is an
/// error value the broker and worker loops handle explicitly.
#[derive(Debug)]
pub enum TransportError {
    /// The peer hung up: channel closed, socket EOF, or connection reset.
    Disconnected,
    /// No frame arrived within the requested timeout.
    Timeout,
    /// A socket-level failure other than a clean close.
    Io(std::io::Error),
    /// A frame arrived but could not be decoded.
    Wire(WireError),
    /// The connect handshake failed (bad magic, duplicate worker index,
    /// device mismatch, or the retry budget ran out).
    Handshake(String),
    /// The peer spoke the protocol wrong: an unexpected message kind, a
    /// reply for the wrong block/pass/expert, or an ack from the wrong
    /// worker. The link itself is healthy — the *conversation* is not.
    Protocol(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Timeout => write!(f, "timed out waiting for a frame"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Wire(e) => write!(f, "malformed frame: {e}"),
            TransportError::Handshake(why) => write!(f, "transport handshake failed: {why}"),
            TransportError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::UnexpectedEof => TransportError::Disconnected,
            _ => TransportError::Io(e),
        }
    }
}

/// How the star network is realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// In-process `std::sync::mpsc` channels, workers as threads (the
    /// default; fastest, and what every engine used before the seam).
    Channel,
    /// Loopback TCP sockets, workers still as threads in this process.
    /// Exercises the full wire path hermetically — used by the parity
    /// tests and available as `VELA_TRANSPORT=tcp-threads`.
    TcpThreads,
    /// Loopback TCP sockets, workers as separate OS processes running the
    /// `vela_worker` binary (`VELA_TRANSPORT=tcp`).
    TcpProcesses,
}

/// Chooses and labels a transport; read from `VELA_TRANSPORT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// The selected realization of the star.
    pub mode: TransportMode,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            mode: TransportMode::Channel,
        }
    }
}

impl TransportConfig {
    /// The in-process mpsc star.
    pub fn channel() -> Self {
        TransportConfig {
            mode: TransportMode::Channel,
        }
    }

    /// TCP loopback with in-process worker threads.
    pub fn tcp_threads() -> Self {
        TransportConfig {
            mode: TransportMode::TcpThreads,
        }
    }

    /// TCP loopback with worker OS processes.
    pub fn tcp_processes() -> Self {
        TransportConfig {
            mode: TransportMode::TcpProcesses,
        }
    }

    /// Reads `VELA_TRANSPORT` (`channel` | `tcp` | `tcp-threads`,
    /// default `channel`). Unknown values fall back to the default with a
    /// warning rather than aborting a long run.
    pub fn from_env() -> Self {
        match std::env::var("VELA_TRANSPORT").as_deref() {
            Ok("tcp") => Self::tcp_processes(),
            Ok("tcp-threads") => Self::tcp_threads(),
            Ok("channel") | Err(_) => Self::channel(),
            Ok(other) => {
                vela_obs::warn!("unknown VELA_TRANSPORT={other:?}, using channel");
                Self::channel()
            }
        }
    }

    /// Stable label recorded in [`RunSummary`](crate::RunSummary) and the
    /// fig6 output columns.
    pub fn label(&self) -> &'static str {
        match self.mode {
            TransportMode::Channel => "channel",
            TransportMode::TcpThreads => "tcp-threads",
            TransportMode::TcpProcesses => "tcp",
        }
    }

    /// Whether workers run as separate OS processes.
    pub fn is_process_mode(&self) -> bool {
        self.mode == TransportMode::TcpProcesses
    }
}

/// How many chunks a block-pass exchange is split into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Microbatch {
    /// Split every worker's item list into (up to) this many chunks.
    /// `Fixed(1)` is the degenerate single-chunk exchange.
    Fixed(usize),
    /// Let the runtime pick the chunk count per (block, pass) from the
    /// measured serialize/in-flight ratio, re-estimated online with a
    /// deterministic warmup window (see `runtime::pipeline::AutoTuner`).
    /// Any choice is bitwise-identical to any other by construction, so
    /// auto-chunking affects speed only.
    Auto,
}

impl Microbatch {
    /// The chunk count for a fixed setting, or `None` for auto.
    pub fn fixed(&self) -> Option<usize> {
        match self {
            Microbatch::Fixed(n) => Some(*n),
            Microbatch::Auto => None,
        }
    }

    /// Stable label for bench output: the number, or `auto`.
    pub fn label(&self) -> String {
        match self {
            Microbatch::Fixed(n) => n.to_string(),
            Microbatch::Auto => "auto".to_string(),
        }
    }
}

impl fmt::Display for Microbatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// How coalesced group frames are laid out on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// One `Payload` header per expert batch inside the group frame (the
    /// original format).
    Legacy,
    /// Column-packed frames: one contiguous row region per worker-chunk
    /// with a compact span table, no per-item payload headers. Bitwise-
    /// identical computation and ledger-identical accounting to legacy.
    Packed,
}

impl WireFormat {
    /// Stable label for bench output.
    pub fn label(&self) -> &'static str {
        match self {
            WireFormat::Legacy => "legacy",
            WireFormat::Packed => "packed",
        }
    }
}

/// Opt-in lossy compression of packed activation rows and expert-state
/// installs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// Exact f32 everywhere (default).
    Off,
    /// int8 rows with per-row f32 scales for activations crossing the
    /// wire and for master→worker expert-state installs. Deliberately
    /// lossy on activations — gated by its own loss-curve accuracy test,
    /// not the bitwise parity grid. Master-side f32 copies stay exact, so
    /// optimizer state is never quantized.
    Int8,
}

impl Quant {
    /// Stable label for bench output.
    pub fn label(&self) -> &'static str {
        match self {
            Quant::Off => "off",
            Quant::Int8 => "int8",
        }
    }
}

/// How `apply_placement` moves expert parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationMode {
    /// Stop-the-world: every `ExpertState` transfer completes between
    /// steps before `apply_placement` returns (default).
    Sync,
    /// Background shadow install: `apply_placement` returns immediately
    /// and chunked transfers interleave with training traffic through the
    /// per-link writer threads; cutover happens at the first step boundary
    /// after the destination acks, bit-identical to a stop-the-world
    /// migration performed at that boundary.
    Overlap,
}

impl MigrationMode {
    /// Stable label for bench output.
    pub fn label(&self) -> &'static str {
        match self {
            MigrationMode::Sync => "sync",
            MigrationMode::Overlap => "overlap",
        }
    }
}

/// How a block-pass exchange is framed and pipelined.
///
/// Orthogonal to [`TransportConfig`]: any exchange shape runs over any
/// transport, and every combination produces bitwise-identical results and
/// byte-identical ledgers (pinned by `tests/transport_parity.rs`) — except
/// `quant: Int8`, which is deliberately lossy on activations and carries
/// its own accuracy gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeConfig {
    /// Pack a worker's expert batches for a chunk into one
    /// `DispatchGroup` frame (default). Off = one frame per batch, the
    /// pre-pipeline wire protocol.
    pub coalesce: bool,
    /// Number of chunks each block-pass is split into so the master can
    /// drain chunk *j* while workers compute *j+1*. Chunking happens
    /// per worker at whole-expert-batch granularity, so it composes with
    /// coalescing: one frame per worker per chunk.
    pub microbatch: Microbatch,
    /// Maximum chunks in flight per worker before the master drains
    /// replies (the ring depth). `1` reproduces the one-deep send→drain
    /// pipeline; deeper rings keep the link busy while earlier chunks are
    /// still being served.
    pub depth: usize,
    /// Group frame layout. Packed framing applies to coalesced frames;
    /// with `coalesce: false` the per-batch protocol is legacy by
    /// definition.
    pub wire: WireFormat,
    /// Opt-in int8 row quantization (packed frames only).
    pub quant: Quant,
    /// How expert migration moves parameters (stop-the-world or
    /// background shadow install).
    pub migration: MigrationMode,
    /// Issue replica gradient-sync flows up front and drain replies in
    /// arrival order instead of one sequential round-trip per expert.
    /// Workers only apply gradients on `StepEnd`, so results stay
    /// loss-for-loss bitwise identical either way.
    pub sync_overlap: bool,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            coalesce: true,
            microbatch: Microbatch::Fixed(1),
            depth: 2,
            wire: WireFormat::Legacy,
            quant: Quant::Off,
            migration: MigrationMode::Sync,
            sync_overlap: false,
        }
    }
}

impl ExchangeConfig {
    /// One frame per batch, single chunk, no pipelining — the exact wire
    /// protocol that predates the pipeline. Parity tests use this as the
    /// baseline.
    pub fn per_batch() -> Self {
        ExchangeConfig {
            coalesce: false,
            microbatch: Microbatch::Fixed(1),
            depth: 1,
            ..ExchangeConfig::default()
        }
    }

    /// Coalesced exchange with a fixed chunk count and the default ring
    /// depth — the common bench/test shape.
    pub fn chunked(microbatch: usize) -> Self {
        ExchangeConfig {
            microbatch: Microbatch::Fixed(microbatch),
            ..ExchangeConfig::default()
        }
    }

    /// The default exchange over column-packed frames, optionally with
    /// int8 row quantization.
    pub fn packed(quant: Quant) -> Self {
        ExchangeConfig {
            wire: WireFormat::Packed,
            quant,
            ..ExchangeConfig::default()
        }
    }

    /// Same exchange shape with a different wire format/quantization.
    pub fn with_wire(self, wire: WireFormat, quant: Quant) -> Self {
        ExchangeConfig {
            wire,
            quant,
            ..self
        }
    }

    /// Whether data-plane rows are int8-quantized on the wire.
    pub fn quantized(&self) -> bool {
        self.wire == WireFormat::Packed && self.quant == Quant::Int8
    }

    /// Reads `VELA_COALESCE` (`1`/`on`/`true` — default — or
    /// `0`/`off`/`false`), `VELA_MICROBATCH` (a chunk count ≥ 1 or
    /// `auto`, default 1), `VELA_PIPELINE_DEPTH` (in-flight chunks
    /// ≥ 1, default 2), `VELA_WIRE` (`legacy` — default — or `packed`)
    /// and `VELA_QUANT` (`off` — default — or `int8`; requires
    /// `VELA_WIRE=packed`). Unknown values warn and fall back rather
    /// than aborting a long run.
    pub fn from_env() -> Self {
        let mut cfg = ExchangeConfig::default();
        match std::env::var("VELA_COALESCE").as_deref() {
            Ok("0") | Ok("off") | Ok("false") => cfg.coalesce = false,
            Ok("1") | Ok("on") | Ok("true") | Err(_) => {}
            Ok(other) => {
                vela_obs::warn!("unknown VELA_COALESCE={other:?}, coalescing stays on");
            }
        }
        if let Ok(raw) = std::env::var("VELA_MICROBATCH") {
            if raw == "auto" {
                cfg.microbatch = Microbatch::Auto;
            } else {
                match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => cfg.microbatch = Microbatch::Fixed(n),
                    _ => {
                        vela_obs::warn!("invalid VELA_MICROBATCH={raw:?}, using 1");
                    }
                }
            }
        }
        if let Ok(raw) = std::env::var("VELA_PIPELINE_DEPTH") {
            match raw.parse::<usize>() {
                Ok(n) if n >= 1 => cfg.depth = n,
                _ => {
                    vela_obs::warn!("invalid VELA_PIPELINE_DEPTH={raw:?}, using 2");
                }
            }
        }
        match std::env::var("VELA_WIRE").as_deref() {
            Ok("packed") => cfg.wire = WireFormat::Packed,
            Ok("legacy") | Err(_) => {}
            Ok(other) => {
                vela_obs::warn!("unknown VELA_WIRE={other:?}, using legacy framing");
            }
        }
        match std::env::var("VELA_QUANT").as_deref() {
            Ok("int8") => {
                if cfg.wire == WireFormat::Packed {
                    cfg.quant = Quant::Int8;
                } else {
                    vela_obs::warn!("VELA_QUANT=int8 needs VELA_WIRE=packed, staying exact");
                }
            }
            Ok("off") | Err(_) => {}
            Ok(other) => {
                vela_obs::warn!("unknown VELA_QUANT={other:?}, staying exact");
            }
        }
        match std::env::var("VELA_MIGRATION").as_deref() {
            Ok("overlap") => cfg.migration = MigrationMode::Overlap,
            Ok("sync") | Err(_) => {}
            Ok(other) => {
                vela_obs::warn!("unknown VELA_MIGRATION={other:?}, using sync migration");
            }
        }
        match std::env::var("VELA_SYNC_OVERLAP").as_deref() {
            Ok("1") | Ok("on") | Ok("true") => cfg.sync_overlap = true,
            Ok("0") | Ok("off") | Ok("false") | Err(_) => {}
            Ok(other) => {
                vela_obs::warn!("unknown VELA_SYNC_OVERLAP={other:?}, staying sequential");
            }
        }
        if cfg.migration == MigrationMode::Overlap && cfg.quantized() {
            // Sync-mode migration quantizes the master→destination install
            // when VELA_QUANT=int8; the shadow lane is always exact, so the
            // two modes would not be byte-identical. Overlap wins.
            vela_obs::warn!(
                "VELA_MIGRATION=overlap streams exact expert chunks; int8 expert-state \
                 installs do not apply to migration in this mode"
            );
        }
        cfg
    }
}

/// Master-side raw frame mover. Implementations ship opaque frames; all
/// message encoding and traffic accounting happens in [`MasterHub`].
pub trait HubBackend: Send + fmt::Debug {
    /// Ships a frame to worker `index`. Takes the frame by value so
    /// queueing backends (mpsc, the tcp writer threads) move the encoded
    /// buffer instead of copying it — one allocation per frame, total.
    fn send(&mut self, index: usize, frame: Vec<u8>) -> Result<(), TransportError>;
    /// Blocks for the next `(worker_index, frame)` pair.
    fn recv(&mut self) -> Result<(usize, Vec<u8>), TransportError>;
    /// Like [`recv`](Self::recv) with a deadline.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<(usize, Vec<u8>), TransportError>;
    /// Closes all links (best effort; repeated calls are harmless).
    fn shutdown(&mut self);
}

/// Worker-side raw frame mover.
pub trait PortBackend: Send + fmt::Debug {
    /// Ships a frame to the master (by value; see [`HubBackend::send`]).
    fn send(&mut self, frame: Vec<u8>) -> Result<(), TransportError>;
    /// Blocks for the next frame from the master.
    fn recv(&mut self) -> Result<Vec<u8>, TransportError>;
    /// Returns a frame if one is ready, `None` otherwise.
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError>;
    /// Like [`recv`](Self::recv) with a deadline.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError>;
    /// Closes the link to the master (best effort).
    fn shutdown(&mut self);
}

static WIRE_DISPATCH_HEADER: LazyCounter = LazyCounter::new("wire.dispatch.header_bytes");
static WIRE_DISPATCH_PAYLOAD: LazyCounter = LazyCounter::new("wire.dispatch.payload_bytes");
static WIRE_RESULT_HEADER: LazyCounter = LazyCounter::new("wire.result.header_bytes");
static WIRE_RESULT_PAYLOAD: LazyCounter = LazyCounter::new("wire.result.payload_bytes");
static WIRE_EXPERT_STATE_HEADER: LazyCounter = LazyCounter::new("wire.expert_state.header_bytes");
static WIRE_EXPERT_STATE_PAYLOAD: LazyCounter = LazyCounter::new("wire.expert_state.payload_bytes");

/// Actual encoded bytes moved through a [`MasterHub`], split by frame
/// kind and header vs payload.
///
/// This is the *wire* view, distinct from the [`TrafficLedger`]'s
/// *accounted* view: the ledger stays framing-independent by design (so
/// fig5/fig6 byte totals are comparable across every exchange shape),
/// while these counters measure what serialization actually costs —
/// the thing the packed layout exists to shrink. Virtual payloads carry
/// no wire payload bytes, only their headers.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WireStats {
    /// Header bytes of master→worker activation/gradient frames.
    pub dispatch_header: u64,
    /// Payload bytes of master→worker activation/gradient frames.
    pub dispatch_payload: u64,
    /// Header bytes of worker→master result frames.
    pub result_header: u64,
    /// Payload bytes of worker→master result frames.
    pub result_payload: u64,
    /// Header bytes of expert-state transfers.
    pub expert_state_header: u64,
    /// Payload (checkpoint blob) bytes of expert-state transfers.
    pub expert_state_payload: u64,
    /// Bytes of control frames (step markers, acks, fetch requests).
    pub control: u64,
}

impl WireStats {
    /// Total encoded bytes in both directions.
    pub fn total(&self) -> u64 {
        self.dispatch_header
            + self.dispatch_payload
            + self.result_header
            + self.result_payload
            + self.expert_state_header
            + self.expert_state_payload
            + self.control
    }

    /// Total encoded bytes of the master→worker dispatch path.
    pub fn dispatch_total(&self) -> u64 {
        self.dispatch_header + self.dispatch_payload
    }

    fn record(&mut self, kind: FrameKind, header: u64, payload: u64) {
        match kind {
            FrameKind::Dispatch => {
                self.dispatch_header += header;
                self.dispatch_payload += payload;
                WIRE_DISPATCH_HEADER.add(header);
                WIRE_DISPATCH_PAYLOAD.add(payload);
            }
            FrameKind::Result => {
                self.result_header += header;
                self.result_payload += payload;
                WIRE_RESULT_HEADER.add(header);
                WIRE_RESULT_PAYLOAD.add(payload);
            }
            FrameKind::ExpertState => {
                self.expert_state_header += header;
                self.expert_state_payload += payload;
                WIRE_EXPERT_STATE_HEADER.add(header);
                WIRE_EXPERT_STATE_PAYLOAD.add(payload);
            }
            FrameKind::Control => self.control += header + payload,
        }
    }
}

/// Master-side endpoint of the star network.
///
/// Wraps any [`HubBackend`] and performs the *only* traffic accounting in
/// the system: downlink bytes are recorded at send, uplink bytes at
/// receive, always against the (source, destination) device pair, so
/// ledger totals are identical across transports.
#[derive(Debug)]
pub struct MasterHub {
    backend: Box<dyn HubBackend>,
    ledger: Arc<TrafficLedger>,
    device: DeviceId,
    workers: Vec<DeviceId>,
    transport: &'static str,
    frames_out: u64,
    frames_in: u64,
    wire_stats: WireStats,
    /// Frames drained out of order (e.g. a migration chunk surfacing
    /// during a clock-probe window) are stashed here, already accounted,
    /// and re-delivered by the next `recv`/`recv_timeout` — the hub never
    /// drops a frame it has read off the wire.
    pending: VecDeque<(usize, Message)>,
}

impl MasterHub {
    /// Wraps `backend` as the hub of a star between `master` and
    /// `workers`, accounting all traffic in `ledger`.
    pub fn new(
        backend: Box<dyn HubBackend>,
        ledger: Arc<TrafficLedger>,
        master: DeviceId,
        workers: Vec<DeviceId>,
        transport: &'static str,
    ) -> Self {
        MasterHub {
            backend,
            ledger,
            device: master,
            workers,
            transport,
            frames_out: 0,
            frames_in: 0,
            wire_stats: WireStats::default(),
            pending: VecDeque::new(),
        }
    }

    /// Protocol frames shipped and drained since construction, counted at
    /// the wire-frame granularity (one coalesced group = one frame). The
    /// transport bench uses this to show coalescing shrinking frame
    /// counts while [`TrafficLedger`] bytes stay identical.
    pub fn frame_counts(&self) -> (u64, u64) {
        (self.frames_out, self.frames_in)
    }

    /// Actual encoded wire bytes moved so far, by frame kind (see
    /// [`WireStats`]).
    pub fn wire_stats(&self) -> WireStats {
        self.wire_stats
    }

    /// The master's device.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Number of workers attached.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The device of worker `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn worker_device(&self, index: usize) -> DeviceId {
        self.workers[index]
    }

    /// Label of the backend in use (`channel`, `tcp-threads`, `tcp`).
    pub fn transport(&self) -> &'static str {
        self.transport
    }

    /// Sends a message to worker `index`, recording its bytes. Clock
    /// probes skip *all* accounting (ledger, frame counts, wire stats):
    /// they are observability traffic, and a traced run must stay
    /// byte- and frame-identical to an untraced one.
    pub fn send(&mut self, index: usize, msg: &Message) -> Result<(), TransportError> {
        if msg.is_clock() {
            return self.backend.send(index, msg.encode());
        }
        if msg.is_grad_sync() {
            self.ledger
                .record_sync(self.device, self.workers[index], msg.accounted_bytes());
        } else if msg.is_migration() {
            self.ledger
                .record_migration(self.device, self.workers[index], msg.accounted_bytes());
        } else {
            self.ledger
                .record(self.device, self.workers[index], msg.accounted_bytes());
        }
        self.frames_out += 1;
        let frame = msg.encode();
        let (kind, header, payload) = msg.wire_cost(frame.len());
        self.wire_stats.record(kind, header, payload);
        self.backend.send(index, frame)
    }

    /// Broadcasts a message to every worker.
    pub fn broadcast(&mut self, msg: &Message) -> Result<(), TransportError> {
        for index in 0..self.workers.len() {
            self.send(index, msg)?;
        }
        Ok(())
    }

    /// Blocks for the next worker message, recording its bytes; returns
    /// `(worker_index, message)`. Frames stashed by an earlier
    /// out-of-order drain are delivered first.
    pub fn recv(&mut self) -> Result<(usize, Message), TransportError> {
        if let Some(stashed) = self.pending.pop_front() {
            return Ok(stashed);
        }
        let (index, frame) = self.backend.recv()?;
        self.account_up(index, &frame)
    }

    /// Like [`recv`](Self::recv) with a deadline.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<(usize, Message), TransportError> {
        if let Some(stashed) = self.pending.pop_front() {
            return Ok(stashed);
        }
        let (index, frame) = self.backend.recv_timeout(timeout)?;
        self.account_up(index, &frame)
    }

    /// Stashes an already-received (and already-accounted) message for
    /// re-delivery by the next `recv`/`recv_timeout`. Used by drain loops
    /// that pull a frame belonging to a different protocol exchange.
    pub fn push_pending(&mut self, index: usize, msg: Message) {
        self.pending.push_back((index, msg));
    }

    /// Ships a raw control frame (e.g. the process-mode
    /// [`WorkerBootstrap`](crate::worker::WorkerBootstrap)) outside the
    /// [`Message`] protocol. Control frames are setup plumbing that does
    /// not exist in thread mode, so they carry **no accounted bytes** —
    /// accounting them would make ledger totals transport-dependent.
    pub fn send_control(&mut self, index: usize, frame: Vec<u8>) -> Result<(), TransportError> {
        self.backend.send(index, frame)
    }

    fn account_up(
        &mut self,
        index: usize,
        frame: &[u8],
    ) -> Result<(usize, Message), TransportError> {
        let msg = Message::decode(frame)?;
        if msg.is_clock() {
            return Ok((index, msg));
        }
        if msg.is_grad_sync() {
            self.ledger
                .record_sync(self.workers[index], self.device, msg.accounted_bytes());
        } else if msg.is_migration() {
            self.ledger
                .record_migration(self.workers[index], self.device, msg.accounted_bytes());
        } else {
            self.ledger
                .record(self.workers[index], self.device, msg.accounted_bytes());
        }
        self.frames_in += 1;
        let (kind, header, payload) = msg.wire_cost(frame.len());
        self.wire_stats.record(kind, header, payload);
        Ok((index, msg))
    }

    /// Runs `rounds` NTP-style clock probes against every worker and
    /// records the minimum-RTT sample per worker as a trace `"k"`
    /// record (via [`vela_obs::clock_sample`]). Must be called in a
    /// quiescent window — between steps, when no exchange replies are
    /// pending — because it drains the hub inline waiting for each
    /// reply. Failures are swallowed: a lost probe only degrades trace
    /// alignment, never the run.
    pub fn probe_clocks(&mut self, rounds: usize) {
        for index in 0..self.workers.len() {
            let mut best: Option<(u64, i64)> = None;
            'rounds: for _ in 0..rounds {
                let t1 = vela_obs::now_us();
                if self.send(index, &Message::ClockProbe { t1 }).is_err() {
                    return;
                }
                let (t2, t3) = loop {
                    match self.recv_timeout(Duration::from_millis(500)) {
                        Ok((i, Message::ClockReply { t1: echoed, t2, t3 }))
                            if i == index && echoed == t1 =>
                        {
                            break (t2, t3);
                        }
                        // A stale reply from an earlier, timed-out
                        // round is clock traffic too — keep draining.
                        Ok((_, msg)) if msg.is_clock() => continue,
                        Ok((i, msg)) => {
                            // A background migration frame can surface
                            // during the probe window; stash it for the
                            // next real recv instead of dropping it, and
                            // stop probing.
                            vela_obs::warn!(
                                "clock probe drained unexpected frame from worker {i}: \
                                 {msg:?}; stashing and aborting probes"
                            );
                            self.pending.push_back((i, msg));
                            return;
                        }
                        Err(_) => break 'rounds,
                    }
                };
                let t4 = vela_obs::now_us();
                let rtt = (t4 - t1).saturating_sub(t3.saturating_sub(t2));
                let offset = ((t2 as i64 - t1 as i64) + (t3 as i64 - t4 as i64)) / 2;
                if best.map_or(true, |(r, _)| rtt < r) {
                    best = Some((rtt, offset));
                }
            }
            if let Some((rtt, offset)) = best {
                vela_obs::clock_sample(index, offset, rtt);
            }
        }
    }

    /// Closes all links (best effort).
    pub fn shutdown(&mut self) {
        self.backend.shutdown();
    }
}

/// Worker-side endpoint.
///
/// Carries no ledger: traffic accounting is the master's job (see the
/// module docs), which is what lets a port live in a different process.
#[derive(Debug)]
pub struct WorkerPort {
    /// This worker's index in the master's worker list.
    pub index: usize,
    /// The device this worker runs on.
    pub device: DeviceId,
    backend: Box<dyn PortBackend>,
}

impl WorkerPort {
    /// Wraps `backend` as the endpoint of worker `index` on `device`.
    pub fn new(backend: Box<dyn PortBackend>, index: usize, device: DeviceId) -> Self {
        WorkerPort {
            index,
            device,
            backend,
        }
    }

    /// Blocks for the next raw control frame (see
    /// [`MasterHub::send_control`]).
    pub fn recv_control(&mut self) -> Result<Vec<u8>, TransportError> {
        self.backend.recv()
    }

    /// Blocks for the next message from the master.
    pub fn recv(&mut self) -> Result<Message, TransportError> {
        Ok(Message::decode(&self.backend.recv()?)?)
    }

    /// Returns a message if one is ready, `None` otherwise.
    pub fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        match self.backend.try_recv()? {
            Some(frame) => Ok(Some(Message::decode(&frame)?)),
            None => Ok(None),
        }
    }

    /// Like [`recv`](Self::recv) with a deadline.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Message, TransportError> {
        Ok(Message::decode(&self.backend.recv_timeout(timeout)?)?)
    }

    /// Sends a message to the master.
    pub fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        self.backend.send(msg.encode())
    }

    /// Closes the link to the master (best effort).
    pub fn shutdown(&mut self) {
        self.backend.shutdown();
    }
}

/// Builds the in-process mpsc star between `master` and `workers`,
/// accounting all traffic in `ledger` — the original transport, now one
/// backend among several.
///
/// # Panics
/// Panics if `workers` is empty.
pub fn star(
    ledger: Arc<TrafficLedger>,
    master: DeviceId,
    workers: &[DeviceId],
) -> (MasterHub, Vec<WorkerPort>) {
    channel::channel_star(ledger, master, workers)
}

/// Builds the star for an in-process `config` (`Channel` or
/// `TcpThreads`). Process mode has an asymmetric construction (the hub
/// accepts, each worker process connects) and goes through
/// [`TcpStarBuilder`] / [`connect_worker`] instead.
///
/// # Panics
/// Panics if `workers` is empty or `config` is process mode.
pub fn build_star(
    config: TransportConfig,
    ledger: Arc<TrafficLedger>,
    master: DeviceId,
    workers: &[DeviceId],
) -> Result<(MasterHub, Vec<WorkerPort>), TransportError> {
    match config.mode {
        TransportMode::Channel => Ok(star(ledger, master, workers)),
        TransportMode::TcpThreads => tcp_star(ledger, master, workers),
        TransportMode::TcpProcesses => {
            panic!("process mode builds its star via TcpStarBuilder, not build_star")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use vela_cluster::Topology;

    fn setup() -> (Arc<TrafficLedger>, MasterHub, Vec<WorkerPort>) {
        let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let (hub, ports) = star(ledger.clone(), DeviceId(0), &workers);
        (ledger, hub, ports)
    }

    #[test]
    fn messages_flow_both_ways() {
        let (_, mut hub, mut ports) = setup();
        hub.send(2, &Message::StepBegin { step: 1 }).unwrap();
        assert_eq!(ports[2].recv().unwrap(), Message::StepBegin { step: 1 });
        ports[4].send(&Message::StepDone).unwrap();
        let (idx, msg) = hub.recv().unwrap();
        assert_eq!(idx, 4);
        assert_eq!(msg, Message::StepDone);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let (_, mut hub, mut ports) = setup();
        hub.broadcast(&Message::StepEnd).unwrap();
        for port in &mut ports {
            assert_eq!(port.recv().unwrap(), Message::StepEnd);
        }
    }

    #[test]
    fn traffic_is_recorded_per_link() {
        let (ledger, mut hub, mut ports) = setup();
        let msg = Message::TokenBatch {
            block: 0,
            expert: 0,
            payload: Payload::Virtual {
                rows: 10,
                bytes_per_token: 100,
            },
        };
        hub.send(0, &msg).unwrap(); // master → worker on the same device: free
        hub.send(1, &msg).unwrap(); // same node: internal
        hub.send(2, &msg).unwrap(); // cross-node: external
        ports[2].send(&msg).unwrap(); // reply crosses back...
        hub.recv().unwrap(); // ...accounted when the master receives it
        let t = ledger.peek();
        assert_eq!(t.internal_bytes, msg.accounted_bytes());
        assert_eq!(t.external_total(), 2 * msg.accounted_bytes());
    }

    #[test]
    fn uplink_bytes_are_accounted_at_master_recv() {
        // The worker side carries no ledger (it may live in another
        // process); nothing is recorded until the master drains the
        // message.
        let (ledger, mut hub, mut ports) = setup();
        ports[2].send(&Message::StepDone).unwrap();
        assert_eq!(ledger.peek().external_total(), 0);
        hub.recv().unwrap();
        assert_eq!(
            ledger.peek().external_total(),
            Message::StepDone.accounted_bytes()
        );
    }

    #[test]
    fn worker_metadata() {
        let (_, hub, ports) = setup();
        assert_eq!(hub.worker_count(), 6);
        assert_eq!(hub.device(), DeviceId(0));
        assert_eq!(hub.worker_device(3), DeviceId(3));
        assert_eq!(hub.transport(), "channel");
        assert_eq!(ports[5].index, 5);
        assert_eq!(ports[5].device, DeviceId(5));
    }

    #[test]
    fn cross_thread_usage() {
        let (_, mut hub, mut ports) = setup();
        let mut port = ports.remove(0);
        let handle = std::thread::spawn(move || {
            let msg = port.recv().unwrap();
            port.send(&Message::StepDone).unwrap();
            msg
        });
        hub.send(0, &Message::StepBegin { step: 9 }).unwrap();
        let (idx, reply) = hub.recv().unwrap();
        assert_eq!((idx, reply), (0, Message::StepDone));
        assert_eq!(handle.join().unwrap(), Message::StepBegin { step: 9 });
    }

    #[test]
    fn disconnect_is_an_error_not_a_panic() {
        let (_, mut hub, ports) = setup();
        drop(ports);
        assert!(matches!(hub.recv(), Err(TransportError::Disconnected)));
        assert!(matches!(
            hub.send(0, &Message::StepEnd),
            Err(TransportError::Disconnected)
        ));
    }

    #[test]
    fn recv_timeout_expires_cleanly() {
        let (_, mut hub, mut ports) = setup();
        assert!(matches!(
            hub.recv_timeout(Duration::from_millis(10)),
            Err(TransportError::Timeout)
        ));
        assert!(matches!(
            ports[0].recv_timeout(Duration::from_millis(10)),
            Err(TransportError::Timeout)
        ));
        assert!(ports[0].try_recv().unwrap().is_none());
    }

    #[test]
    fn frames_are_counted_per_wire_frame() {
        let (_, mut hub, mut ports) = setup();
        assert_eq!(hub.frame_counts(), (0, 0));
        hub.broadcast(&Message::StepEnd).unwrap();
        for port in &mut ports {
            port.recv().unwrap();
            port.send(&Message::StepDone).unwrap();
        }
        for _ in 0..ports.len() {
            hub.recv().unwrap();
        }
        assert_eq!(hub.frame_counts(), (6, 6));
    }

    #[test]
    fn exchange_config_constructors() {
        // Pure constructors only — env vars are process-global.
        let d = ExchangeConfig::default();
        assert!(d.coalesce);
        assert_eq!(d.microbatch, Microbatch::Fixed(1));
        assert_eq!(d.depth, 2);
        let p = ExchangeConfig::per_batch();
        assert!(!p.coalesce);
        assert_eq!(p.microbatch, Microbatch::Fixed(1));
        assert_eq!(p.depth, 1);
        let c = ExchangeConfig::chunked(4);
        assert!(c.coalesce);
        assert_eq!(c.microbatch, Microbatch::Fixed(4));
        assert_eq!(c.depth, 2);
        assert_eq!(d.wire, WireFormat::Legacy);
        assert_eq!(d.quant, Quant::Off);
        let q = ExchangeConfig::packed(Quant::Int8);
        assert_eq!(q.wire, WireFormat::Packed);
        assert!(q.quantized());
        assert!(!ExchangeConfig::packed(Quant::Off).quantized());
        // int8 without packed framing never engages.
        assert!(!d.with_wire(WireFormat::Legacy, Quant::Int8).quantized());
        assert_eq!(Microbatch::Fixed(4).label(), "4");
        assert_eq!(Microbatch::Auto.label(), "auto");
        assert_eq!(Microbatch::Fixed(4).fixed(), Some(4));
        assert_eq!(Microbatch::Auto.fixed(), None);
        assert_eq!(WireFormat::Packed.label(), "packed");
        assert_eq!(Quant::Int8.label(), "int8");
    }

    #[test]
    fn wire_stats_split_header_from_payload_per_kind() {
        let (_, mut hub, mut ports) = setup();
        let t = vela_tensor::Tensor::ones((2, 3));
        let msg = Message::TokenBatch {
            block: 0,
            expert: 0,
            payload: Payload::from_tensor(&t),
        };
        hub.send(1, &msg).unwrap();
        let w = hub.wire_stats();
        assert_eq!(w.dispatch_payload, 24);
        assert_eq!(w.dispatch_header, msg.encode().len() as u64 - 24);
        assert_eq!(w.result_header + w.result_payload, 0);

        ports[1].recv().unwrap();
        ports[1]
            .send(&Message::ExpertResult {
                block: 0,
                expert: 0,
                payload: Payload::from_tensor(&t),
            })
            .unwrap();
        hub.recv().unwrap();
        let w = hub.wire_stats();
        assert_eq!(w.result_payload, 24);
        assert!(w.result_header > 0);

        hub.send(
            2,
            &Message::ExpertState {
                block: 0,
                expert: 0,
                data: vec![7; 100],
            },
        )
        .unwrap();
        hub.send(2, &Message::StepEnd).unwrap();
        let w = hub.wire_stats();
        assert_eq!(w.expert_state_payload, 100);
        assert_eq!(w.expert_state_header, 17);
        assert_eq!(w.control, 1);
        assert_eq!(
            w.total(),
            w.dispatch_total()
                + w.result_header
                + w.result_payload
                + w.expert_state_header
                + w.expert_state_payload
                + w.control
        );
    }

    #[test]
    fn env_knob_selects_transport() {
        // Pure constructors only — env vars are process-global, so the
        // parse itself is tested through explicit configs.
        assert_eq!(TransportConfig::default().label(), "channel");
        assert_eq!(TransportConfig::tcp_threads().label(), "tcp-threads");
        assert_eq!(TransportConfig::tcp_processes().label(), "tcp");
        assert!(TransportConfig::tcp_processes().is_process_mode());
        assert!(!TransportConfig::channel().is_process_mode());
    }
}

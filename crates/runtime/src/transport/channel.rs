//! The in-process `std::sync::mpsc` star — the original transport,
//! re-expressed as a [`HubBackend`]/[`PortBackend`] pair.
//!
//! Frames never leave the process: the "wire" is the encoded `Vec<u8>`
//! itself, moved through a channel without ever being copied. Disconnection maps onto channel hang-up, so a dead
//! worker thread surfaces as [`TransportError::Disconnected`] rather than
//! a panic.
//!
//! The full-duplex contract the TCP hub earns with per-link writer
//! threads holds here for free: an mpsc `send` never blocks on the
//! receiver, so the master can always keep dispatching while replies
//! queue in its inbox. No extra threads are needed.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

use vela_cluster::{DeviceId, TrafficLedger};

use super::{HubBackend, MasterHub, PortBackend, TransportError, WorkerPort};

/// Master side: one sender per worker, one shared inbox.
#[derive(Debug)]
struct ChannelHub {
    to_workers: Vec<Sender<Vec<u8>>>,
    inbox: Receiver<(usize, Vec<u8>)>,
}

/// Worker side: a receiver for the downlink, the shared inbox sender for
/// the uplink (tagged with this worker's index).
#[derive(Debug)]
struct ChannelPort {
    rx: Receiver<Vec<u8>>,
    up: Sender<(usize, Vec<u8>)>,
    index: usize,
}

impl HubBackend for ChannelHub {
    fn send(&mut self, index: usize, frame: Vec<u8>) -> Result<(), TransportError> {
        self.to_workers[index]
            .send(frame)
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&mut self) -> Result<(usize, Vec<u8>), TransportError> {
        self.inbox.recv().map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<(usize, Vec<u8>), TransportError> {
        self.inbox.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })
    }

    fn shutdown(&mut self) {
        // Channels close when their endpoints drop; nothing to do eagerly.
    }
}

impl PortBackend for ChannelPort {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), TransportError> {
        self.up
            .send((self.index, frame))
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })
    }

    fn shutdown(&mut self) {}
}

/// Builds the mpsc star between `master` and `workers`, accounting all
/// traffic in `ledger`.
///
/// # Panics
/// Panics if `workers` is empty.
pub fn channel_star(
    ledger: Arc<TrafficLedger>,
    master: DeviceId,
    workers: &[DeviceId],
) -> (MasterHub, Vec<WorkerPort>) {
    assert!(!workers.is_empty(), "star needs at least one worker");
    let (up_tx, up_rx) = channel();
    let mut to_workers = Vec::with_capacity(workers.len());
    let mut ports = Vec::with_capacity(workers.len());
    for (index, &dev) in workers.iter().enumerate() {
        let (down_tx, down_rx) = channel();
        to_workers.push(down_tx);
        ports.push(WorkerPort::new(
            Box::new(ChannelPort {
                rx: down_rx,
                up: up_tx.clone(),
                index,
            }),
            index,
            dev,
        ));
    }
    let hub = MasterHub::new(
        Box::new(ChannelHub {
            to_workers,
            inbox: up_rx,
        }),
        ledger,
        master,
        workers.to_vec(),
        "channel",
    );
    (hub, ports)
}

//! Loopback TCP transport over `std::net`.
//!
//! ## Frame format
//!
//! Every [`Message`](crate::Message) frame is shipped as
//!
//! ```text
//! +----------------+----------------------+
//! | u32 BE length  |  length bytes        |
//! +----------------+----------------------+
//! ```
//!
//! i.e. the encoded message preceded by its byte count in network order.
//! Lengths above [`MAX_FRAME`] are rejected before any allocation.
//!
//! ## Connect handshake
//!
//! The master binds first ([`TcpStarBuilder::bind`]) and accepts; each
//! worker dials in ([`connect_worker`]) with bounded-backoff retry and
//! introduces itself with a 16-byte hello (`"VELW"` + `u32` worker index +
//! `u64` device id). The master validates index and device against its
//! expected roster and acknowledges with `"VELM"`; anything else (bad
//! magic, duplicate index, a stray or self-connected socket) is dropped
//! and the worker retries. Only an acknowledged connection becomes a link.
//!
//! After the ack, while the stream is still quiet, the pair runs
//! [`CLOCK_PROBES`] NTP-style clock probe rounds: the master writes its
//! send time `t1` (8 bytes BE), the worker answers with its receive and
//! reply times `(t2, t3)` (16 bytes BE), and the master notes its receive
//! time `t4`. The minimum-RTT round yields the worker's clock offset
//! (`((t2-t1)+(t3-t4))/2`, worker-minus-master) which is recorded via
//! [`vela_obs::clock_sample`] so worker trace timestamps can be rebased
//! onto the master timeline. The probe exchange is an unconditional part
//! of the handshake — both sides always run it, so the protocol never
//! depends on either process's tracing configuration.
//!
//! ## Shutdown
//!
//! Closing is a socket-level FIN in both directions
//! (`TcpStream::shutdown(Both)`): the peer's next read observes EOF and
//! surfaces [`TransportError::Disconnected`]. The hub joins its reader
//! threads so no thread outlives an explicit shutdown.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vela_cluster::{DeviceId, TrafficLedger};

use super::{HubBackend, MasterHub, PortBackend, TransportError, WorkerPort};
use crate::wire::{ByteReader, ByteWriter, WireError};

/// Upper bound on a single frame; a length above this is treated as
/// corruption, not an allocation request.
pub const MAX_FRAME: usize = 1 << 30;

const HELLO_MAGIC: &[u8; 4] = b"VELW";
const ACK_MAGIC: &[u8; 4] = b"VELM";
const HELLO_LEN: usize = 16;

/// Clock probe rounds run after the connect ack. The best (minimum-RTT)
/// round wins, so a few rounds are enough to dodge scheduler noise.
pub const CLOCK_PROBES: usize = 8;

/// Default budget for a worker to reach the master.
pub const CONNECT_DEADLINE: Duration = Duration::from_secs(10);
/// Default budget for the master to collect all workers.
pub const ACCEPT_DEADLINE: Duration = Duration::from_secs(10);

/// Depth of each per-link writer queue, in frames. Deep enough to absorb
/// a full block-pass of dispatches (one coalesced group, or tens of
/// per-batch frames) without blocking the broker; shallow enough that a
/// stalled worker exerts backpressure instead of buffering a whole run.
pub const WRITER_QUEUE_FRAMES: usize = 64;

fn frame_too_big(len: u64) -> TransportError {
    TransportError::Wire(WireError::BadLength {
        what: "tcp frame",
        declared: len,
        available: MAX_FRAME,
    })
}

fn write_frame(sock: &mut TcpStream, frame: &[u8]) -> Result<(), TransportError> {
    sock.write_all(&(frame.len() as u32).to_be_bytes())?;
    sock.write_all(frame)?;
    Ok(())
}

/// Accumulates raw socket bytes and extracts complete frames. Keeping the
/// partial bytes here (not in the socket) is what makes timeouts safe: a
/// read that deadlines mid-frame leaves the prefix buffered, and the next
/// call resumes exactly where the stream stopped.
#[derive(Debug, Default)]
struct FrameBuf {
    pending: Vec<u8>,
}

impl FrameBuf {
    /// Pops one complete frame if the buffer holds one.
    fn extract(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        if self.pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(self.pending[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(frame_too_big(len as u64));
        }
        if self.pending.len() < 4 + len {
            return Ok(None);
        }
        let frame = self.pending[4..4 + len].to_vec();
        self.pending.drain(..4 + len);
        Ok(Some(frame))
    }
}

fn is_wait(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Worker-side endpoint: one socket plus a reassembly buffer.
#[derive(Debug)]
struct TcpPort {
    sock: TcpStream,
    buf: FrameBuf,
}

impl TcpPort {
    /// Reads some bytes into the buffer; `Ok(())` means progress was made.
    fn fill(&mut self) -> Result<(), std::io::Error> {
        let mut tmp = [0u8; 64 * 1024];
        let n = self.sock.read(&mut tmp)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        self.buf.pending.extend_from_slice(&tmp[..n]);
        Ok(())
    }
}

impl PortBackend for TcpPort {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), TransportError> {
        write_frame(&mut self.sock, &frame)
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.sock.set_read_timeout(None)?;
        loop {
            if let Some(frame) = self.buf.extract()? {
                return Ok(frame);
            }
            self.fill()?;
        }
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        if let Some(frame) = self.buf.extract()? {
            return Ok(Some(frame));
        }
        self.sock.set_nonblocking(true)?;
        let outcome = loop {
            match self.fill() {
                Ok(()) => match self.buf.extract() {
                    Ok(Some(frame)) => break Ok(Some(frame)),
                    Ok(None) => continue,
                    Err(e) => break Err(e),
                },
                Err(e) if is_wait(&e) => break Ok(None),
                Err(e) => break Err(e.into()),
            }
        };
        self.sock.set_nonblocking(false)?;
        outcome
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(frame) = self.buf.extract()? {
                self.sock.set_read_timeout(None)?;
                return Ok(frame);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                self.sock.set_read_timeout(None)?;
                return Err(TransportError::Timeout);
            }
            self.sock.set_read_timeout(Some(left))?;
            match self.fill() {
                Ok(()) => {}
                Err(e) if is_wait(&e) => {
                    self.sock.set_read_timeout(None)?;
                    return Err(TransportError::Timeout);
                }
                Err(e) => {
                    let _ = self.sock.set_read_timeout(None);
                    return Err(e.into());
                }
            }
        }
    }

    fn shutdown(&mut self) {
        let _ = self.sock.shutdown(Shutdown::Both);
    }
}

/// Master-side endpoint: a writer *thread* per worker plus one inbox fed
/// by per-socket reader threads, mirroring the mpsc hub's shared-receiver
/// shape so `recv` stays a single blocking pop regardless of fan-in.
///
/// `send` only enqueues the frame on the link's bounded queue
/// ([`WRITER_QUEUE_FRAMES`]); the writer thread does the actual socket
/// write. That makes the hub full-duplex: the broker can start draining
/// replies from early dispatches while later dispatches are still being
/// written out. A write failure tears the writer down and surfaces as
/// [`TransportError::Disconnected`] on the next `send` to that link.
#[derive(Debug)]
struct TcpHub {
    writers: Vec<LinkWriter>,
    sockets: Vec<TcpStream>,
    inbox: Receiver<(usize, Result<Vec<u8>, TransportError>)>,
    readers: Vec<JoinHandle<()>>,
}

/// One link's outbound half: the bounded queue into its writer thread.
#[derive(Debug)]
struct LinkWriter {
    queue: Option<SyncSender<Vec<u8>>>,
    thread: Option<JoinHandle<()>>,
}

impl LinkWriter {
    fn spawn(index: usize, mut sock: TcpStream) -> LinkWriter {
        let (tx, rx) = sync_channel::<Vec<u8>>(WRITER_QUEUE_FRAMES);
        let thread = std::thread::Builder::new()
            .name(format!("tcp-hub-writer-{index}"))
            .spawn(move || {
                // Exiting on error drops `rx`; the hub sees the closed
                // queue on its next send to this link.
                for frame in rx {
                    if let Err(e) = write_frame(&mut sock, &frame) {
                        vela_obs::warn!("writer for worker {index} failed: {e}");
                        return;
                    }
                }
            })
            .expect("failed to spawn hub writer");
        LinkWriter {
            queue: Some(tx),
            thread: Some(thread),
        }
    }

    fn enqueue(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        match &self.queue {
            // A full queue blocks here — bounded backpressure, not
            // unbounded buffering.
            Some(q) => q.send(frame).map_err(|_| TransportError::Disconnected),
            None => Err(TransportError::Disconnected),
        }
    }

    /// Drops the queue and joins the thread, flushing queued frames.
    fn finish(&mut self) {
        drop(self.queue.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn reader_loop(
    index: usize,
    mut sock: TcpStream,
    tx: Sender<(usize, Result<Vec<u8>, TransportError>)>,
) {
    loop {
        let mut len_buf = [0u8; 4];
        if let Err(e) = sock.read_exact(&mut len_buf) {
            let _ = tx.send((index, Err(e.into())));
            return;
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            let _ = tx.send((index, Err(frame_too_big(len as u64))));
            return;
        }
        let mut frame = vec![0u8; len];
        if let Err(e) = sock.read_exact(&mut frame) {
            let _ = tx.send((index, Err(e.into())));
            return;
        }
        if tx.send((index, Ok(frame))).is_err() {
            return; // hub dropped
        }
    }
}

impl TcpHub {
    fn close_sockets(&mut self) {
        for sock in &self.sockets {
            let _ = sock.shutdown(Shutdown::Both);
        }
    }
}

impl HubBackend for TcpHub {
    fn send(&mut self, index: usize, frame: Vec<u8>) -> Result<(), TransportError> {
        self.writers[index].enqueue(frame)
    }

    fn recv(&mut self) -> Result<(usize, Vec<u8>), TransportError> {
        let (index, frame) = self
            .inbox
            .recv()
            .map_err(|_| TransportError::Disconnected)?;
        Ok((index, frame?))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<(usize, Vec<u8>), TransportError> {
        let (index, frame) = self.inbox.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })?;
        Ok((index, frame?))
    }

    fn shutdown(&mut self) {
        // Flush and retire the writers first so queued frames (e.g. a
        // Shutdown broadcast) reach the wire before the FIN.
        for writer in &mut self.writers {
            writer.finish();
        }
        self.close_sockets();
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpHub {
    fn drop(&mut self) {
        // Closing the queues lets the writers drain and exit; closing the
        // sockets unblocks any reader still parked in read() (EOF).
        for writer in &mut self.writers {
            writer.finish();
        }
        self.close_sockets();
    }
}

/// Bound-but-not-yet-connected master side of a TCP star. Binding before
/// any worker is spawned guarantees the advertised address is listening,
/// so worker connect retries are a resilience measure, not a required
/// startup dance.
#[derive(Debug)]
pub struct TcpStarBuilder {
    listener: TcpListener,
    addr: SocketAddr,
    ledger: Arc<TrafficLedger>,
    master: DeviceId,
    workers: Vec<DeviceId>,
}

impl TcpStarBuilder {
    /// Binds a loopback listener for a star between `master` and
    /// `workers`.
    ///
    /// # Panics
    /// Panics if `workers` is empty.
    pub fn bind(
        ledger: Arc<TrafficLedger>,
        master: DeviceId,
        workers: &[DeviceId],
    ) -> Result<Self, TransportError> {
        assert!(!workers.is_empty(), "star needs at least one worker");
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        Ok(TcpStarBuilder {
            listener,
            addr,
            ledger,
            master,
            workers: workers.to_vec(),
        })
    }

    /// The address workers must dial (pass to [`connect_worker`] or the
    /// `vela_worker` binary via `VELA_WORKER_CONNECT`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts and validates one connection per worker (in any order),
    /// then assembles the hub. Sockets that fail the hello handshake are
    /// dropped and accepting continues until `deadline` elapses.
    pub fn accept_workers(self, deadline: Duration) -> Result<MasterHub, TransportError> {
        let until = Instant::now() + deadline;
        let n = self.workers.len();
        let mut slots: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut connected = 0usize;
        self.listener.set_nonblocking(true)?;
        while connected < n {
            match self.listener.accept() {
                Ok((sock, _)) => match self.admit(sock) {
                    Ok((index, sock)) => {
                        if slots[index].is_some() {
                            vela_obs::warn!("duplicate connection for worker {index}, dropping");
                            continue;
                        }
                        slots[index] = Some(sock);
                        connected += 1;
                    }
                    Err(why) => {
                        vela_obs::warn!("rejected connection: {why}");
                    }
                },
                Err(e) if is_wait(&e) => {
                    if Instant::now() >= until {
                        return Err(TransportError::Handshake(format!(
                            "only {connected}/{n} workers connected within {deadline:?}"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e.into()),
            }
        }

        let (tx, inbox) = channel();
        let mut writers = Vec::with_capacity(n);
        let mut sockets = Vec::with_capacity(n);
        let mut readers = Vec::with_capacity(n);
        for (index, slot) in slots.into_iter().enumerate() {
            let sock = slot.expect("all slots filled");
            let reader = sock.try_clone().map_err(TransportError::Io)?;
            let writer = sock.try_clone().map_err(TransportError::Io)?;
            let tx = tx.clone();
            readers.push(
                std::thread::Builder::new()
                    .name(format!("tcp-hub-reader-{index}"))
                    .spawn(move || reader_loop(index, reader, tx))
                    .expect("failed to spawn hub reader"),
            );
            writers.push(LinkWriter::spawn(index, writer));
            sockets.push(sock);
        }
        Ok(MasterHub::new(
            Box::new(TcpHub {
                writers,
                sockets,
                inbox,
                readers,
            }),
            self.ledger,
            self.master,
            self.workers,
            "tcp",
        ))
    }

    /// Validates one incoming socket's hello; returns its worker index.
    fn admit(&self, sock: TcpStream) -> Result<(usize, TcpStream), String> {
        let mut sock = sock;
        sock.set_nonblocking(false).map_err(|e| e.to_string())?;
        sock.set_read_timeout(Some(Duration::from_secs(2)))
            .map_err(|e| e.to_string())?;
        let mut hello = [0u8; HELLO_LEN];
        sock.read_exact(&mut hello).map_err(|e| e.to_string())?;
        if &hello[..4] != HELLO_MAGIC {
            return Err(format!("bad hello magic {:?}", &hello[..4]));
        }
        let mut r = ByteReader::new(&hello[4..]);
        let index = r.get_u32().expect("fixed-size hello") as usize;
        let device = r.get_u64().expect("fixed-size hello") as usize;
        if index >= self.workers.len() {
            return Err(format!(
                "worker index {index} out of range (expected < {})",
                self.workers.len()
            ));
        }
        if self.workers[index] != DeviceId(device) {
            return Err(format!(
                "worker {index} reported device {device} but roster says {:?}",
                self.workers[index]
            ));
        }
        sock.write_all(ACK_MAGIC).map_err(|e| e.to_string())?;
        sock.set_nodelay(true).map_err(|e| e.to_string())?;
        probe_clock_master(&mut sock, index).map_err(|e| e.to_string())?;
        sock.set_read_timeout(None).map_err(|e| e.to_string())?;
        Ok((index, sock))
    }
}

/// Master half of the handshake clock probe: [`CLOCK_PROBES`] rounds of
/// `t1 -> (t2, t3)`, keeping the minimum-RTT round's offset estimate.
/// Runs while the admit read timeout is still armed, so a stalled peer
/// fails the handshake instead of wedging accept.
fn probe_clock_master(sock: &mut TcpStream, index: usize) -> Result<(), std::io::Error> {
    let mut best: Option<(u64, i64)> = None;
    for _ in 0..CLOCK_PROBES {
        let t1 = vela_obs::now_us();
        sock.write_all(&t1.to_be_bytes())?;
        let mut reply = [0u8; 16];
        sock.read_exact(&mut reply)?;
        let t4 = vela_obs::now_us();
        let t2 = u64::from_be_bytes(reply[..8].try_into().unwrap());
        let t3 = u64::from_be_bytes(reply[8..].try_into().unwrap());
        let rtt = (t4 - t1).saturating_sub(t3.saturating_sub(t2));
        let offset = ((t2 as i64 - t1 as i64) + (t3 as i64 - t4 as i64)) / 2;
        if best.map_or(true, |(r, _)| rtt < r) {
            best = Some((rtt, offset));
        }
    }
    if let Some((rtt, offset)) = best {
        vela_obs::clock_sample(index, offset, rtt);
    }
    Ok(())
}

/// Dials the master at `addr` as worker `index` on `device`, retrying
/// with bounded backoff (10 ms doubling to 400 ms) until `deadline`
/// elapses. A connection that closes before the master's ack — a refused
/// dial, a stray peer, or the loopback self-connect artifact — counts as
/// one failed attempt and is retried.
pub fn connect_worker_with_deadline(
    addr: SocketAddr,
    index: usize,
    device: DeviceId,
    deadline: Duration,
) -> Result<WorkerPort, TransportError> {
    let until = Instant::now() + deadline;
    let mut backoff = Duration::from_millis(10);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let last_err = match try_connect(addr, index, device) {
            Ok(sock) => {
                if attempts > 1 {
                    vela_obs::info!("worker {index} connected after {attempts} attempts");
                }
                return Ok(WorkerPort::new(
                    Box::new(TcpPort {
                        sock,
                        buf: FrameBuf::default(),
                    }),
                    index,
                    device,
                ));
            }
            Err(e) => e,
        };
        if Instant::now() + backoff >= until {
            return Err(TransportError::Handshake(format!(
                "worker {index} could not reach {addr} after {attempts} attempts: {last_err}"
            )));
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_millis(400));
    }
}

/// [`connect_worker_with_deadline`] with the default
/// [`CONNECT_DEADLINE`].
pub fn connect_worker(
    addr: SocketAddr,
    index: usize,
    device: DeviceId,
) -> Result<WorkerPort, TransportError> {
    connect_worker_with_deadline(addr, index, device, CONNECT_DEADLINE)
}

fn try_connect(addr: SocketAddr, index: usize, device: DeviceId) -> Result<TcpStream, String> {
    let mut sock =
        TcpStream::connect_timeout(&addr, Duration::from_secs(2)).map_err(|e| e.to_string())?;
    let mut hello = ByteWriter::with_capacity(HELLO_LEN);
    hello.put_slice(HELLO_MAGIC);
    hello.put_u32(index as u32);
    hello.put_u64(device.0 as u64);
    sock.write_all(&hello.into_vec())
        .map_err(|e| e.to_string())?;
    sock.set_read_timeout(Some(Duration::from_secs(2)))
        .map_err(|e| e.to_string())?;
    let mut ack = [0u8; 4];
    sock.read_exact(&mut ack).map_err(|e| e.to_string())?;
    if &ack != ACK_MAGIC {
        return Err(format!("bad ack magic {ack:?}"));
    }
    sock.set_nodelay(true).map_err(|e| e.to_string())?;
    // Worker half of the handshake clock probe: answer each of the
    // master's t1 probes with our receive/reply times (t2, t3).
    for _ in 0..CLOCK_PROBES {
        let mut probe = [0u8; 8];
        sock.read_exact(&mut probe).map_err(|e| e.to_string())?;
        let t2 = vela_obs::now_us();
        let mut reply = [0u8; 16];
        reply[..8].copy_from_slice(&t2.to_be_bytes());
        reply[8..].copy_from_slice(&vela_obs::now_us().to_be_bytes());
        sock.write_all(&reply).map_err(|e| e.to_string())?;
    }
    sock.set_read_timeout(None).map_err(|e| e.to_string())?;
    Ok(sock)
}

/// Builds a complete TCP star *within this process*: the hub accepts on a
/// background thread while each worker port dials in. This is the
/// hermetic `tcp-threads` mode — every byte crosses a real loopback
/// socket, but workers stay threads, so tests need no child binaries.
///
/// # Panics
/// Panics if `workers` is empty.
pub fn tcp_star(
    ledger: Arc<TrafficLedger>,
    master: DeviceId,
    workers: &[DeviceId],
) -> Result<(MasterHub, Vec<WorkerPort>), TransportError> {
    let builder = TcpStarBuilder::bind(ledger, master, workers)?;
    let addr = builder.addr();
    let accept = std::thread::Builder::new()
        .name("tcp-star-accept".into())
        .spawn(move || builder.accept_workers(ACCEPT_DEADLINE))
        .expect("failed to spawn accept thread");
    let mut ports = Vec::with_capacity(workers.len());
    for (index, &device) in workers.iter().enumerate() {
        ports.push(connect_worker(addr, index, device)?);
    }
    let hub = accept.join().expect("accept thread panicked")?;
    Ok((hub, ports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, Payload};
    use vela_cluster::Topology;

    fn setup() -> (Arc<TrafficLedger>, MasterHub, Vec<WorkerPort>) {
        let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let workers: Vec<DeviceId> = (1..4).map(DeviceId).collect();
        let (hub, ports) = tcp_star(ledger.clone(), DeviceId(0), &workers).unwrap();
        (ledger, hub, ports)
    }

    #[test]
    fn frames_flow_both_ways_over_loopback() {
        let (_, mut hub, mut ports) = setup();
        hub.send(1, &Message::StepBegin { step: 3 }).unwrap();
        assert_eq!(ports[1].recv().unwrap(), Message::StepBegin { step: 3 });
        ports[2].send(&Message::StepDone).unwrap();
        let (idx, msg) = hub.recv().unwrap();
        assert_eq!((idx, msg), (2, Message::StepDone));
        hub.shutdown();
    }

    #[test]
    fn large_real_payload_roundtrips() {
        let (_, mut hub, mut ports) = setup();
        let data: Vec<f32> = (0..40_000).map(|i| i as f32 * 0.5 - 7.0).collect();
        let msg = Message::TokenBatch {
            block: 1,
            expert: 2,
            payload: Payload::Real {
                rows: 200,
                cols: 200,
                data,
            },
        };
        hub.send(0, &msg).unwrap();
        assert_eq!(ports[0].recv().unwrap(), msg);
        hub.shutdown();
    }

    #[test]
    fn ledger_accounts_identically_to_channel() {
        let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let msg = Message::TokenBatch {
            block: 0,
            expert: 0,
            payload: Payload::Virtual {
                rows: 10,
                bytes_per_token: 100,
            },
        };
        let drive = |mut hub: MasterHub, mut ports: Vec<WorkerPort>| {
            hub.send(0, &msg).unwrap();
            hub.send(1, &msg).unwrap();
            hub.send(2, &msg).unwrap();
            ports[2].send(&msg).unwrap();
            hub.recv().unwrap();
            hub.shutdown();
        };
        let chan_ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let (hub, ports) = super::super::star(chan_ledger.clone(), DeviceId(0), &workers);
        drive(hub, ports);
        let tcp_ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let (hub, ports) = tcp_star(tcp_ledger.clone(), DeviceId(0), &workers).unwrap();
        drive(hub, ports);
        let (c, t) = (chan_ledger.peek(), tcp_ledger.peek());
        assert_eq!(c.internal_bytes, t.internal_bytes);
        assert_eq!(c.external_total(), t.external_total());
    }

    #[test]
    fn timeout_mid_frame_does_not_corrupt_the_stream() {
        let (_, mut hub, mut ports) = setup();
        // Nothing sent yet: the port times out...
        assert!(matches!(
            ports[0].recv_timeout(Duration::from_millis(20)),
            Err(TransportError::Timeout)
        ));
        assert!(ports[0].try_recv().unwrap().is_none());
        // ...and the next full frame still parses cleanly.
        hub.send(0, &Message::StepBegin { step: 11 }).unwrap();
        assert_eq!(
            ports[0].recv_timeout(Duration::from_secs(5)).unwrap(),
            Message::StepBegin { step: 11 }
        );
        hub.shutdown();
    }

    #[test]
    fn master_disconnect_surfaces_as_error() {
        let (_, mut hub, mut ports) = setup();
        hub.shutdown();
        assert!(matches!(ports[0].recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn worker_disconnect_surfaces_as_error() {
        let (_, mut hub, mut ports) = setup();
        ports.remove(0).shutdown();
        // The hub eventually observes worker 0's EOF.
        loop {
            match hub.recv_timeout(Duration::from_secs(5)) {
                Err(TransportError::Disconnected) => break,
                Ok(_) => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        hub.shutdown();
    }

    #[test]
    fn connect_retries_until_master_binds() {
        // Reserve a port, release it, dial it while nothing listens, and
        // only then bind the real listener: the worker's bounded backoff
        // must carry it through the listener-less window.
        let probe = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let dialer = std::thread::spawn(move || {
            connect_worker_with_deadline(addr, 0, DeviceId(1), Duration::from_secs(10))
        });
        std::thread::sleep(Duration::from_millis(150));
        let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let builder = TcpStarBuilder {
            listener: TcpListener::bind(addr).expect("rebind reserved port"),
            addr,
            ledger,
            master: DeviceId(0),
            workers: vec![DeviceId(1)],
        };
        let mut hub = builder.accept_workers(Duration::from_secs(10)).unwrap();
        let mut port = dialer.join().unwrap().expect("retry should succeed");
        port.send(&Message::StepDone).unwrap();
        assert_eq!(hub.recv().unwrap(), (0, Message::StepDone));
        hub.shutdown();
    }

    #[test]
    fn retry_budget_is_bounded() {
        let probe = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let started = Instant::now();
        let err = connect_worker_with_deadline(addr, 0, DeviceId(1), Duration::from_millis(200))
            .unwrap_err();
        assert!(matches!(err, TransportError::Handshake(_)));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "retry must respect its deadline"
        );
    }

    #[test]
    fn stray_connections_are_rejected_without_poisoning_the_star() {
        let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let builder = TcpStarBuilder::bind(ledger, DeviceId(0), &[DeviceId(1)]).unwrap();
        let addr = builder.addr();
        let accept = std::thread::spawn(move || builder.accept_workers(Duration::from_secs(10)));
        // A stray peer with the wrong magic is dropped...
        let mut stray = TcpStream::connect(addr).unwrap();
        stray.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        drop(stray);
        // ...while the legitimate worker still gets through.
        let mut port = connect_worker(addr, 0, DeviceId(1)).unwrap();
        let mut hub = accept.join().unwrap().unwrap();
        port.send(&Message::StepDone).unwrap();
        assert_eq!(hub.recv().unwrap(), (0, Message::StepDone));
        hub.shutdown();
    }

    #[test]
    fn writer_queue_decouples_send_from_drain() {
        // The hub's send only enqueues; a port that reads nothing for a
        // while must not stall the master (up to the queue bound).
        let (_, mut hub, mut ports) = setup();
        for step in 0..40 {
            hub.send(0, &Message::StepBegin { step }).unwrap();
        }
        for step in 0..40 {
            assert_eq!(ports[0].recv().unwrap(), Message::StepBegin { step });
        }
        hub.shutdown();
    }

    #[test]
    fn queued_frames_are_flushed_on_shutdown() {
        // Shutdown joins the writer threads before closing sockets, so
        // frames accepted by send() always reach the wire.
        let (_, mut hub, mut ports) = setup();
        for step in 0..10 {
            hub.send(1, &Message::StepBegin { step }).unwrap();
        }
        hub.shutdown();
        for step in 0..10 {
            assert_eq!(ports[1].recv().unwrap(), Message::StepBegin { step });
        }
        assert!(matches!(ports[1].recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn oversized_frame_header_is_rejected() {
        let mut buf = FrameBuf::default();
        buf.pending.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            buf.extract(),
            Err(TransportError::Wire(WireError::BadLength { .. }))
        ));
    }
}

//! Minimal big-endian byte buffer primitives for the wire format.
//!
//! [`ByteWriter`] appends fixed-width integers/floats to a growable
//! `Vec<u8>`; [`ByteReader`] walks a received frame back. Both are in-tree
//! (no external `bytes` dependency) so the workspace builds with zero
//! network access, and both use network byte order so encoded frames are
//! stable across hosts.
//!
//! Decoding is fallible: frames may arrive over a real socket, so a short
//! or corrupted frame is an I/O condition ([`WireError`]), never a panic.

use std::fmt;

/// A malformed frame observed while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before the requested field.
    Underflow {
        /// Bytes the decoder asked for.
        wanted: usize,
        /// Bytes that were left.
        left: usize,
    },
    /// A tag/discriminant byte had no defined meaning.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A declared length is impossible (e.g. larger than the frame).
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The declared element/byte count.
        declared: u64,
        /// Bytes actually available.
        available: usize,
    },
    /// Decoding finished but bytes were left over.
    TrailingBytes {
        /// How many bytes were not consumed.
        left: usize,
    },
    /// A packed row-span table describes overlapping, gapped, or
    /// out-of-range row regions.
    BadSpan {
        /// What was being decoded.
        what: &'static str,
        /// Expert index of the offending span.
        expert: u32,
        /// The offset/count the span declared.
        declared: u32,
        /// What a dense, in-order region layout required instead.
        expected: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Underflow { wanted, left } => {
                write!(
                    f,
                    "wire frame underflow: wanted {wanted} bytes, {left} left"
                )
            }
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::BadLength {
                what,
                declared,
                available,
            } => write!(
                f,
                "implausible {what} length {declared} (frame has {available} bytes left)"
            ),
            WireError::TrailingBytes { left } => {
                write!(f, "frame has {left} trailing bytes after decoding")
            }
            WireError::BadSpan {
                what,
                expert,
                declared,
                expected,
            } => write!(
                f,
                "invalid {what} for expert {expert}: declared {declared}, dense layout requires \
                 {expected}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only big-endian encoder over a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` in big-endian order.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u32` in big-endian order.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u64` in big-endian order.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `f32` in big-endian IEEE-754 order.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a whole `f32` slice in big-endian IEEE-754 order: one
    /// reservation and a vectorizable conversion loop, bit-identical to
    /// calling [`put_f32`](Self::put_f32) per element. Tensor payloads
    /// (dispatches, gradient rows, optimizer moments) are megabytes — a
    /// push per value is measurable on the step critical path.
    pub fn put_f32s(&mut self, values: &[f32]) {
        let start = self.buf.len();
        self.buf.resize(start + values.len() * 4, 0);
        for (chunk, v) in self.buf[start..].chunks_exact_mut(4).zip(values) {
            chunk.copy_from_slice(&v.to_be_bytes());
        }
    }

    /// Appends raw bytes verbatim.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Finishes encoding, yielding the frame.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based big-endian decoder over a byte slice.
///
/// All getters return [`WireError::Underflow`] when the frame is short —
/// frames may come off a socket, so truncation is a runtime condition,
/// not a bug.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Succeeds iff the frame was consumed exactly.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            left => Err(WireError::TrailingBytes { left }),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Underflow {
                wanted: n,
                left: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Borrows the next `n` bytes of the frame without copying. Packed
    /// frames use this to hand decoded row regions out as slices.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a big-endian IEEE-754 `f32`.
    pub fn get_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads `n` big-endian IEEE-754 `f32`s with a single bounds check,
    /// bit-identical to `n` [`get_f32`](Self::get_f32) calls.
    pub fn get_f32s(&mut self, n: usize) -> Result<Vec<f32>, WireError> {
        Ok(self
            .take(n * 4)?
            .chunks_exact(4)
            .map(|c| f32::from_be_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    /// Reads exactly `out.len()` raw bytes into `out`.
    pub fn copy_to_slice(&mut self, out: &mut [u8]) -> Result<(), WireError> {
        out.copy_from_slice(self.take(out.len())?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = ByteWriter::with_capacity(32);
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(-1.5);
        w.put_slice(&[1, 2, 3]);
        let frame = w.into_vec();
        assert_eq!(frame.len(), 1 + 4 + 8 + 4 + 3);

        let mut r = ByteReader::new(&frame);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32().unwrap(), -1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail).unwrap();
        assert_eq!(tail, [1, 2, 3]);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.finish(), Ok(()));
    }

    #[test]
    fn encoding_is_big_endian() {
        let mut w = ByteWriter::default();
        w.put_u32(0x0102_0304);
        assert_eq!(w.into_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn f32_bits_survive_roundtrip() {
        for v in [0.0f32, -0.0, f32::MIN_POSITIVE, f32::INFINITY, 1e-30] {
            let mut w = ByteWriter::default();
            w.put_f32(v);
            let frame = w.into_vec();
            let got = ByteReader::new(&frame).get_f32().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn underflow_is_an_error_not_a_panic() {
        let err = ByteReader::new(&[1, 2]).get_u32().unwrap_err();
        assert_eq!(err, WireError::Underflow { wanted: 4, left: 2 });
        assert!(err.to_string().contains("underflow"));
    }

    #[test]
    fn finish_reports_trailing_bytes() {
        let mut r = ByteReader::new(&[9, 1, 2]);
        r.get_u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { left: 2 }));
    }
}

//! The Expert Manager worker process (§IV-A, Fig. 4).
//!
//! Each worker owns a disjoint shard of experts, executes forward/backward
//! requests from the master's broker, and runs its own optimizer at step
//! end — exactly the worker role in the paper's framework, where expert
//! optimization never leaves the hosting device.
//!
//! The same loop serves every transport: [`ExpertManager::spawn`] runs it
//! on a thread over any [`WorkerPort`], and the `vela_worker` binary runs
//! it in a separate OS process after receiving a [`WorkerBootstrap`] over
//! the control channel. A master disconnect is a *clean* exit — the loop
//! flushes its observability buffers and returns its shard instead of
//! aborting the process.

use std::collections::HashMap;
use std::thread::JoinHandle;

use vela_model::checkpoint;
use vela_model::provider::ExpertBatch;
use vela_model::{ExpertProvider, LocalExpertStore};
use vela_nn::optim::{AdamW, AdamWConfig};
use vela_nn::param::Module;
use vela_nn::swiglu::SwiGlu;
use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

use vela_obs::{FlowPhase, LazyCounter};

use crate::message::{
    chunk_expert_state, quantize_rows, ChunkAssembler, GroupItem, GroupPass, Message, PackedData,
    PackedGroup, PackedReply, Payload,
};
use crate::transport::{TransportError, WorkerPort};
use crate::wire::{ByteReader, ByteWriter, WireError};

/// Wall time spent inside [`serve_group`]/[`serve_packed`] — the
/// worker-compute term of the step-time attribution.
static SERVE_US: LazyCounter = LazyCounter::new("runtime.worker.serve_us");

/// The worker-side span wrapping one coalesced serve (+ its reply send).
const SPAN_SERVE: &str = "runtime.worker.serve";

/// Flattens an expert's trainable-parameter gradients into one row, in
/// `visit_params` order — the wire format of [`Message::GradState`].
pub(crate) fn expert_grads(ffn: &mut SwiGlu) -> Vec<f32> {
    let mut out = Vec::new();
    ffn.visit_params(&mut |p| {
        if p.is_trainable() {
            out.extend_from_slice(p.grad.as_slice());
        }
    });
    out
}

/// Installs a [`expert_grads`] row back into an expert's trainable
/// gradients, overwriting whatever the replica accumulated locally.
///
/// # Panics
/// Panics if the blob's length does not match the expert's trainable
/// parameter count — a protocol violation, like a corrupt checkpoint.
pub(crate) fn install_expert_grads(ffn: &mut SwiGlu, grads: &[f32]) {
    let mut cursor = 0;
    ffn.visit_params(&mut |p| {
        if p.is_trainable() {
            let g = p.grad.as_mut_slice();
            g.copy_from_slice(
                grads
                    .get(cursor..cursor + g.len())
                    .expect("gradient blob shorter than expert's trainable parameters"),
            );
            cursor += g.len();
        }
    });
    assert_eq!(
        cursor,
        grads.len(),
        "gradient blob longer than expert's trainable parameters"
    );
}

/// Flattens an expert's AdamW moment estimates into one row: for each
/// trainable parameter in `visit_params` order, the first-moment values
/// then the second-moment values. Parameters the optimizer has not
/// touched yet contribute zeros — exactly the state a lazily-initialized
/// entry would start from.
pub(crate) fn expert_moments(opt: &AdamW, ffn: &mut SwiGlu) -> Vec<f32> {
    let mut out = Vec::new();
    ffn.visit_params(&mut |p| {
        if !p.is_trainable() {
            return;
        }
        match opt.moments(p.name()) {
            Some((m, v)) => {
                out.extend_from_slice(m.as_slice());
                out.extend_from_slice(v.as_slice());
            }
            None => out.extend(std::iter::repeat(0.0).take(2 * p.value.len())),
        }
    });
    out
}

/// Installs an [`expert_moments`] row into the optimizer for an expert's
/// trainable parameters, replacing any existing entries.
///
/// # Panics
/// Panics if the blob's length does not match `2 ×` the expert's
/// trainable parameter count.
pub(crate) fn install_expert_moments(opt: &mut AdamW, ffn: &mut SwiGlu, moments: &[f32]) {
    let mut cursor = 0;
    ffn.visit_params(&mut |p| {
        if !p.is_trainable() {
            return;
        }
        let n = p.value.len();
        let m = moments
            .get(cursor..cursor + n)
            .expect("moment blob shorter than expert's trainable parameters");
        let v = moments
            .get(cursor + n..cursor + 2 * n)
            .expect("moment blob shorter than expert's trainable parameters");
        opt.set_moments(
            p.name(),
            Tensor::from_vec(p.value.shape().clone(), m.to_vec()),
            Tensor::from_vec(p.value.shape().clone(), v.to_vec()),
        );
        cursor += 2 * n;
    });
    assert_eq!(
        cursor,
        moments.len(),
        "moment blob longer than expert's trainable parameters"
    );
}

/// Removes the optimizer's moment entries for an expert's trainable
/// parameters, returning them (absent entries return `None`) so a
/// later [`Message::MigrationCommit`] can restore the pre-install state.
fn stash_expert_moments(
    opt: &mut AdamW,
    ffn: &mut SwiGlu,
) -> Vec<(String, Option<(Tensor, Tensor)>)> {
    let mut out = Vec::new();
    ffn.visit_params(&mut |p| {
        if p.is_trainable() {
            out.push((p.name().to_string(), opt.take_moments(p.name())));
        }
    });
    out
}

/// One in-flight shadow install on the destination worker: the chunk
/// reassembly buffer, the pinned-snapshot moments once they arrive, and
/// every gradient row forwarded for the expert before its install
/// completed, tagged with the optimizer step index it must be replayed
/// at.
#[derive(Debug)]
struct PendingInstall {
    asm: ChunkAssembler,
    moments: Option<Vec<f32>>,
    grads: Vec<(u64, Vec<f32>)>,
}

/// Worker-side migration bookkeeping, keyed by `(block, expert)`.
#[derive(Debug, Default)]
struct MigrationTable {
    /// Shadow installs still streaming in.
    pending: HashMap<(u32, u32), PendingInstall>,
    /// Installed-but-uncommitted shadows: the moment entries the expert's
    /// parameters had *before* the install, restored at commit so the
    /// final state matches a stop-the-world migration (whose destination
    /// starts with fresh moments).
    installed: HashMap<(u32, u32), Vec<(String, Option<(Tensor, Tensor)>)>>,
}

/// The correlation key of a coalesced dispatch as seen from the worker:
/// the step comes from the last `StepBegin` (per-link FIFO order makes
/// that the step the frame belongs to), the worker index from the port.
fn serve_corr(index: usize, block: u32, pass: GroupPass, chunk: u32) -> u64 {
    vela_obs::corr::pack(
        vela_obs::current_step(),
        index as u64,
        u64::from(block),
        matches!(pass, GroupPass::Backward) as u64,
        u64::from(chunk),
    )
}

/// Architectural description of an expert, enough for a worker to rebuild
/// one that migrates in (the weights arrive as checkpoint bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpertTemplate {
    /// Model width.
    pub dim: usize,
    /// Expert FFN inner width.
    pub ffn_hidden: usize,
    /// `(rank, α)` when experts carry LoRA adapters.
    pub lora: Option<(usize, f32)>,
    /// Whether base projections are frozen.
    pub base_frozen: bool,
}

impl ExpertTemplate {
    /// Builds an architecturally matching blank expert for `(block,
    /// expert)`; migration then overwrites its weights.
    pub fn instantiate(&self, block: usize, expert: usize) -> SwiGlu {
        let mut rng = DetRng::new(0); // weights are overwritten by the load
        let mut ffn = SwiGlu::new(
            format!("block{block}.expert{expert}"),
            self.dim,
            self.ffn_hidden,
            &mut rng,
        );
        if self.base_frozen {
            ffn.freeze_base();
        }
        if let Some((rank, alpha)) = self.lora {
            ffn.attach_lora(rank, alpha, &mut rng);
        }
        ffn
    }

    /// Derives the template from an existing expert.
    pub fn from_expert(ffn: &SwiGlu) -> Self {
        ExpertTemplate {
            dim: ffn.dim(),
            ffn_hidden: ffn.hidden(),
            lora: ffn.lora_spec(),
            base_frozen: ffn.base_frozen(),
        }
    }
}

/// Everything a freshly spawned worker *process* needs before it can join
/// the protocol: shard shape, optimizer hyper-parameters, and (when the
/// run migrates real experts in) the expert architecture. Shipped as the
/// first control frame after the transport handshake; in thread mode the
/// same information is passed by value to [`ExpertManager::spawn`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerBootstrap {
    /// MoE block count of the shard grid.
    pub blocks: usize,
    /// Experts per block of the shard grid.
    pub experts: usize,
    /// Optimizer configuration for the worker's local AdamW.
    pub optim: AdamWConfig,
    /// Expert architecture, when the worker must be able to *receive*
    /// experts (`None` for echo-only virtual workers).
    pub template: Option<ExpertTemplate>,
}

const BOOTSTRAP_VERSION: u8 = 1;

impl WorkerBootstrap {
    /// Serializes the bootstrap frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(64);
        w.put_u8(BOOTSTRAP_VERSION);
        w.put_u32(self.blocks as u32);
        w.put_u32(self.experts as u32);
        w.put_f32(self.optim.lr);
        w.put_f32(self.optim.beta1);
        w.put_f32(self.optim.beta2);
        w.put_f32(self.optim.eps);
        w.put_f32(self.optim.weight_decay);
        match &self.template {
            None => w.put_u8(0),
            Some(t) => {
                w.put_u8(1);
                w.put_u32(t.dim as u32);
                w.put_u32(t.ffn_hidden as u32);
                match t.lora {
                    None => w.put_u8(0),
                    Some((rank, alpha)) => {
                        w.put_u8(1);
                        w.put_u32(rank as u32);
                        w.put_f32(alpha);
                    }
                }
                w.put_u8(u8::from(t.base_frozen));
            }
        }
        w.into_vec()
    }

    /// Deserializes a bootstrap frame.
    pub fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(frame);
        let version = r.get_u8()?;
        if version != BOOTSTRAP_VERSION {
            return Err(WireError::BadTag {
                what: "bootstrap version",
                tag: version,
            });
        }
        let blocks = r.get_u32()? as usize;
        let experts = r.get_u32()? as usize;
        let optim = AdamWConfig {
            lr: r.get_f32()?,
            beta1: r.get_f32()?,
            beta2: r.get_f32()?,
            eps: r.get_f32()?,
            weight_decay: r.get_f32()?,
        };
        let template = match r.get_u8()? {
            0 => None,
            1 => {
                let dim = r.get_u32()? as usize;
                let ffn_hidden = r.get_u32()? as usize;
                let lora = match r.get_u8()? {
                    0 => None,
                    1 => Some((r.get_u32()? as usize, r.get_f32()?)),
                    tag => {
                        return Err(WireError::BadTag {
                            what: "bootstrap lora flag",
                            tag,
                        })
                    }
                };
                let base_frozen = r.get_u8()? != 0;
                Some(ExpertTemplate {
                    dim,
                    ffn_hidden,
                    lora,
                    base_frozen,
                })
            }
            tag => {
                return Err(WireError::BadTag {
                    what: "bootstrap template flag",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(WorkerBootstrap {
            blocks,
            experts,
            optim,
            template,
        })
    }
}

/// Handle to a spawned Expert Manager thread.
#[derive(Debug)]
pub struct ExpertManager {
    handle: JoinHandle<LocalExpertStore>,
    index: usize,
}

impl ExpertManager {
    /// Spawns a worker thread serving `shard` over `port`.
    ///
    /// The worker answers [`Message::TokenBatch`]/[`Message::GradBatch`]
    /// requests (virtual payloads are echoed with matching sizes), zeroes
    /// gradients on [`Message::StepBegin`], steps its optimizer on
    /// [`Message::StepEnd`] (acknowledged with [`Message::StepDone`]),
    /// serves expert migration ([`Message::FetchExpert`] /
    /// [`Message::ExpertState`]) and returns its shard on
    /// [`Message::Shutdown`] or master disconnect.
    pub fn spawn(port: WorkerPort, shard: LocalExpertStore, optim: AdamWConfig) -> Self {
        Self::spawn_with_template(port, shard, optim, None)
    }

    /// Like [`spawn`](Self::spawn), with an [`ExpertTemplate`] enabling the
    /// worker to *receive* migrating experts.
    pub fn spawn_with_template(
        port: WorkerPort,
        shard: LocalExpertStore,
        optim: AdamWConfig,
        template: Option<ExpertTemplate>,
    ) -> Self {
        let index = port.index;
        let handle = std::thread::Builder::new()
            .name(format!("expert-manager-{index}"))
            .spawn(move || worker_loop(port, shard, optim, template))
            .expect("failed to spawn expert manager");
        ExpertManager { handle, index }
    }

    /// This worker's index in the master's worker list.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Waits for the worker to exit (after `Shutdown`) and returns its
    /// shard.
    ///
    /// # Panics
    /// Panics if the worker thread panicked.
    pub fn join(self) -> LocalExpertStore {
        self.handle.join().expect("expert manager panicked")
    }
}

/// Runs the Expert Manager loop for a worker *process*: an empty shard of
/// the bootstrap's shape (experts are seeded over the wire via
/// [`Message::ExpertState`]), served until `Shutdown` or master
/// disconnect. Returns the final shard (the master normally fetches all
/// experts back before `Shutdown`, so it is usually empty again).
pub fn run_worker(port: WorkerPort, bootstrap: &WorkerBootstrap) -> LocalExpertStore {
    let shard = LocalExpertStore::empty(bootstrap.blocks, bootstrap.experts);
    worker_loop(port, shard, bootstrap.optim, bootstrap.template)
}

/// Whether the loop keeps serving after a message.
enum Flow {
    Continue,
    Stop,
}

pub(crate) fn worker_loop(
    mut port: WorkerPort,
    mut shard: LocalExpertStore,
    optim: AdamWConfig,
    template: Option<ExpertTemplate>,
) -> LocalExpertStore {
    let mut opt = AdamW::new(optim);
    let mut migrations = MigrationTable::default();
    loop {
        match port.recv() {
            Ok(msg) => match handle(
                &mut port,
                &mut shard,
                &mut opt,
                template.as_ref(),
                &mut migrations,
                msg,
            ) {
                Ok(Flow::Continue) => {}
                Ok(Flow::Stop) => break,
                Err(e) => {
                    vela_obs::error!("worker {}: transport error, exiting: {e}", port.index);
                    break;
                }
            },
            Err(TransportError::Disconnected) => {
                vela_obs::warn!(
                    "worker {}: master disconnected, exiting cleanly",
                    port.index
                );
                break;
            }
            Err(e) => {
                vela_obs::error!("worker {}: receive failed, exiting: {e}", port.index);
                break;
            }
        }
    }
    port.shutdown();
    vela_obs::flush();
    shard
}

fn handle(
    port: &mut WorkerPort,
    shard: &mut LocalExpertStore,
    opt: &mut AdamW,
    template: Option<&ExpertTemplate>,
    migrations: &mut MigrationTable,
    msg: Message,
) -> Result<Flow, TransportError> {
    match msg {
        Message::StepBegin { step } => {
            // Tag this worker's spans/flows with the master's step: every
            // dispatch that follows on this FIFO link belongs to it.
            vela_obs::step_begin(step);
            shard.zero_grad();
        }
        Message::ClockProbe { t1 } => {
            let t2 = vela_obs::now_us();
            let t3 = vela_obs::now_us();
            port.send(&Message::ClockReply { t1, t2, t3 })?;
        }
        Message::TokenBatch {
            block,
            expert,
            payload,
        } => {
            let reply = match payload {
                Payload::Real { .. } => {
                    let xs = payload.to_tensor();
                    let out = shard
                        .forward_block(
                            block as usize,
                            &[ExpertBatch {
                                expert: expert as usize,
                                xs,
                            }],
                        )
                        .pop()
                        .expect("one output per batch");
                    Payload::from_tensor(&out)
                }
                Payload::Virtual {
                    rows,
                    bytes_per_token,
                } => Payload::Virtual {
                    rows,
                    bytes_per_token,
                },
            };
            port.send(&Message::ExpertResult {
                block,
                expert,
                payload: reply,
            })?;
        }
        Message::GradBatch {
            block,
            expert,
            payload,
        } => {
            let reply = match payload {
                Payload::Real { .. } => {
                    let g = payload.to_tensor();
                    let gin = shard
                        .backward_block(
                            block as usize,
                            &[ExpertBatch {
                                expert: expert as usize,
                                xs: g,
                            }],
                        )
                        .pop()
                        .expect("one gradient per batch");
                    Payload::from_tensor(&gin)
                }
                Payload::Virtual {
                    rows,
                    bytes_per_token,
                } => Payload::Virtual {
                    rows,
                    bytes_per_token,
                },
            };
            port.send(&Message::GradResult {
                block,
                expert,
                payload: reply,
            })?;
        }
        Message::DispatchGroup {
            block,
            pass,
            chunk,
            items,
        } => {
            let corr = serve_corr(port.index, block, pass, chunk);
            let _serve = vela_obs::span(SPAN_SERVE);
            // The flow pair bounds the compute; the reply send after the
            // second endpoint is wire time from the master's viewpoint.
            vela_obs::flow(FlowPhase::Step, corr);
            let t0 = vela_obs::enabled().then(vela_obs::now_us);
            let items = serve_group(shard, block as usize, pass, items);
            if let Some(t0) = t0 {
                SERVE_US.add(vela_obs::now_us() - t0);
            }
            vela_obs::flow(FlowPhase::Step, corr);
            // Echo the chunk id so the master can slot this reply while
            // other chunks of the same block-pass are still in flight.
            port.send(&Message::ResultGroup {
                block,
                pass,
                chunk,
                items,
            })?;
        }
        Message::PackedDispatch(group) => {
            let corr = serve_corr(port.index, group.block, group.pass, group.chunk);
            let _serve = vela_obs::span(SPAN_SERVE);
            vela_obs::flow(FlowPhase::Step, corr);
            let t0 = vela_obs::enabled().then(vela_obs::now_us);
            let reply = serve_packed(shard, group);
            if let Some(t0) = t0 {
                SERVE_US.add(vela_obs::now_us() - t0);
            }
            vela_obs::flow(FlowPhase::Step, corr);
            port.send(&Message::PackedResult(reply))?;
        }
        Message::StepEnd => {
            opt.step(shard);
            port.send(&Message::StepDone)?;
        }
        Message::FetchExpert { block, expert } => {
            // Evict the expert and ship its parameters to the master.
            let mut ffn = shard.take(block as usize, expert as usize);
            let mut data = Vec::new();
            checkpoint::save(&mut ffn, &mut data).expect("in-memory save");
            port.send(&Message::ExpertState {
                block,
                expert,
                data,
            })?;
        }
        Message::ExpertState {
            block,
            expert,
            data,
        } => {
            let template = template.expect("worker without template cannot receive experts");
            let mut ffn = template.instantiate(block as usize, expert as usize);
            // load_any dispatches on the blob's magic, so both exact f32
            // checkpoints and int8-quantized transfer blobs install.
            checkpoint::load_any(&mut ffn, &mut data.as_slice()).expect("valid expert checkpoint");
            shard.insert(block as usize, expert as usize, ffn);
            port.send(&Message::InstallDone { block, expert })?;
        }
        Message::FetchGrads {
            block,
            expert,
            grad_bytes,
        } => {
            // Replica sync: ship this replica's accumulated gradients to
            // the master. Echo workers (no real experts) answer with a
            // virtual payload of the declared size so simulated runs
            // account the same bytes a real run would.
            let payload = if shard.contains(block as usize, expert as usize) {
                let grads = expert_grads(shard.expert_mut(block as usize, expert as usize));
                Payload::Real {
                    rows: 1,
                    cols: grads.len() as u32,
                    data: grads,
                }
            } else {
                Payload::Virtual {
                    rows: 1,
                    bytes_per_token: grad_bytes,
                }
            };
            port.send(&Message::GradState {
                block,
                expert,
                payload,
            })?;
        }
        Message::GradState {
            block,
            expert,
            payload,
        } => {
            if let Payload::Real { data, .. } = &payload {
                if let Some(pending) = migrations.pending.get_mut(&(block, expert)) {
                    // The shadow install has not finished streaming in;
                    // buffer the gradients with the step index the serving
                    // copy applies them at (the step after the steps this
                    // optimizer has run — gradients sync before StepEnd),
                    // for replay once the weights land.
                    pending.grads.push((opt.steps() + 1, data.clone()));
                } else if !shard.contains(block as usize, expert as usize) {
                    vela_obs::error!(
                        "worker {}: grad state for absent expert ({block}, {expert}), exiting",
                        port.index
                    );
                    return Ok(Flow::Stop);
                } else {
                    install_expert_grads(shard.expert_mut(block as usize, expert as usize), data);
                }
            }
            port.send(&Message::GradSyncDone { block, expert })?;
        }
        Message::FetchShadow { block, expert } => {
            // Serialize the expert *without evicting it*: the source keeps
            // serving until cutover. The checkpoint plus the optimizer
            // moments form the pinned snapshot the shadow replays forward
            // from; chunks stay exact (never quantized) so the cutover
            // state is bit-identical to a stop-the-world migration.
            let mut ffn = shard.take(block as usize, expert as usize);
            let mut data = Vec::new();
            checkpoint::save(&mut ffn, &mut data).expect("in-memory save");
            let moments = expert_moments(opt, &mut ffn);
            shard.insert(block as usize, expert as usize, ffn);
            for frame in chunk_expert_state(block, expert, &data) {
                port.send(&frame)?;
            }
            port.send(&Message::OptimState {
                block,
                expert,
                payload: Payload::Real {
                    rows: 1,
                    cols: moments.len() as u32,
                    data: moments,
                },
            })?;
        }
        Message::ShadowBegin { block, expert } => {
            migrations.pending.insert(
                (block, expert),
                PendingInstall {
                    asm: ChunkAssembler::new(block, expert),
                    moments: None,
                    grads: Vec::new(),
                },
            );
        }
        Message::ExpertChunk {
            block,
            expert,
            offset,
            total,
            data,
        } => {
            let Some(pending) = migrations.pending.get_mut(&(block, expert)) else {
                vela_obs::error!(
                    "worker {}: expert chunk for unannounced install ({block}, {expert}), exiting",
                    port.index
                );
                return Ok(Flow::Stop);
            };
            if let Err(e) = pending.asm.accept(offset, total, &data) {
                vela_obs::error!("worker {}: rejected expert chunk: {e}, exiting", port.index);
                return Ok(Flow::Stop);
            }
            finalize_install(port, shard, opt, template, migrations, block, expert)?;
        }
        Message::OptimState {
            block,
            expert,
            payload,
        } => {
            let Some(pending) = migrations.pending.get_mut(&(block, expert)) else {
                vela_obs::error!(
                    "worker {}: optim state for unannounced install ({block}, {expert}), exiting",
                    port.index
                );
                return Ok(Flow::Stop);
            };
            match payload {
                Payload::Real { data, .. } => pending.moments = Some(data),
                Payload::Virtual { .. } => {
                    vela_obs::error!(
                        "worker {}: virtual optim state cannot be installed, exiting",
                        port.index
                    );
                    return Ok(Flow::Stop);
                }
            }
            finalize_install(port, shard, opt, template, migrations, block, expert)?;
        }
        Message::Evict { block, expert } => {
            // Cutover: drop the stale source copy. Its moment entries stay
            // behind exactly as a sync-mode FetchExpert leaves them.
            if shard.contains(block as usize, expert as usize) {
                drop(shard.take(block as usize, expert as usize));
            } else {
                vela_obs::warn!(
                    "worker {}: evict for absent expert ({block}, {expert})",
                    port.index
                );
            }
        }
        Message::MigrationCommit { block, expert } => {
            // Cutover: the shadow becomes the serving copy. Restore the
            // moment entries its parameters had before the install so the
            // optimizer state matches a stop-the-world migration's
            // fresh-destination semantics.
            match migrations.installed.remove(&(block, expert)) {
                Some(saved) => {
                    for (name, prior) in saved {
                        opt.take_moments(&name);
                        if let Some((m, v)) = prior {
                            opt.set_moments(&name, m, v);
                        }
                    }
                }
                None => vela_obs::warn!(
                    "worker {}: commit for unknown shadow install ({block}, {expert})",
                    port.index
                ),
            }
        }
        Message::Shutdown => return Ok(Flow::Stop),
        other => {
            vela_obs::error!(
                "worker {}: unexpected message {other:?}, exiting",
                port.index
            );
            return Ok(Flow::Stop);
        }
    }
    Ok(Flow::Continue)
}

/// Completes a shadow install if every chunk and the moment snapshot have
/// arrived: rebuild the expert, install the pinned snapshot, replay
/// buffered gradients, and ack with [`Message::InstallDone`].
///
/// Buffered gradients split by their step index: steps whose `StepEnd`
/// this worker has already run are replayed via [`AdamW::step_at`] (the
/// serving copy applied them at those indices); a gradient for the
/// *current* step is only installed into the gradient tensors — the
/// upcoming `StepEnd` applies it, exactly once, like any live replica.
fn finalize_install(
    port: &mut WorkerPort,
    shard: &mut LocalExpertStore,
    opt: &mut AdamW,
    template: Option<&ExpertTemplate>,
    migrations: &mut MigrationTable,
    block: u32,
    expert: u32,
) -> Result<(), TransportError> {
    let ready = migrations
        .pending
        .get(&(block, expert))
        .map_or(false, |p| p.asm.is_complete() && p.moments.is_some());
    if !ready {
        return Ok(());
    }
    let PendingInstall {
        asm,
        moments,
        grads,
    } = migrations
        .pending
        .remove(&(block, expert))
        .expect("pending install present");
    let template = template.expect("worker without template cannot receive experts");
    let mut ffn = template.instantiate(block as usize, expert as usize);
    checkpoint::load_any(&mut ffn, &mut asm.into_bytes().as_slice())
        .expect("valid expert checkpoint");
    let saved = stash_expert_moments(opt, &mut ffn);
    install_expert_moments(opt, &mut ffn, &moments.expect("moments present"));
    let applied = opt.steps();
    for (t, row) in &grads {
        if *t <= applied {
            install_expert_grads(&mut ffn, row);
            opt.step_at(&mut ffn, *t);
        }
    }
    ffn.visit_params(&mut |p| p.zero_grad());
    for (t, row) in &grads {
        if *t > applied {
            // Current-step gradients: the StepEnd that applies them has
            // not run here yet.
            install_expert_grads(&mut ffn, row);
        }
    }
    shard.insert(block as usize, expert as usize, ffn);
    migrations.installed.insert((block, expert), saved);
    port.send(&Message::InstallDone { block, expert })
}

/// Serves one coalesced dispatch: all real payloads go through a *single*
/// `forward_block`/`backward_block` call (the same per-expert kernels the
/// per-batch path runs, so results are bit-identical), virtual payloads
/// are echoed, and replies come back in item order.
fn serve_group(
    shard: &mut LocalExpertStore,
    block: usize,
    pass: GroupPass,
    items: Vec<GroupItem>,
) -> Vec<GroupItem> {
    let batches: Vec<ExpertBatch> = items
        .iter()
        .filter(|item| matches!(item.payload, Payload::Real { .. }))
        .map(|item| ExpertBatch {
            expert: item.expert as usize,
            xs: item.payload.to_tensor(),
        })
        .collect();
    let outs = if batches.is_empty() {
        Vec::new()
    } else {
        match pass {
            GroupPass::Forward => shard.forward_block(block, &batches),
            GroupPass::Backward => shard.backward_block(block, &batches),
        }
    };
    let mut outs = outs.into_iter();
    items
        .into_iter()
        .map(|item| GroupItem {
            expert: item.expert,
            payload: match item.payload {
                Payload::Real { .. } => {
                    Payload::from_tensor(&outs.next().expect("one output per real batch"))
                }
                virt @ Payload::Virtual { .. } => virt,
            },
        })
        .collect()
}

/// Serves one column-packed dispatch: the frame's single row region goes
/// through one `forward_rows`/`backward_rows` call — the same per-expert
/// kernels and grouping as [`serve_group`], so exact (f32) frames stay
/// bit-identical to the legacy path — and the reply is again one
/// contiguous region with no per-item headers. An int8 dispatch is
/// dequantized once on the way in and the reply re-quantized, keeping the
/// lossy encoding symmetric in both directions.
fn serve_packed(shard: &mut LocalExpertStore, group: PackedGroup) -> PackedReply {
    let PackedGroup {
        block,
        pass,
        chunk,
        width,
        spans,
        data,
    } = group;
    let items = spans.len() as u32;
    let rows: u32 = spans.iter().map(|s| s.rows).sum();
    let data = match data {
        PackedData::Virtual => PackedData::Virtual,
        real => {
            let parts: Vec<(usize, usize)> = spans
                .iter()
                .map(|s| (s.expert as usize, s.rows as usize))
                .collect();
            let mut out = Vec::new();
            let run = |shard: &mut LocalExpertStore, region: &[f32], out: &mut Vec<f32>| match pass
            {
                GroupPass::Forward => {
                    shard.forward_rows(block as usize, width as usize, &parts, region, out)
                }
                GroupPass::Backward => {
                    shard.backward_rows(block as usize, width as usize, &parts, region, out)
                }
            };
            let quantized = matches!(real, PackedData::Int8 { .. });
            match &real {
                PackedData::F32(region) => run(shard, region, &mut out),
                PackedData::Int8 { .. } => {
                    let mut dequantized = Vec::with_capacity(rows as usize * width as usize);
                    real.unpack_rows(width as usize, 0, rows as usize, &mut dequantized);
                    run(shard, &dequantized, &mut out);
                }
                PackedData::Virtual => unreachable!(),
            }
            if quantized {
                let (scales, codes) = quantize_rows(&out, width as usize);
                PackedData::Int8 { scales, codes }
            } else {
                PackedData::F32(out)
            }
        }
    };
    PackedReply {
        block,
        pass,
        chunk,
        width,
        items,
        rows,
        data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::star;
    use std::sync::Arc;
    use vela_cluster::{DeviceId, Topology, TrafficLedger};
    use vela_model::ModelConfig;
    use vela_tensor::rng::DetRng;
    use vela_tensor::Tensor;

    fn spawn_one() -> (crate::transport::MasterHub, ExpertManager, ModelConfig) {
        let cfg = ModelConfig::test_small();
        let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let (hub, mut ports) = star(ledger, DeviceId(0), &[DeviceId(2)]);
        let shard = LocalExpertStore::new(&cfg, &mut DetRng::new(5));
        let manager = ExpertManager::spawn(ports.remove(0), shard, AdamWConfig::default());
        (hub, manager, cfg)
    }

    #[test]
    fn serves_forward_and_backward() {
        let (mut hub, manager, cfg) = spawn_one();
        let mut rng = DetRng::new(1);
        let xs = Tensor::uniform((3, cfg.dim), -1.0, 1.0, &mut rng);

        hub.send(0, &Message::StepBegin { step: 0 }).unwrap();
        hub.send(
            0,
            &Message::TokenBatch {
                block: 0,
                expert: 1,
                payload: Payload::from_tensor(&xs),
            },
        )
        .unwrap();
        let (_, reply) = hub.recv().unwrap();
        let Message::ExpertResult {
            block,
            expert,
            payload,
        } = reply
        else {
            panic!("expected ExpertResult");
        };
        assert_eq!((block, expert), (0, 1));
        let out = payload.to_tensor();
        assert_eq!(out.shape().as_2d(), (3, cfg.dim));

        hub.send(
            0,
            &Message::GradBatch {
                block: 0,
                expert: 1,
                payload: Payload::from_tensor(&Tensor::ones((3, cfg.dim))),
            },
        )
        .unwrap();
        let (_, reply) = hub.recv().unwrap();
        assert!(matches!(reply, Message::GradResult { .. }));

        hub.send(0, &Message::StepEnd).unwrap();
        let (_, done) = hub.recv().unwrap();
        assert_eq!(done, Message::StepDone);

        hub.send(0, &Message::Shutdown).unwrap();
        let shard = manager.join();
        assert_eq!(shard.present_count(), cfg.blocks * cfg.experts);
    }

    #[test]
    fn virtual_payloads_are_echoed() {
        let (mut hub, manager, _) = spawn_one();
        hub.send(
            0,
            &Message::TokenBatch {
                block: 3,
                expert: 2,
                payload: Payload::Virtual {
                    rows: 77,
                    bytes_per_token: 8192,
                },
            },
        )
        .unwrap();
        let (_, reply) = hub.recv().unwrap();
        assert_eq!(
            reply,
            Message::ExpertResult {
                block: 3,
                expert: 2,
                payload: Payload::Virtual {
                    rows: 77,
                    bytes_per_token: 8192,
                },
            }
        );
        hub.send(0, &Message::Shutdown).unwrap();
        manager.join();
    }

    #[test]
    fn matches_local_computation_exactly() {
        // The worker must compute exactly what a local store computes.
        let cfg = ModelConfig::test_small();
        let mut local = LocalExpertStore::new(&cfg, &mut DetRng::new(5));
        let (mut hub, manager, _) = spawn_one(); // same seed inside
        let mut rng = DetRng::new(2);
        let xs = Tensor::uniform((4, cfg.dim), -1.0, 1.0, &mut rng);

        let local_out = local
            .forward_block(
                1,
                &[ExpertBatch {
                    expert: 0,
                    xs: xs.clone(),
                }],
            )
            .pop()
            .unwrap();

        hub.send(
            0,
            &Message::TokenBatch {
                block: 1,
                expert: 0,
                payload: Payload::from_tensor(&xs),
            },
        )
        .unwrap();
        let (_, reply) = hub.recv().unwrap();
        let Message::ExpertResult { payload, .. } = reply else {
            panic!()
        };
        assert_eq!(payload.to_tensor(), local_out, "bit-exact parity");
        hub.send(0, &Message::Shutdown).unwrap();
        manager.join();
    }

    #[test]
    fn dispatch_group_matches_per_batch_replies_bitwise() {
        // The same two batches, once as individual TokenBatch frames and
        // once coalesced: the worker must produce bit-identical outputs
        // and reply in item order. Virtual items are echoed in place.
        let cfg = ModelConfig::test_small();
        let mut local = LocalExpertStore::new(&cfg, &mut DetRng::new(5));
        let (mut hub, manager, _) = spawn_one(); // same seed inside
        let mut rng = DetRng::new(9);
        let xs0 = Tensor::uniform((3, cfg.dim), -1.0, 1.0, &mut rng);
        let xs1 = Tensor::uniform((2, cfg.dim), -1.0, 1.0, &mut rng);

        let expect: Vec<Tensor> = local
            .forward_block(
                0,
                &[
                    ExpertBatch {
                        expert: 0,
                        xs: xs0.clone(),
                    },
                    ExpertBatch {
                        expert: 2,
                        xs: xs1.clone(),
                    },
                ],
            )
            .into_iter()
            .collect();

        hub.send(
            0,
            &Message::DispatchGroup {
                block: 0,
                pass: GroupPass::Forward,
                chunk: 5,
                items: vec![
                    GroupItem {
                        expert: 0,
                        payload: Payload::from_tensor(&xs0),
                    },
                    GroupItem {
                        expert: 2,
                        payload: Payload::from_tensor(&xs1),
                    },
                    GroupItem {
                        expert: 5,
                        payload: Payload::Virtual {
                            rows: 4,
                            bytes_per_token: 64,
                        },
                    },
                ],
            },
        )
        .unwrap();
        let (_, reply) = hub.recv().unwrap();
        let Message::ResultGroup {
            block,
            pass,
            chunk,
            items,
        } = reply
        else {
            panic!("expected ResultGroup, got {reply:?}");
        };
        assert_eq!((block, pass), (0, GroupPass::Forward));
        assert_eq!(chunk, 5, "the reply must echo the dispatch chunk id");
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].expert, 0);
        assert_eq!(items[0].payload.to_tensor(), expect[0], "bit-exact parity");
        assert_eq!(items[1].payload.to_tensor(), expect[1], "bit-exact parity");
        assert_eq!(
            items[2].payload,
            Payload::Virtual {
                rows: 4,
                bytes_per_token: 64
            }
        );
        hub.send(0, &Message::Shutdown).unwrap();
        manager.join();
    }

    #[test]
    fn master_disconnect_exits_cleanly_with_shard_intact() {
        let (hub, manager, cfg) = spawn_one();
        // Drop the hub without sending Shutdown: the worker must observe
        // the hang-up, exit its loop, and still hand back its shard.
        drop(hub);
        let shard = manager.join();
        assert_eq!(shard.present_count(), cfg.blocks * cfg.experts);
    }

    #[test]
    fn bootstrap_roundtrips() {
        let cases = vec![
            WorkerBootstrap {
                blocks: 4,
                experts: 8,
                optim: AdamWConfig::default(),
                template: None,
            },
            WorkerBootstrap {
                blocks: 32,
                experts: 8,
                optim: AdamWConfig {
                    lr: 3e-4,
                    beta1: 0.95,
                    beta2: 0.999,
                    eps: 1e-9,
                    weight_decay: 0.01,
                },
                template: Some(ExpertTemplate {
                    dim: 64,
                    ffn_hidden: 128,
                    lora: Some((8, 16.0)),
                    base_frozen: true,
                }),
            },
            WorkerBootstrap {
                blocks: 2,
                experts: 4,
                optim: AdamWConfig::default(),
                template: Some(ExpertTemplate {
                    dim: 16,
                    ffn_hidden: 32,
                    lora: None,
                    base_frozen: false,
                }),
            },
        ];
        for b in cases {
            assert_eq!(WorkerBootstrap::decode(&b.encode()).unwrap(), b);
        }
    }

    #[test]
    fn bootstrap_rejects_garbage() {
        assert!(WorkerBootstrap::decode(&[]).is_err());
        assert!(WorkerBootstrap::decode(&[9, 0, 0]).is_err());
        let mut frame = WorkerBootstrap {
            blocks: 1,
            experts: 1,
            optim: AdamWConfig::default(),
            template: None,
        }
        .encode();
        frame.push(7);
        assert!(WorkerBootstrap::decode(&frame).is_err());
    }
}

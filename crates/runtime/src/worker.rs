//! The Expert Manager worker process (§IV-A, Fig. 4).
//!
//! Each worker owns a disjoint shard of experts, executes forward/backward
//! requests from the master's broker, and runs its own optimizer at step
//! end — exactly the worker role in the paper's framework, where expert
//! optimization never leaves the hosting device.

use std::thread::JoinHandle;

use vela_model::checkpoint;
use vela_model::provider::ExpertBatch;
use vela_model::{ExpertProvider, LocalExpertStore};
use vela_nn::optim::{AdamW, AdamWConfig};
use vela_nn::param::Module;
use vela_nn::swiglu::SwiGlu;
use vela_tensor::rng::DetRng;

use crate::message::{Message, Payload};
use crate::transport::WorkerPort;

/// Architectural description of an expert, enough for a worker to rebuild
/// one that migrates in (the weights arrive as checkpoint bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpertTemplate {
    /// Model width.
    pub dim: usize,
    /// Expert FFN inner width.
    pub ffn_hidden: usize,
    /// `(rank, α)` when experts carry LoRA adapters.
    pub lora: Option<(usize, f32)>,
    /// Whether base projections are frozen.
    pub base_frozen: bool,
}

impl ExpertTemplate {
    /// Builds an architecturally matching blank expert for `(block,
    /// expert)`; migration then overwrites its weights.
    pub fn instantiate(&self, block: usize, expert: usize) -> SwiGlu {
        let mut rng = DetRng::new(0); // weights are overwritten by the load
        let mut ffn = SwiGlu::new(
            format!("block{block}.expert{expert}"),
            self.dim,
            self.ffn_hidden,
            &mut rng,
        );
        if self.base_frozen {
            ffn.freeze_base();
        }
        if let Some((rank, alpha)) = self.lora {
            ffn.attach_lora(rank, alpha, &mut rng);
        }
        ffn
    }

    /// Derives the template from an existing expert.
    pub fn from_expert(ffn: &SwiGlu) -> Self {
        ExpertTemplate {
            dim: ffn.dim(),
            ffn_hidden: ffn.hidden(),
            lora: ffn.lora_spec(),
            base_frozen: ffn.base_frozen(),
        }
    }
}

/// Handle to a spawned Expert Manager thread.
#[derive(Debug)]
pub struct ExpertManager {
    handle: JoinHandle<LocalExpertStore>,
    index: usize,
}

impl ExpertManager {
    /// Spawns a worker thread serving `shard` over `port`.
    ///
    /// The worker answers [`Message::TokenBatch`]/[`Message::GradBatch`]
    /// requests (virtual payloads are echoed with matching sizes), zeroes
    /// gradients on [`Message::StepBegin`], steps its optimizer on
    /// [`Message::StepEnd`] (acknowledged with [`Message::StepDone`]),
    /// serves expert migration ([`Message::FetchExpert`] /
    /// [`Message::ExpertState`]) and returns its shard on
    /// [`Message::Shutdown`].
    pub fn spawn(port: WorkerPort, shard: LocalExpertStore, optim: AdamWConfig) -> Self {
        Self::spawn_with_template(port, shard, optim, None)
    }

    /// Like [`spawn`](Self::spawn), with an [`ExpertTemplate`] enabling the
    /// worker to *receive* migrating experts.
    pub fn spawn_with_template(
        port: WorkerPort,
        shard: LocalExpertStore,
        optim: AdamWConfig,
        template: Option<ExpertTemplate>,
    ) -> Self {
        let index = port.index;
        let handle = std::thread::Builder::new()
            .name(format!("expert-manager-{index}"))
            .spawn(move || worker_loop(port, shard, optim, template))
            .expect("failed to spawn expert manager");
        ExpertManager { handle, index }
    }

    /// This worker's index in the master's worker list.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Waits for the worker to exit (after `Shutdown`) and returns its
    /// shard.
    ///
    /// # Panics
    /// Panics if the worker thread panicked.
    pub fn join(self) -> LocalExpertStore {
        self.handle.join().expect("expert manager panicked")
    }
}

fn worker_loop(
    port: WorkerPort,
    mut shard: LocalExpertStore,
    optim: AdamWConfig,
    template: Option<ExpertTemplate>,
) -> LocalExpertStore {
    let mut opt = AdamW::new(optim);
    loop {
        match port.recv() {
            Message::StepBegin { .. } => shard.zero_grad(),
            Message::TokenBatch {
                block,
                expert,
                payload,
            } => {
                let reply = match payload {
                    Payload::Real { .. } => {
                        let xs = payload.to_tensor();
                        let out = shard
                            .forward_block(
                                block as usize,
                                &[ExpertBatch {
                                    expert: expert as usize,
                                    xs,
                                }],
                            )
                            .pop()
                            .expect("one output per batch");
                        Payload::from_tensor(&out)
                    }
                    Payload::Virtual {
                        rows,
                        bytes_per_token,
                    } => Payload::Virtual {
                        rows,
                        bytes_per_token,
                    },
                };
                port.send(&Message::ExpertResult {
                    block,
                    expert,
                    payload: reply,
                });
            }
            Message::GradBatch {
                block,
                expert,
                payload,
            } => {
                let reply = match payload {
                    Payload::Real { .. } => {
                        let g = payload.to_tensor();
                        let gin = shard
                            .backward_block(
                                block as usize,
                                &[ExpertBatch {
                                    expert: expert as usize,
                                    xs: g,
                                }],
                            )
                            .pop()
                            .expect("one gradient per batch");
                        Payload::from_tensor(&gin)
                    }
                    Payload::Virtual {
                        rows,
                        bytes_per_token,
                    } => Payload::Virtual {
                        rows,
                        bytes_per_token,
                    },
                };
                port.send(&Message::GradResult {
                    block,
                    expert,
                    payload: reply,
                });
            }
            Message::StepEnd => {
                opt.step(&mut shard);
                port.send(&Message::StepDone);
            }
            Message::FetchExpert { block, expert } => {
                // Evict the expert and ship its parameters to the master.
                let mut ffn = shard.take(block as usize, expert as usize);
                let mut data = Vec::new();
                checkpoint::save(&mut ffn, &mut data).expect("in-memory save");
                port.send(&Message::ExpertState {
                    block,
                    expert,
                    data,
                });
            }
            Message::ExpertState {
                block,
                expert,
                data,
            } => {
                let template = template
                    .as_ref()
                    .expect("worker without template cannot receive experts");
                let mut ffn = template.instantiate(block as usize, expert as usize);
                checkpoint::load(&mut ffn, &mut data.as_slice()).expect("valid expert checkpoint");
                shard.insert(block as usize, expert as usize, ffn);
                port.send(&Message::InstallDone { block, expert });
            }
            Message::Shutdown => return shard,
            other => panic!("worker received unexpected message {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::star;
    use std::sync::Arc;
    use vela_cluster::{DeviceId, Topology, TrafficLedger};
    use vela_model::ModelConfig;
    use vela_tensor::rng::DetRng;
    use vela_tensor::Tensor;

    fn spawn_one() -> (crate::transport::MasterHub, ExpertManager, ModelConfig) {
        let cfg = ModelConfig::test_small();
        let ledger = Arc::new(TrafficLedger::new(Topology::paper_testbed()));
        let (hub, mut ports) = star(ledger, DeviceId(0), &[DeviceId(2)]);
        let shard = LocalExpertStore::new(&cfg, &mut DetRng::new(5));
        let manager = ExpertManager::spawn(ports.remove(0), shard, AdamWConfig::default());
        (hub, manager, cfg)
    }

    #[test]
    fn serves_forward_and_backward() {
        let (hub, manager, cfg) = spawn_one();
        let mut rng = DetRng::new(1);
        let xs = Tensor::uniform((3, cfg.dim), -1.0, 1.0, &mut rng);

        hub.send(0, &Message::StepBegin { step: 0 });
        hub.send(
            0,
            &Message::TokenBatch {
                block: 0,
                expert: 1,
                payload: Payload::from_tensor(&xs),
            },
        );
        let (_, reply) = hub.recv();
        let Message::ExpertResult {
            block,
            expert,
            payload,
        } = reply
        else {
            panic!("expected ExpertResult");
        };
        assert_eq!((block, expert), (0, 1));
        let out = payload.to_tensor();
        assert_eq!(out.shape().as_2d(), (3, cfg.dim));

        hub.send(
            0,
            &Message::GradBatch {
                block: 0,
                expert: 1,
                payload: Payload::from_tensor(&Tensor::ones((3, cfg.dim))),
            },
        );
        let (_, reply) = hub.recv();
        assert!(matches!(reply, Message::GradResult { .. }));

        hub.send(0, &Message::StepEnd);
        let (_, done) = hub.recv();
        assert_eq!(done, Message::StepDone);

        hub.send(0, &Message::Shutdown);
        let shard = manager.join();
        assert_eq!(shard.present_count(), cfg.blocks * cfg.experts);
    }

    #[test]
    fn virtual_payloads_are_echoed() {
        let (hub, manager, _) = spawn_one();
        hub.send(
            0,
            &Message::TokenBatch {
                block: 3,
                expert: 2,
                payload: Payload::Virtual {
                    rows: 77,
                    bytes_per_token: 8192,
                },
            },
        );
        let (_, reply) = hub.recv();
        assert_eq!(
            reply,
            Message::ExpertResult {
                block: 3,
                expert: 2,
                payload: Payload::Virtual {
                    rows: 77,
                    bytes_per_token: 8192,
                },
            }
        );
        hub.send(0, &Message::Shutdown);
        manager.join();
    }

    #[test]
    fn matches_local_computation_exactly() {
        // The worker must compute exactly what a local store computes.
        let cfg = ModelConfig::test_small();
        let mut local = LocalExpertStore::new(&cfg, &mut DetRng::new(5));
        let (hub, manager, _) = spawn_one(); // same seed inside
        let mut rng = DetRng::new(2);
        let xs = Tensor::uniform((4, cfg.dim), -1.0, 1.0, &mut rng);

        let local_out = local
            .forward_block(
                1,
                &[ExpertBatch {
                    expert: 0,
                    xs: xs.clone(),
                }],
            )
            .pop()
            .unwrap();

        hub.send(
            0,
            &Message::TokenBatch {
                block: 1,
                expert: 0,
                payload: Payload::from_tensor(&xs),
            },
        );
        let (_, reply) = hub.recv();
        let Message::ExpertResult { payload, .. } = reply else {
            panic!()
        };
        assert_eq!(payload.to_tensor(), local_out, "bit-exact parity");
        hub.send(0, &Message::Shutdown);
        manager.join();
    }
}

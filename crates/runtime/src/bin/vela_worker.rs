//! Standalone Expert Manager worker process.
//!
//! Spawned by the process-mode launcher (`VELA_TRANSPORT=tcp`): connects
//! to the master's loopback listener, receives its
//! [`WorkerBootstrap`](vela_runtime::worker::WorkerBootstrap) control
//! frame, then serves the standard Expert Manager loop until `Shutdown`
//! or master disconnect — either way exiting cleanly with flushed
//! observability buffers.
//!
//! Reads `VELA_WORKER_CONNECT` (`host:port`), `VELA_WORKER_INDEX` and
//! `VELA_WORKER_DEVICE` from the environment; the launcher sets all
//! three.

use std::net::SocketAddr;
use std::process::ExitCode;

use vela_cluster::DeviceId;
use vela_runtime::launch::env_keys;
use vela_runtime::transport::connect_worker;
use vela_runtime::worker::{run_worker, WorkerBootstrap};

fn required(key: &str) -> Result<String, String> {
    std::env::var(key).map_err(|_| format!("{key} must be set (the launcher sets it)"))
}

fn run() -> Result<(), String> {
    let addr: SocketAddr = required(env_keys::CONNECT)?
        .parse()
        .map_err(|e| format!("bad {}: {e}", env_keys::CONNECT))?;
    let index: usize = required(env_keys::INDEX)?
        .parse()
        .map_err(|e| format!("bad {}: {e}", env_keys::INDEX))?;
    let device: usize = required(env_keys::DEVICE)?
        .parse()
        .map_err(|e| format!("bad {}: {e}", env_keys::DEVICE))?;

    let mut port = connect_worker(addr, index, DeviceId(device))
        .map_err(|e| format!("connect to master at {addr} failed: {e}"))?;
    let frame = port
        .recv_control()
        .map_err(|e| format!("waiting for bootstrap failed: {e}"))?;
    let bootstrap =
        WorkerBootstrap::decode(&frame).map_err(|e| format!("bad bootstrap frame: {e}"))?;
    vela_obs::info!(
        "vela_worker {index} (device {device}) serving {}x{} shard",
        bootstrap.blocks,
        bootstrap.experts
    );
    run_worker(port, &bootstrap);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("vela_worker: {msg}");
            ExitCode::FAILURE
        }
    }
}

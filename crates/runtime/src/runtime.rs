//! The real-tensor distributed runtime: master process + Expert Manager
//! workers at micro scale.
//!
//! This is the paper's full system running end-to-end: the backbone trains
//! on the master thread, experts live in worker threads per the placement,
//! and every activation/gradient crosses the transport as serialized
//! bytes. Because the broker is computation-transparent, a distributed run
//! is bit-identical to a single-process run — the §V-A claim, verified in
//! the `parity` integration test.

use std::sync::Arc;

use vela_cluster::{CostModel, DeviceId, Topology, TrafficLedger};
use vela_model::{LocalExpertStore, MoeModel, MoeSpec};
use vela_nn::loss::cross_entropy;
use vela_nn::optim::{AdamW, AdamWConfig};

use vela_placement::Placement;

use crate::broker::BrokerClient;
use crate::metrics::{backbone_flops_per_token, master_worker_time, StepMetrics};
use crate::transport::star;
use crate::worker::{ExpertManager, ExpertTemplate};

/// A live distributed fine-tuning session with real tensors.
#[derive(Debug)]
pub struct RealRuntime {
    model: MoeModel,
    broker: BrokerClient,
    managers: Vec<ExpertManager>,
    opt_model: AdamW,
    ledger: Arc<TrafficLedger>,
    cost: CostModel,
    master: DeviceId,
    worker_devices: Vec<DeviceId>,
    spec: MoeSpec,
    step: usize,
}

impl RealRuntime {
    /// Distributes `experts` across workers per `placement` and launches
    /// the worker threads.
    ///
    /// `optim` is used by the master for the backbone *and* by each worker
    /// for its shard, matching the paper's per-device optimization.
    ///
    /// # Panics
    /// Panics if the placement shape disagrees with the model or the
    /// worker list, or if any expert is missing from `experts`.
    pub fn launch(
        model: MoeModel,
        mut experts: LocalExpertStore,
        placement: Placement,
        topology: Topology,
        master: DeviceId,
        worker_devices: Vec<DeviceId>,
        optim: AdamWConfig,
    ) -> Self {
        let cfg = model.config().clone();
        assert_eq!(placement.blocks(), cfg.blocks, "placement block mismatch");
        assert_eq!(
            placement.experts(),
            cfg.experts,
            "placement expert mismatch"
        );
        assert_eq!(
            placement.workers(),
            worker_devices.len(),
            "placement worker mismatch"
        );

        let template = ExpertTemplate::from_expert(experts.expert_mut(0, 0));
        // Shard the expert population.
        let mut shards: Vec<LocalExpertStore> = (0..worker_devices.len())
            .map(|_| LocalExpertStore::empty(cfg.blocks, cfg.experts))
            .collect();
        for l in 0..cfg.blocks {
            for e in 0..cfg.experts {
                let w = placement.worker_of(l, e);
                shards[w].insert(l, e, experts.take(l, e));
            }
        }

        let ledger = Arc::new(TrafficLedger::new(topology.clone()));
        let cost = CostModel::new(topology);
        let (hub, ports) = star(ledger.clone(), master, &worker_devices);
        let managers: Vec<ExpertManager> = ports
            .into_iter()
            .zip(shards)
            .map(|(port, shard)| {
                ExpertManager::spawn_with_template(port, shard, optim, Some(template))
            })
            .collect();

        RealRuntime {
            spec: cfg.spec(),
            model,
            broker: BrokerClient::new(hub, placement),
            managers,
            opt_model: AdamW::new(optim),
            ledger,
            cost,
            master,
            worker_devices,
            step: 0,
        }
    }

    /// The backbone model (e.g. for routing snapshots).
    pub fn model(&self) -> &MoeModel {
        &self.model
    }

    /// The placement currently in force.
    pub fn placement(&self) -> &Placement {
        self.broker.placement()
    }

    /// Live-migrates experts so the session matches `target`, between
    /// steps. Returns `(experts_moved, parameter_bytes_moved, traffic)`,
    /// where `traffic` is the byte-accurate ledger window of the migration
    /// itself (fetch requests, parameter transfers, install acks).
    ///
    /// # Panics
    /// Panics if `target`'s shape disagrees with the session.
    pub fn apply_placement(
        &mut self,
        target: &Placement,
    ) -> (usize, u64, vela_cluster::StepTraffic) {
        self.ledger.take_step();
        let plan = self.broker.placement().diff(target);
        let mut bytes = 0;
        let moved = plan.len();
        for (block, expert, _, to) in plan {
            bytes += self.broker.migrate_expert(block, expert, to);
        }
        (moved, bytes, self.ledger.take_step())
    }

    /// Runs one full distributed fine-tuning step and returns its metrics.
    ///
    /// # Panics
    /// Panics if `inputs.len() != batch * seq` (propagated from the model).
    pub fn train_step(
        &mut self,
        inputs: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
    ) -> StepMetrics {
        self.step += 1;
        vela_obs::step_begin(self.step as u64);
        let _span = vela_obs::span("runtime.step");
        self.ledger.take_step();
        self.broker.step_begin();
        let stats = self
            .model
            .train_step(inputs, targets, batch, seq, &mut self.broker);
        {
            let _opt = vela_obs::span("runtime.optimizer");
            self.opt_model.step(&mut self.model);
        }
        self.broker.step_end_and_wait();

        let traffic = self.ledger.take_step();
        let logs = self.broker.take_phase_logs();
        let master_flops = inputs.len() as f64 * backbone_flops_per_token(&self.spec, seq) * 3.0;
        let time = master_worker_time(
            &self.cost,
            self.master,
            &self.worker_devices,
            &logs,
            &self.spec,
            master_flops,
        );
        StepMetrics {
            step: self.step,
            loss: Some(stats.loss),
            traffic,
            time,
        }
    }

    /// Evaluates the loss on a batch without updating anything (used by
    /// parity checks).
    pub fn evaluate(
        &mut self,
        inputs: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
    ) -> f32 {
        let logits = self.model.forward(inputs, batch, seq, &mut self.broker);
        self.broker.take_phase_logs();
        cross_entropy(&logits, targets).0
    }

    /// Shuts the workers down and reassembles the expert population.
    pub fn shutdown(self) -> (MoeModel, LocalExpertStore) {
        self.broker.shutdown();
        let cfg = self.model.config().clone();
        let mut merged = LocalExpertStore::empty(cfg.blocks, cfg.experts);
        for manager in self.managers {
            let mut shard = manager.join();
            for l in 0..cfg.blocks {
                for e in 0..cfg.experts {
                    if shard.contains(l, e) {
                        merged.insert(l, e, shard.take(l, e));
                    }
                }
            }
        }
        vela_obs::flush();
        (self.model, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vela_model::ModelConfig;
    use vela_placement::{PlacementProblem, Strategy};
    use vela_tensor::rng::DetRng;

    fn build() -> (MoeModel, LocalExpertStore, ModelConfig) {
        let cfg = ModelConfig::test_small();
        let mut rng = DetRng::new(11);
        let (model, experts) = MoeModel::new(&cfg, &mut rng);
        (model, experts, cfg)
    }

    fn sequential_placement(cfg: &ModelConfig, workers: usize) -> Placement {
        let assign: Vec<Vec<usize>> = (0..cfg.blocks)
            .map(|_| (0..cfg.experts).map(|e| e % workers).collect())
            .collect();
        Placement::new(assign, workers)
    }

    fn toy_batch(cfg: &ModelConfig, batch: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut rng = DetRng::new(seed);
        let n = batch * cfg.seq_len;
        (
            (0..n).map(|_| rng.below(cfg.vocab)).collect(),
            (0..n).map(|_| rng.below(cfg.vocab)).collect(),
        )
    }

    #[test]
    fn distributed_step_produces_metrics() {
        let (model, experts, cfg) = build();
        let topology = Topology::paper_testbed();
        let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let mut rt = RealRuntime::launch(
            model,
            experts,
            sequential_placement(&cfg, 6),
            topology,
            DeviceId(0),
            workers,
            AdamWConfig::default(),
        );
        let (inputs, targets) = toy_batch(&cfg, 2, 1);
        let m = rt.train_step(&inputs, &targets, 2, cfg.seq_len);
        assert_eq!(m.step, 1);
        assert!(m.loss.unwrap().is_finite());
        assert!(m.traffic.total_bytes > 0, "tokens must cross the transport");
        assert!(m.traffic.external_total() > 0, "some experts are off-node");
        assert!(m.time.total() > 0.0);
        let (_, merged) = rt.shutdown();
        assert_eq!(merged.present_count(), cfg.blocks * cfg.experts);
    }

    #[test]
    fn losses_decrease_over_steps() {
        let (model, experts, cfg) = build();
        let topology = Topology::paper_testbed();
        let mut rt = RealRuntime::launch(
            model,
            experts,
            sequential_placement(&cfg, 6),
            topology,
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            AdamWConfig {
                lr: 3e-3,
                ..AdamWConfig::default()
            },
        );
        let (inputs, targets) = toy_batch(&cfg, 2, 2);
        let first = rt
            .train_step(&inputs, &targets, 2, cfg.seq_len)
            .loss
            .unwrap();
        let mut last = first;
        for _ in 0..15 {
            last = rt
                .train_step(&inputs, &targets, 2, cfg.seq_len)
                .loss
                .unwrap();
        }
        assert!(
            last < first,
            "distributed training must learn: {first} -> {last}"
        );
        rt.shutdown();
    }

    #[test]
    fn placement_on_master_device_moves_traffic_off_the_wire() {
        // All experts on the master-colocated worker: zero accounted bytes.
        let (model, experts, cfg) = build();
        let topology = Topology::paper_testbed();
        let all_on_zero = Placement::new(vec![vec![0; cfg.experts]; cfg.blocks], 6);
        let mut rt = RealRuntime::launch(
            model,
            experts,
            all_on_zero,
            topology,
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            AdamWConfig::default(),
        );
        let (inputs, targets) = toy_batch(&cfg, 1, 3);
        let m = rt.train_step(&inputs, &targets, 1, cfg.seq_len);
        // Only tiny control messages (StepBegin/StepEnd/StepDone) remain.
        assert!(
            m.traffic.total_bytes < 200,
            "master-local experts should leave only control traffic, got {}",
            m.traffic.total_bytes
        );
        rt.shutdown();
    }

    #[test]
    fn vela_placement_reduces_external_traffic_at_micro_scale() {
        // Build a skewed problem from a synthetic profile, then compare
        // sequential vs LP placement on the real runtime.
        let run = |placement: Placement| -> u64 {
            let (model, experts, cfg) = build();
            let mut rt = RealRuntime::launch(
                model,
                experts,
                placement,
                Topology::paper_testbed(),
                DeviceId(0),
                (0..6).map(DeviceId).collect(),
                AdamWConfig::default(),
            );
            let (inputs, targets) = toy_batch(&cfg, 2, 4);
            let mut total = 0;
            for _ in 0..3 {
                total += rt
                    .train_step(&inputs, &targets, 2, cfg.seq_len)
                    .traffic
                    .external_total();
            }
            rt.shutdown();
            total
        };

        // Measure the actual access frequencies first.
        let (mut model, mut experts, cfg) = build();
        let (inputs, _) = toy_batch(&cfg, 2, 4);
        model.forward(&inputs, 2, cfg.seq_len, &mut experts);
        let freqs: Vec<Vec<f64>> = model
            .routing_snapshot()
            .iter()
            .map(|info| info.frequencies().iter().map(|&f| f as f64).collect())
            .collect();
        let profile = vela_locality::LocalityProfile::from_frequencies("measured", freqs);

        let problem = PlacementProblem::new(
            Topology::paper_testbed(),
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            profile.to_matrix(),
            (2 * cfg.seq_len * cfg.top_k) as f64,
            (cfg.dim * 4) as u64,
            PlacementProblem::even_capacities(cfg.blocks, cfg.experts, 6, 1),
        );
        let vela_bytes = run(Strategy::Vela.place(&problem));
        let seq_bytes = run(Strategy::Sequential.place(&problem));
        assert!(
            vela_bytes < seq_bytes,
            "vela {vela_bytes} must beat sequential {seq_bytes}"
        );
    }
}

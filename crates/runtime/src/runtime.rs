//! The real-tensor distributed runtime: master process + Expert Manager
//! workers at micro scale.
//!
//! This is the paper's full system running end-to-end: the backbone trains
//! on the master thread, experts live in workers per the placement, and
//! every activation/gradient crosses the transport as serialized bytes.
//! Because the broker is computation-transparent, a distributed run is
//! bit-identical to a single-process run — the §V-A claim, verified in the
//! `parity` integration test.
//!
//! The transport behind the broker is pluggable
//! ([`TransportConfig`]): in-process channels (default), TCP loopback with
//! worker threads, or TCP loopback with real `vela_worker` OS processes
//! (`VELA_TRANSPORT=tcp`). In process mode the workers start empty;
//! [`RealRuntime::launch_with`] seeds their shards over the wire via
//! `ExpertState` frames and teardown fetches every expert back before
//! `Shutdown`, so [`RealRuntime::shutdown`] reassembles the identical
//! population regardless of backend.

use std::sync::Arc;

use vela_cluster::{CostModel, DeviceId, Topology, TrafficLedger};
use vela_model::{checkpoint, LocalExpertStore, MoeModel, MoeSpec};
use vela_nn::loss::cross_entropy;
use vela_nn::optim::{AdamW, AdamWConfig};

use vela_placement::{Placement, ReplicatedPlacement};

use crate::broker::BrokerClient;
use crate::launch::{launch_process_star, WorkerHandle};
use crate::message::Message;
use crate::metrics::{backbone_flops_per_token, master_worker_time, StepMetrics};
use crate::transport::{
    build_star, ExchangeConfig, MasterHub, MigrationMode, TransportConfig, TransportError,
};
use crate::worker::{expert_grads, ExpertManager, ExpertTemplate, WorkerBootstrap};

/// What one [`RealRuntime::apply_placement`] call set in motion.
///
/// In sync mode everything already happened: the parameters moved inside
/// the call and `traffic` holds the whole transfer. In overlap mode the
/// call only planned and announced the lanes — the chunk streams ride
/// subsequent step windows, `in_flight` lanes are still streaming, and
/// the runtime cuts each one over at the first step boundary after its
/// install acks (see [`RealRuntime::migrations_in_flight`] /
/// [`RealRuntime::finish_migrations`]).
#[derive(Debug, Clone)]
pub struct MigrationHandle {
    /// Experts whose primary changes under the target placement.
    pub moved: usize,
    /// Parameter bytes already moved when the call returned (the full
    /// transfer in sync mode; replica fast-path moves are always 0).
    pub bytes: u64,
    /// Lanes still streaming in the background (always 0 in sync mode).
    pub in_flight: usize,
    /// The migration mode that produced this handle.
    pub mode: MigrationMode,
    /// Ledger window of the apply call itself: the whole transfer in sync
    /// mode, just the snapshot requests in overlap mode — in-flight chunk
    /// traffic lands in the step windows it actually overlaps.
    pub traffic: vela_cluster::StepTraffic,
}

/// A live distributed fine-tuning session with real tensors.
#[derive(Debug)]
pub struct RealRuntime {
    model: MoeModel,
    broker: BrokerClient,
    workers: Vec<WorkerHandle>,
    template: ExpertTemplate,
    opt_model: AdamW,
    ledger: Arc<TrafficLedger>,
    cost: CostModel,
    master: DeviceId,
    worker_devices: Vec<DeviceId>,
    spec: MoeSpec,
    process_mode: bool,
    /// Flattened trainable-gradient bytes of one expert — the payload
    /// size of each replica gradient-sync transfer.
    grad_bytes: u32,
    step: usize,
    /// Cumulative wall seconds the training loop has been *blocked* on
    /// parameter movement: the sync-mode transfer loop, boundary pumps,
    /// and migration flushes. Overlap-mode chunk relays that ride inside
    /// step drains are not blocked time and are not counted here.
    migration_blocked: f64,
}

impl RealRuntime {
    /// Distributes `experts` across workers per `placement` and launches
    /// them over the transport selected by `VELA_TRANSPORT` (in-process
    /// channels by default). See [`launch_with`](Self::launch_with).
    pub fn launch(
        model: MoeModel,
        experts: LocalExpertStore,
        placement: impl Into<ReplicatedPlacement>,
        topology: Topology,
        master: DeviceId,
        worker_devices: Vec<DeviceId>,
        optim: AdamWConfig,
    ) -> Self {
        Self::launch_with(
            TransportConfig::from_env(),
            model,
            experts,
            placement,
            topology,
            master,
            worker_devices,
            optim,
        )
    }

    /// Distributes `experts` across workers per `placement` and launches
    /// the workers over `transport`.
    ///
    /// `optim` is used by the master for the backbone *and* by each worker
    /// for its shard, matching the paper's per-device optimization.
    ///
    /// Thread-backed transports hand each worker its shard by value;
    /// process mode spawns `vela_worker` children and seeds each shard over
    /// the wire (the seeding window is discarded from the ledger so
    /// per-step traffic stays transport-independent).
    ///
    /// # Panics
    /// Panics if the placement shape disagrees with the model or the
    /// worker list, if any expert is missing from `experts`, or if the
    /// transport cannot be brought up (e.g. the `vela_worker` binary is
    /// missing in process mode).
    #[allow(clippy::too_many_arguments)]
    pub fn launch_with(
        transport: TransportConfig,
        model: MoeModel,
        mut experts: LocalExpertStore,
        placement: impl Into<ReplicatedPlacement>,
        topology: Topology,
        master: DeviceId,
        worker_devices: Vec<DeviceId>,
        optim: AdamWConfig,
    ) -> Self {
        let placement: ReplicatedPlacement = placement.into();
        let cfg = model.config().clone();
        assert_eq!(placement.blocks(), cfg.blocks, "placement block mismatch");
        assert_eq!(
            placement.experts(),
            cfg.experts,
            "placement expert mismatch"
        );
        assert_eq!(
            placement.workers(),
            worker_devices.len(),
            "placement worker mismatch"
        );

        let template = ExpertTemplate::from_expert(experts.expert_mut(0, 0));
        let grad_bytes = (expert_grads(experts.expert_mut(0, 0)).len() * 4) as u32;
        let ledger = Arc::new(TrafficLedger::new(topology.clone()));
        let cost = CostModel::new(topology);

        let (hub, workers) = if transport.is_process_mode() {
            let bootstrap = WorkerBootstrap {
                blocks: cfg.blocks,
                experts: cfg.experts,
                optim,
                template: Some(template),
            };
            let (mut hub, children) =
                launch_process_star(ledger.clone(), master, &worker_devices, &bootstrap)
                    .unwrap_or_else(|e| panic!("launching worker processes failed: {e}"));
            seed_processes(&mut hub, &mut experts, &placement, &cfg);
            // Seeding crossed real sockets; drop its ledger window so step
            // traffic starts clean and matches the thread-backed transports.
            ledger.take_step();
            (
                hub,
                children.into_iter().map(WorkerHandle::Process).collect(),
            )
        } else {
            // Shard the expert population and hand each worker its shard.
            // The primary gets the expert itself; any extra replicas get
            // exact f32 checkpoint clones, so every copy starts
            // bit-identical.
            let mut shards: Vec<LocalExpertStore> = (0..worker_devices.len())
                .map(|_| LocalExpertStore::empty(cfg.blocks, cfg.experts))
                .collect();
            for l in 0..cfg.blocks {
                for e in 0..cfg.experts {
                    let mut ffn = experts.take(l, e);
                    let replicas = placement.replicas_of(l, e).to_vec();
                    if replicas.len() > 1 {
                        let mut data = Vec::new();
                        checkpoint::save(&mut ffn, &mut data).expect("in-memory save");
                        for &w in &replicas[1..] {
                            let mut copy = template.instantiate(l, e);
                            checkpoint::load(&mut copy, &mut data.as_slice())
                                .expect("in-memory load");
                            shards[w].insert(l, e, copy);
                        }
                    }
                    shards[replicas[0]].insert(l, e, ffn);
                }
            }
            let (hub, ports) = build_star(transport, ledger.clone(), master, &worker_devices)
                .unwrap_or_else(|e| {
                    panic!("bringing up {} transport failed: {e}", transport.label())
                });
            let workers = ports
                .into_iter()
                .zip(shards)
                .map(|(port, shard)| {
                    WorkerHandle::Thread(ExpertManager::spawn_with_template(
                        port,
                        shard,
                        optim,
                        Some(template),
                    ))
                })
                .collect();
            (hub, workers)
        };

        RealRuntime {
            spec: cfg.spec(),
            model,
            broker: BrokerClient::new(hub, placement),
            workers,
            template,
            opt_model: AdamW::new(optim),
            ledger,
            cost,
            master,
            worker_devices,
            process_mode: transport.is_process_mode(),
            grad_bytes,
            step: 0,
            migration_blocked: 0.0,
        }
    }

    /// The backbone model (e.g. for routing snapshots).
    pub fn model(&self) -> &MoeModel {
        &self.model
    }

    /// The placement currently in force (the replica relation; degree 1
    /// everywhere when replication is off).
    pub fn placement(&self) -> &ReplicatedPlacement {
        self.broker.placement()
    }

    /// Label of the transport backend carrying this session's traffic.
    pub fn transport_label(&self) -> &'static str {
        self.broker.transport()
    }

    /// Overrides the exchange shape (coalescing / microbatching) chosen
    /// from the environment at launch. Metrics and ledger windows are
    /// bitwise-identical for every shape; only wire frame counts change.
    pub fn set_exchange(&mut self, cfg: ExchangeConfig) {
        self.broker.set_exchange(cfg);
    }

    /// Overrides how `apply_placement` moves parameters (the
    /// `VELA_MIGRATION` knob): stop-the-world inside the call, or
    /// streamed in the background with a boundary cutover. Both end
    /// states are bit-identical.
    pub fn set_migration(&mut self, mode: MigrationMode) {
        let mut cfg = self.broker.exchange_config();
        cfg.migration = mode;
        self.broker.set_exchange(cfg);
    }

    /// Overrides the replica grad-sync shape (the `VELA_SYNC_OVERLAP`
    /// knob): sequential round-trips, or all fetches in flight at once.
    /// Workers only apply synced gradients on `StepEnd`, so both shapes
    /// are bit-identical.
    pub fn set_sync_overlap(&mut self, on: bool) {
        let mut cfg = self.broker.exchange_config();
        cfg.sync_overlap = on;
        self.broker.set_exchange(cfg);
    }

    /// Wire frames shipped/drained by the master hub so far (out, in).
    pub fn frame_counts(&self) -> (u64, u64) {
        self.broker.frame_counts()
    }

    /// Actual encoded wire bytes by frame kind (headers vs payloads) —
    /// the quantity `VELA_WIRE` / `VELA_QUANT` exist to shrink. Unlike
    /// the traffic ledger this *does* depend on the wire format.
    pub fn wire_stats(&self) -> crate::transport::WireStats {
        self.broker.wire_stats()
    }

    /// Migrates experts so the session matches `target`, between steps.
    ///
    /// In sync mode (`VELA_MIGRATION=sync`, the default) each expert is
    /// moved with a stop-the-world fetch/install round inside this call.
    /// In overlap mode (`VELA_MIGRATION=overlap`) the call returns as
    /// soon as the shadow installs are announced: parameter chunks stream
    /// through the per-link writer threads underneath the following
    /// training steps, the old placement keeps serving, and each expert
    /// cuts over at the first step boundary after its install acks — at
    /// which point it is bit-identical to a stop-the-world migration
    /// performed at that boundary.
    ///
    /// Any background lanes still in flight from a previous call are
    /// flushed first, so the plan always diffs against settled state.
    ///
    /// # Panics
    /// Panics if `target`'s shape disagrees with the session. Transport
    /// and protocol failures surface as [`TransportError`].
    pub fn apply_placement(
        &mut self,
        target: &Placement,
    ) -> Result<MigrationHandle, TransportError> {
        self.finish_migrations()?;
        self.ledger.take_step();
        let plan = self.broker.placement().primaries().diff(target);
        let mode = self.broker.exchange_config().migration;
        let mut bytes = 0;
        let moved = plan.len();
        let t0 = std::time::Instant::now();
        for (block, expert, _, to) in plan {
            match mode {
                MigrationMode::Sync => bytes += self.broker.migrate_expert(block, expert, to)?,
                MigrationMode::Overlap => self.broker.start_migration(block, expert, to)?,
            }
        }
        self.migration_blocked += t0.elapsed().as_secs_f64();
        Ok(MigrationHandle {
            moved,
            bytes,
            in_flight: self.broker.migrations_in_flight(),
            mode,
            traffic: self.ledger.take_step(),
        })
    }

    /// Background migration lanes still streaming or awaiting cutover.
    pub fn migrations_in_flight(&self) -> usize {
        self.broker.migrations_in_flight()
    }

    /// Parameter bytes moved by committed background lanes so far.
    pub fn migration_bytes(&self) -> u64 {
        self.broker.migration_bytes()
    }

    /// Engine step at which the most recent background lane cut over
    /// (0 = none yet). Post-cutover steps are bit-identical to a run that
    /// stop-the-world-migrated at this boundary.
    pub fn last_cutover_step(&self) -> u64 {
        self.broker.last_commit_step()
    }

    /// Blocks until every background lane has installed and cuts them all
    /// over. Returns the number of experts committed by this flush; 0
    /// when nothing was in flight.
    pub fn finish_migrations(&mut self) -> Result<usize, TransportError> {
        let t0 = std::time::Instant::now();
        let committed = self.broker.finish_migrations(self.step as u64)?;
        self.migration_blocked += t0.elapsed().as_secs_f64();
        Ok(committed)
    }

    /// Cumulative wall seconds the training loop has been blocked on
    /// parameter movement (sync transfers, boundary pumps, flushes) since
    /// launch. In overlap mode the chunk streams ride the step windows,
    /// so only the apply call and the per-boundary pump/cutover service
    /// accrue here — the benchmark's exposed-time column reads this.
    pub fn migration_blocked_secs(&self) -> f64 {
        self.migration_blocked
    }

    /// Runs one full distributed fine-tuning step and returns its metrics.
    ///
    /// # Panics
    /// Panics if `inputs.len() != batch * seq` (propagated from the model)
    /// or the transport fails mid-exchange (the [`ExpertProvider`] seam is
    /// infallible); control-plane failures surface as [`TransportError`].
    ///
    /// [`ExpertProvider`]: vela_model::provider::ExpertProvider
    pub fn train_step(
        &mut self,
        inputs: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
    ) -> Result<StepMetrics, TransportError> {
        self.step += 1;
        self.ledger.take_step();
        // `BrokerClient::step_begin` advances the process-unique trace
        // step, so it must precede the span open for the span to be
        // tagged with this step.
        self.broker.step_begin()?;
        let _span = vela_obs::span("runtime.step");
        let stats = self
            .model
            .train_step(inputs, targets, batch, seq, &mut self.broker);
        {
            let _opt = vela_obs::span("runtime.optimizer");
            self.opt_model.step(&mut self.model);
        }
        // Replica gradient sync rides between backward and StepEnd: the
        // workers' optimizers only run on StepEnd, so every replica steps
        // on the serving replica's gradients and copies stay bit-identical.
        // In-flight migration destinations ride the same window, keeping
        // each shadow install in lockstep with its source.
        let sync_flows = {
            let _sync = vela_obs::span("runtime.grad_sync");
            self.broker.sync_replica_grads(self.grad_bytes)?
        };
        self.broker.step_end_and_wait()?;
        // Step boundary: relay any lane chunks that already arrived,
        // refill the streaming slots, and — once the whole plan has
        // installed — cut every lane over together; both sides observe
        // the flip before the next `StepBegin` on their FIFO links.
        if self.broker.migrations_in_flight() > 0 {
            let t0 = std::time::Instant::now();
            self.broker.pump_migrations(self.step as u64)?;
            self.migration_blocked += t0.elapsed().as_secs_f64();
        }

        let traffic = self.ledger.take_step();
        let logs = self.broker.take_phase_logs();
        let master_flops = inputs.len() as f64 * backbone_flops_per_token(&self.spec, seq) * 3.0;
        let mut time = master_worker_time(
            &self.cost,
            self.master,
            &self.worker_devices,
            &logs,
            &self.spec,
            master_flops,
        );
        // The sync protocol is sequential round-trips through the master,
        // so its modeled time is the sum of the per-flow transfer times.
        time.sync_s += sync_flows
            .iter()
            .map(|&(w, bytes)| {
                self.cost
                    .transfer_time(self.master, self.worker_devices[w], bytes)
            })
            .sum::<f64>();
        Ok(StepMetrics {
            step: self.step,
            loss: Some(stats.loss),
            traffic,
            time,
        })
    }

    /// Evaluates the loss on a batch without updating anything (used by
    /// parity checks).
    pub fn evaluate(
        &mut self,
        inputs: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
    ) -> f32 {
        let logits = self.model.forward(inputs, batch, seq, &mut self.broker);
        self.broker.take_phase_logs();
        cross_entropy(&logits, targets).0
    }

    /// Shuts the workers down and reassembles the expert population.
    ///
    /// Thread-backed workers hand their shards back on join; process-mode
    /// workers have theirs fetched over the wire (`FetchExpert` /
    /// `ExpertState`) before `Shutdown`, then the children are reaped.
    /// Either way the returned store holds every expert.
    pub fn shutdown(self) -> (MoeModel, LocalExpertStore) {
        let RealRuntime {
            model,
            mut broker,
            workers,
            template,
            process_mode,
            step,
            ..
        } = self;
        // Settle any background lanes first: a half-streamed expert must
        // either finish installing or stay owned by its source before the
        // population is reassembled.
        if let Err(e) = broker.finish_migrations(step as u64) {
            vela_obs::warn!("flushing in-flight migrations at shutdown failed: {e}");
        }
        let cfg = model.config().clone();
        let mut merged = LocalExpertStore::empty(cfg.blocks, cfg.experts);
        if process_mode {
            for l in 0..cfg.blocks {
                for e in 0..cfg.experts {
                    let data = broker
                        .fetch_expert(l, e)
                        .unwrap_or_else(|err| panic!("fetching expert back failed: {err}"));
                    let mut ffn = template.instantiate(l, e);
                    checkpoint::load(&mut ffn, &mut data.as_slice())
                        .expect("valid expert checkpoint");
                    merged.insert(l, e, ffn);
                }
            }
        }
        if let Err(e) = broker.shutdown() {
            vela_obs::warn!("shutdown broadcast failed (workers already gone?): {e}");
        }
        for worker in workers {
            if let Some(mut shard) = worker.finish() {
                for l in 0..cfg.blocks {
                    for e in 0..cfg.experts {
                        // Replicas are bit-identical, so the first copy
                        // seen wins and the rest are dropped.
                        if shard.contains(l, e) && !merged.contains(l, e) {
                            merged.insert(l, e, shard.take(l, e));
                        }
                    }
                }
            }
        }
        vela_obs::flush();
        (model, merged)
    }
}

/// Ships every expert to its placed worker process as an accounted
/// `ExpertState` frame and waits for all install acks.
///
/// With `VELA_QUANT=int8` (and the packed wire) the blobs cross the wire
/// as `VELQ` checkpoints at roughly a quarter of the f32 size; workers
/// install the dequantized weights (the lossy opt-in), while teardown
/// fetch-back always rides exact f32.
fn seed_processes(
    hub: &mut MasterHub,
    experts: &mut LocalExpertStore,
    placement: &ReplicatedPlacement,
    cfg: &vela_model::ModelConfig,
) {
    let quantized = crate::transport::ExchangeConfig::from_env().quantized();
    let mut outstanding = 0usize;
    for l in 0..cfg.blocks {
        for e in 0..cfg.experts {
            let mut ffn = experts.take(l, e);
            let mut data = Vec::new();
            checkpoint::save(&mut ffn, &mut data).expect("in-memory save");
            if quantized {
                data = checkpoint::quantize(&data).expect("in-memory transcode");
            }
            // Every replica receives the same blob, so copies start
            // bit-identical on whichever worker hosts them.
            for &w in placement.replicas_of(l, e) {
                hub.send(
                    w,
                    &Message::ExpertState {
                        block: l as u32,
                        expert: e as u32,
                        data: data.clone(),
                    },
                )
                .unwrap_or_else(|err| panic!("seeding expert ({l},{e}) failed: {err}"));
                outstanding += 1;
            }
        }
    }
    while outstanding > 0 {
        let (_, ack) = hub
            .recv()
            .unwrap_or_else(|err| panic!("waiting for install acks failed: {err}"));
        assert!(
            matches!(ack, Message::InstallDone { .. }),
            "expected InstallDone, got {ack:?}"
        );
        outstanding -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vela_model::ModelConfig;
    use vela_placement::{PlacementProblem, Strategy};
    use vela_tensor::rng::DetRng;

    fn build() -> (MoeModel, LocalExpertStore, ModelConfig) {
        let cfg = ModelConfig::test_small();
        let mut rng = DetRng::new(11);
        let (model, experts) = MoeModel::new(&cfg, &mut rng);
        (model, experts, cfg)
    }

    fn sequential_placement(cfg: &ModelConfig, workers: usize) -> Placement {
        let assign: Vec<Vec<usize>> = (0..cfg.blocks)
            .map(|_| (0..cfg.experts).map(|e| e % workers).collect())
            .collect();
        Placement::new(assign, workers)
    }

    fn toy_batch(cfg: &ModelConfig, batch: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut rng = DetRng::new(seed);
        let n = batch * cfg.seq_len;
        (
            (0..n).map(|_| rng.below(cfg.vocab)).collect(),
            (0..n).map(|_| rng.below(cfg.vocab)).collect(),
        )
    }

    #[test]
    fn distributed_step_produces_metrics() {
        let (model, experts, cfg) = build();
        let topology = Topology::paper_testbed();
        let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let mut rt = RealRuntime::launch_with(
            TransportConfig::channel(),
            model,
            experts,
            sequential_placement(&cfg, 6),
            topology,
            DeviceId(0),
            workers,
            AdamWConfig::default(),
        );
        assert_eq!(rt.transport_label(), "channel");
        let (inputs, targets) = toy_batch(&cfg, 2, 1);
        let m = rt.train_step(&inputs, &targets, 2, cfg.seq_len).unwrap();
        assert_eq!(m.step, 1);
        assert!(m.loss.unwrap().is_finite());
        assert!(m.traffic.total_bytes > 0, "tokens must cross the transport");
        assert!(m.traffic.external_total() > 0, "some experts are off-node");
        assert!(m.time.total() > 0.0);
        let (_, merged) = rt.shutdown();
        assert_eq!(merged.present_count(), cfg.blocks * cfg.experts);
    }

    #[test]
    fn losses_decrease_over_steps() {
        let (model, experts, cfg) = build();
        let topology = Topology::paper_testbed();
        let mut rt = RealRuntime::launch(
            model,
            experts,
            sequential_placement(&cfg, 6),
            topology,
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            AdamWConfig {
                lr: 3e-3,
                ..AdamWConfig::default()
            },
        );
        let (inputs, targets) = toy_batch(&cfg, 2, 2);
        let first = rt
            .train_step(&inputs, &targets, 2, cfg.seq_len)
            .unwrap()
            .loss
            .unwrap();
        let mut last = first;
        for _ in 0..15 {
            last = rt
                .train_step(&inputs, &targets, 2, cfg.seq_len)
                .unwrap()
                .loss
                .unwrap();
        }
        assert!(
            last < first,
            "distributed training must learn: {first} -> {last}"
        );
        rt.shutdown();
    }

    #[test]
    fn placement_on_master_device_moves_traffic_off_the_wire() {
        // All experts on the master-colocated worker: zero accounted bytes.
        let (model, experts, cfg) = build();
        let topology = Topology::paper_testbed();
        let all_on_zero = Placement::new(vec![vec![0; cfg.experts]; cfg.blocks], 6);
        let mut rt = RealRuntime::launch(
            model,
            experts,
            all_on_zero,
            topology,
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            AdamWConfig::default(),
        );
        let (inputs, targets) = toy_batch(&cfg, 1, 3);
        let m = rt.train_step(&inputs, &targets, 1, cfg.seq_len).unwrap();
        // Only tiny control messages (StepBegin/StepEnd/StepDone) remain.
        assert!(
            m.traffic.total_bytes < 200,
            "master-local experts should leave only control traffic, got {}",
            m.traffic.total_bytes
        );
        rt.shutdown();
    }

    #[test]
    fn tcp_threads_transport_is_a_drop_in_replacement() {
        // Same model, same batch, same steps — once over channels, once
        // over real loopback sockets. Losses must agree bit-for-bit and
        // the reassembled population must be complete.
        let run = |transport: TransportConfig| {
            let (model, experts, cfg) = build();
            let mut rt = RealRuntime::launch_with(
                transport,
                model,
                experts,
                sequential_placement(&cfg, 6),
                Topology::paper_testbed(),
                DeviceId(0),
                (0..6).map(DeviceId).collect(),
                AdamWConfig::default(),
            );
            let (inputs, targets) = toy_batch(&cfg, 2, 9);
            let losses: Vec<f32> = (0..2)
                .map(|_| {
                    rt.train_step(&inputs, &targets, 2, cfg.seq_len)
                        .unwrap()
                        .loss
                        .unwrap()
                })
                .collect();
            let (_, merged) = rt.shutdown();
            assert_eq!(merged.present_count(), cfg.blocks * cfg.experts);
            losses
        };
        let over_channel = run(TransportConfig::channel());
        let over_tcp = run(TransportConfig::tcp_threads());
        assert_eq!(
            over_channel.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            over_tcp.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "transport must not change a single bit of the computation"
        );
    }

    #[test]
    fn vela_placement_reduces_external_traffic_at_micro_scale() {
        // Build a skewed problem from a synthetic profile, then compare
        // sequential vs LP placement on the real runtime.
        let run = |placement: Placement| -> u64 {
            let (model, experts, cfg) = build();
            let mut rt = RealRuntime::launch(
                model,
                experts,
                placement,
                Topology::paper_testbed(),
                DeviceId(0),
                (0..6).map(DeviceId).collect(),
                AdamWConfig::default(),
            );
            let (inputs, targets) = toy_batch(&cfg, 2, 4);
            let mut total = 0;
            for _ in 0..3 {
                total += rt
                    .train_step(&inputs, &targets, 2, cfg.seq_len)
                    .unwrap()
                    .traffic
                    .external_total();
            }
            rt.shutdown();
            total
        };

        // Measure the actual access frequencies first.
        let (mut model, mut experts, cfg) = build();
        let (inputs, _) = toy_batch(&cfg, 2, 4);
        model.forward(&inputs, 2, cfg.seq_len, &mut experts);
        let freqs: Vec<Vec<f64>> = model
            .routing_snapshot()
            .iter()
            .map(|info| info.frequencies().iter().map(|&f| f as f64).collect())
            .collect();
        let profile = vela_locality::LocalityProfile::from_frequencies("measured", freqs);

        let problem = PlacementProblem::new(
            Topology::paper_testbed(),
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            profile.to_matrix(),
            (2 * cfg.seq_len * cfg.top_k) as f64,
            (cfg.dim * 4) as u64,
            PlacementProblem::even_capacities(cfg.blocks, cfg.experts, 6, 1),
        );
        let vela_bytes = run(Strategy::Vela.place(&problem));
        let seq_bytes = run(Strategy::Sequential.place(&problem));
        assert!(
            vela_bytes < seq_bytes,
            "vela {vela_bytes} must beat sequential {seq_bytes}"
        );
    }
}

//! Routing-trace sampling for the scale-virtual engines.
//!
//! The evaluation replays *measured* locality profiles at Mixtral scale:
//! for each step and block, every token draws `k` distinct experts from the
//! profile's distribution (exactly how the gate behaves in expectation).

use vela_locality::LocalityProfile;
use vela_tensor::rng::DetRng;

/// Samples per-expert assignment counts for `tokens` tokens of one block.
///
/// Each token picks `k` distinct experts weighted by the profile, so the
/// returned counts sum to `tokens · k`.
pub fn sample_expert_counts(
    profile: &LocalityProfile,
    block: usize,
    tokens: usize,
    k: usize,
    rng: &mut DetRng,
) -> Vec<usize> {
    let mut counts = vec![0usize; profile.experts()];
    for _ in 0..tokens {
        for e in profile.sample_topk(block, k, rng) {
            counts[e] += 1;
        }
    }
    counts
}

/// Samples per-device, per-expert counts for expert parallelism's sharded
/// inputs: `tokens_per_device[d]` tokens originate on device `d`.
pub fn sample_sharded_counts(
    profile: &LocalityProfile,
    block: usize,
    tokens_per_device: &[usize],
    k: usize,
    rng: &mut DetRng,
) -> Vec<Vec<usize>> {
    tokens_per_device
        .iter()
        .map(|&t| sample_expert_counts(profile, block, t, k, rng))
        .collect()
}

/// Splits `tokens` as evenly as possible across `devices` (data-parallel
/// input sharding).
pub fn shard_tokens(tokens: usize, devices: usize) -> Vec<usize> {
    let base = tokens / devices;
    let extra = tokens % devices;
    (0..devices)
        .map(|d| base + usize::from(d < extra))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_token_slots() {
        let profile = LocalityProfile::synthetic("p", 2, 8, 1.2, 3);
        let mut rng = DetRng::new(1);
        let counts = sample_expert_counts(&profile, 0, 500, 2, &mut rng);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        assert_eq!(counts.len(), 8);
    }

    #[test]
    fn sampling_tracks_the_profile() {
        let profile = LocalityProfile::synthetic("p", 1, 6, 2.0, 7);
        let mut rng = DetRng::new(2);
        let counts = sample_expert_counts(&profile, 0, 20_000, 1, &mut rng);
        let hottest_by_profile = (0..6)
            .max_by(|&a, &b| profile.prob(0, a).partial_cmp(&profile.prob(0, b)).unwrap())
            .unwrap();
        let hottest_by_sample = (0..6).max_by_key(|&e| counts[e]).unwrap();
        assert_eq!(hottest_by_profile, hottest_by_sample);
    }

    #[test]
    fn sharded_counts_shape() {
        let profile = LocalityProfile::synthetic("p", 1, 4, 1.0, 5);
        let mut rng = DetRng::new(3);
        let shards = shard_tokens(100, 6);
        let counts = sample_sharded_counts(&profile, 0, &shards, 2, &mut rng);
        assert_eq!(counts.len(), 6);
        let total: usize = counts.iter().flatten().sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn shard_tokens_is_balanced_and_complete() {
        assert_eq!(shard_tokens(10, 3), vec![4, 3, 3]);
        assert_eq!(shard_tokens(6, 6), vec![1; 6]);
        assert_eq!(shard_tokens(4096, 6).iter().sum::<usize>(), 4096);
        let shards = shard_tokens(4096, 6);
        assert!(shards.iter().max().unwrap() - shards.iter().min().unwrap() <= 1);
    }

    #[test]
    fn sampling_is_deterministic() {
        let profile = LocalityProfile::synthetic("p", 1, 5, 1.5, 9);
        let a = sample_expert_counts(&profile, 0, 100, 2, &mut DetRng::new(4));
        let b = sample_expert_counts(&profile, 0, 100, 2, &mut DetRng::new(4));
        assert_eq!(a, b);
    }
}

//! Cross-engine integration tests: determinism, accounting consistency and
//! the structural relationships between the virtual engines.

use vela_cluster::{DeviceId, Topology};
use vela_locality::LocalityProfile;
use vela_model::MoeSpec;
use vela_placement::Placement;
use vela_runtime::{EpEngine, RunSummary, ScaleConfig, VirtualEngine};

fn spec() -> MoeSpec {
    MoeSpec {
        blocks: 6,
        experts: 8,
        top_k: 2,
        hidden: 4096,
        ffn: 14336,
        bits: 16,
    }
}

fn scale(spec: MoeSpec) -> ScaleConfig {
    ScaleConfig {
        batch: 4,
        seq: 64,
        drift: 0.0,
        ..ScaleConfig::paper_default(spec)
    }
}

fn seq_placement(spec: &MoeSpec) -> Placement {
    Placement::new(
        (0..spec.blocks)
            .map(|_| (0..spec.experts).map(|e| e % 6).collect())
            .collect(),
        6,
    )
}

fn run_virtual(steps: usize) -> RunSummary {
    let spec = spec();
    let profile = LocalityProfile::synthetic("d", spec.blocks, spec.experts, 1.0, 3);
    let mut engine = VirtualEngine::launch(
        Topology::paper_testbed(),
        DeviceId(0),
        (0..6).map(DeviceId).collect(),
        seq_placement(&spec),
        profile,
        scale(spec),
    );
    let metrics = engine.run(steps);
    engine.shutdown();
    RunSummary::from_steps(&metrics)
}

#[test]
fn virtual_engine_is_deterministic() {
    let a = run_virtual(4);
    let b = run_virtual(4);
    assert_eq!(a, b);
}

#[test]
fn virtual_traffic_scales_linearly_with_workload() {
    let spec = spec();
    let profile = LocalityProfile::synthetic("d", spec.blocks, spec.experts, 1.0, 3);
    let run = |seq: usize| {
        let mut engine = VirtualEngine::launch(
            Topology::paper_testbed(),
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            seq_placement(&spec),
            profile.clone(),
            ScaleConfig {
                batch: 4,
                seq,
                drift: 0.0,
                ..ScaleConfig::paper_default(spec)
            },
        );
        let m = engine.step();
        engine.shutdown();
        m.traffic.total_bytes
    };
    let small = run(32);
    let large = run(128);
    let ratio = large as f64 / small as f64;
    assert!(
        (ratio - 4.0).abs() < 0.25,
        "4x tokens should be ~4x bytes, got {ratio:.2}x"
    );
}

#[test]
fn ep_and_virtual_account_the_same_token_volume() {
    // Same spec, same workload, near-uniform profile: EP moves ~(N-1)/N of
    // assignments (sharded sources), the star moves ~(N-1)/N of them too
    // (master-colocated worker is free), so total token bytes should be
    // within a factor ~2 of each other (EP adds the all-reduce ring).
    let spec = spec();
    let profile = LocalityProfile::synthetic("u", spec.blocks, spec.experts, 0.1, 7);
    let mut engine = VirtualEngine::launch(
        Topology::paper_testbed(),
        DeviceId(0),
        (0..6).map(DeviceId).collect(),
        seq_placement(&spec),
        profile.clone(),
        scale(spec),
    );
    let star = engine.step().traffic.total_bytes;
    engine.shutdown();

    let mut ep = EpEngine::new(
        Topology::paper_testbed(),
        (0..6).map(DeviceId).collect(),
        profile,
        scale(spec),
    );
    let ep_bytes = ep.step().traffic.total_bytes;
    let ratio = ep_bytes as f64 / star as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "EP {ep_bytes} vs star {star} (ratio {ratio:.2})"
    );
}

#[test]
fn hot_placement_on_master_cuts_traffic() {
    let spec = spec();
    // Experts 0 and 1 hot (top-2 routing selects two distinct experts per
    // token, so a single hot expert can capture at most half the mass).
    let mut rows = vec![vec![0.001; spec.experts]; spec.blocks];
    for row in &mut rows {
        row[0] = 0.5;
        row[1] = 0.5;
    }
    let profile = LocalityProfile::from_frequencies("hot", rows);
    let run = |hot_worker: usize| {
        let placement = Placement::new(
            (0..spec.blocks)
                .map(|_| {
                    (0..spec.experts)
                        .map(|e| if e < 2 { hot_worker } else { 5 })
                        .collect()
                })
                .collect(),
            6,
        );
        let mut engine = VirtualEngine::launch(
            Topology::paper_testbed(),
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            placement,
            profile.clone(),
            scale(spec),
        );
        let m = engine.step();
        engine.shutdown();
        m.traffic.external_total()
    };
    let hot_on_master = run(0);
    let hot_remote = run(4);
    assert!(
        hot_on_master < hot_remote / 2,
        "master-local hot expert: {hot_on_master} vs remote {hot_remote}"
    );
}

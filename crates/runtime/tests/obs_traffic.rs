//! Cross-checks the vela-obs per-link counters against the engine's own
//! [`StepTraffic`] accounting: both observe `TrafficLedger::record`, so
//! over a run their totals must agree *exactly* — bit-for-bit, not
//! approximately. Lives in its own integration binary because trace mode
//! is process-global.

use vela_cluster::{DeviceId, Topology};
use vela_locality::LocalityProfile;
use vela_model::MoeSpec;
use vela_placement::Placement;
use vela_runtime::virtual_engine::ScaleConfig;
use vela_runtime::VirtualEngine;

#[test]
fn obs_link_counters_match_step_traffic_exactly() {
    vela_obs::set_mode(vela_obs::TraceMode::Counters);
    vela_obs::reset_counters();

    let spec = MoeSpec {
        blocks: 4,
        experts: 8,
        top_k: 2,
        hidden: 4096,
        ffn: 14336,
        bits: 16,
    };
    let scale = ScaleConfig {
        batch: 4,
        seq: 64,
        ..ScaleConfig::paper_default(spec)
    };
    let topology = Topology::paper_testbed();
    let profile = LocalityProfile::synthetic("p", spec.blocks, spec.experts, 1.2, 3);
    let placement = Placement::new(
        (0..spec.blocks)
            .map(|_| (0..spec.experts).map(|e| e % 6).collect())
            .collect(),
        6,
    );
    let mut engine = VirtualEngine::launch(
        topology.clone(),
        DeviceId(0),
        (0..6).map(DeviceId).collect(),
        placement,
        profile,
        scale,
    );

    let metrics = engine.run(3);
    let mut internal = 0u64;
    let mut external = 0u64;
    for m in &metrics {
        internal += m.traffic.internal_bytes;
        external += m.traffic.external_total();
    }
    let total: u64 = metrics.iter().map(|m| m.traffic.total_bytes).sum();
    assert_eq!(total, internal + external, "StepTraffic self-consistency");
    assert!(external > 0, "run must produce cross-node traffic");

    // Snapshot before shutdown: the shutdown broadcast is recorded by the
    // ledger too, but never drained into a StepTraffic by another
    // take_step, so it must not be in the comparison window.
    let counters = vela_obs::counter_snapshot();
    engine.shutdown();

    let mut obs_internal = 0u64;
    let mut obs_external = 0u64;
    for (name, value) in &counters {
        let Some(link) = name.strip_prefix("cluster.link.") else {
            continue;
        };
        let (src, dst) = link.split_once("->").expect("link counter name");
        let src: usize = src.parse().expect("src device id");
        let dst: usize = dst.parse().expect("dst device id");
        if topology.node_of(DeviceId(src)) == topology.node_of(DeviceId(dst)) {
            obs_internal += value;
        } else {
            obs_external += value;
        }
    }
    assert_eq!(obs_internal, internal, "internal bytes must match exactly");
    assert_eq!(obs_external, external, "external bytes must match exactly");

    // The aggregate counters mirror the same split.
    let get = |key: &str| {
        counters
            .iter()
            .find(|(n, _)| n == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(get("cluster.bytes.internal"), internal);
    assert_eq!(get("cluster.bytes.external"), external);
}

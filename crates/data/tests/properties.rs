//! Randomized property tests for corpora, tokenizer and batching.
//!
//! Each property is checked over many [`DetRng`]-seeded random cases, so
//! the suite is fully deterministic and needs no external test framework.

use vela_data::{CharTokenizer, Corpus, TokenDataset};
use vela_tensor::rng::DetRng;

const CASES: u64 = 24;

/// Every corpus hits its target length exactly and stays inside the
/// tokenizer charset, for any seed.
#[test]
fn corpora_are_well_formed() {
    let tok = CharTokenizer::new();
    for seed in 0..CASES {
        let len = 500 + DetRng::new(seed).below(4_500);
        for corpus in [
            Corpus::TinyShakespeare,
            Corpus::WikiText,
            Corpus::Alpaca,
            Corpus::Mixed,
        ] {
            let text = corpus.generate(len, seed);
            assert_eq!(text.len(), len, "{corpus} wrong length for seed {seed}");
            let unk = tok
                .encode(&text)
                .into_iter()
                .filter(|&id| id == tok.unk_id())
                .count();
            assert_eq!(unk, 0, "{corpus} leaked unknown chars for seed {seed}");
        }
    }
}

/// Encoding then decoding any generated text is the identity.
#[test]
fn tokenizer_roundtrip_on_corpora() {
    let tok = CharTokenizer::new();
    for seed in 0..CASES {
        let text = Corpus::Mixed.generate(2_000, seed);
        assert_eq!(tok.decode(&tok.encode(&text)), text, "seed {seed}");
    }
}

/// Sampled batches always have aligned shifted targets and in-range ids.
#[test]
fn batches_are_well_formed() {
    let tok = CharTokenizer::new();
    for seed in 0..CASES {
        let mut dims = DetRng::new(seed ^ 0x5EED);
        let batch = 1 + dims.below(5);
        let seq = 4 + dims.below(28);
        let data = TokenDataset::from_text(&tok, &Corpus::Alpaca.generate(4_000, seed));
        let b = data.sample_batch(batch, seq, &mut DetRng::new(seed));
        assert_eq!(b.inputs.len(), batch * seq);
        assert_eq!(b.targets.len(), batch * seq);
        for row in 0..batch {
            for i in 0..seq - 1 {
                assert_eq!(
                    b.inputs[row * seq + i + 1],
                    b.targets[row * seq + i],
                    "seed {seed}: row {row} not shifted"
                );
            }
        }
        assert!(b.inputs.iter().all(|&t| t < tok.vocab_size()));
    }
}

/// Sequential batches tile the dataset without overlap for any shape.
#[test]
fn sequential_batches_tile() {
    for seed in 0..CASES {
        let mut dims = DetRng::new(seed ^ 0x711E);
        let tokens = 30 + dims.below(270);
        let batch = 1 + dims.below(4);
        let seq = 2 + dims.below(10);
        let data = TokenDataset::from_tokens((0..tokens).collect());
        let batches = data.sequential_batches(batch, seq);
        let mut seen = Vec::new();
        for b in &batches {
            assert!(b.batch_size <= batch, "seed {seed}");
            assert_eq!(b.seq_len, seq, "seed {seed}");
            seen.extend_from_slice(&b.inputs);
        }
        // Consecutive windows advance by seq: inputs form a strictly
        // increasing run of consecutive ids.
        for w in seen.windows(2) {
            assert_eq!(w[1], w[0] + 1, "seed {seed}");
        }
    }
}

/// Different corpora never generate identical text under one seed.
#[test]
fn corpora_are_distinct() {
    for seed in 0..CASES {
        let a = Corpus::TinyShakespeare.generate(1_000, seed);
        let b = Corpus::WikiText.generate(1_000, seed);
        let c = Corpus::Alpaca.generate(1_000, seed);
        assert_ne!(a, b, "seed {seed}");
        assert_ne!(b, c, "seed {seed}");
        assert_ne!(a, c, "seed {seed}");
    }
}

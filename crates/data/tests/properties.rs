//! Property-based tests for corpora, tokenizer and batching.

use proptest::prelude::*;
use vela_data::{CharTokenizer, Corpus, TokenDataset};
use vela_tensor::rng::DetRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every corpus hits its target length exactly and stays inside the
    /// tokenizer charset, for any seed.
    #[test]
    fn corpora_are_well_formed(seed in 0u64..1_000, len in 500usize..5_000) {
        let tok = CharTokenizer::new();
        for corpus in [
            Corpus::TinyShakespeare,
            Corpus::WikiText,
            Corpus::Alpaca,
            Corpus::Mixed,
        ] {
            let text = corpus.generate(len, seed);
            prop_assert_eq!(text.len(), len, "{} wrong length", corpus);
            let unk = tok
                .encode(&text)
                .into_iter()
                .filter(|&id| id == tok.unk_id())
                .count();
            prop_assert_eq!(unk, 0, "{} leaked unknown chars", corpus);
        }
    }

    /// Encoding then decoding any generated text is the identity.
    #[test]
    fn tokenizer_roundtrip_on_corpora(seed in 0u64..1_000) {
        let tok = CharTokenizer::new();
        let text = Corpus::Mixed.generate(2_000, seed);
        prop_assert_eq!(tok.decode(&tok.encode(&text)), text);
    }

    /// Sampled batches always have aligned shifted targets and in-range ids.
    #[test]
    fn batches_are_well_formed(
        seed in 0u64..1_000,
        batch in 1usize..6,
        seq in 4usize..32,
    ) {
        let tok = CharTokenizer::new();
        let data = TokenDataset::from_text(&tok, &Corpus::Alpaca.generate(4_000, seed));
        let b = data.sample_batch(batch, seq, &mut DetRng::new(seed));
        prop_assert_eq!(b.inputs.len(), batch * seq);
        prop_assert_eq!(b.targets.len(), batch * seq);
        for row in 0..batch {
            for i in 0..seq - 1 {
                prop_assert_eq!(b.inputs[row * seq + i + 1], b.targets[row * seq + i]);
            }
        }
        prop_assert!(b.inputs.iter().all(|&t| t < tok.vocab_size()));
    }

    /// Sequential batches tile the dataset without overlap for any shape.
    #[test]
    fn sequential_batches_tile(tokens in 30usize..300, batch in 1usize..5, seq in 2usize..12) {
        let data = TokenDataset::from_tokens((0..tokens).collect());
        let batches = data.sequential_batches(batch, seq);
        let mut seen = Vec::new();
        for b in &batches {
            prop_assert!(b.batch_size <= batch);
            prop_assert_eq!(b.seq_len, seq);
            seen.extend_from_slice(&b.inputs);
        }
        // Consecutive windows advance by seq: inputs form a strictly
        // increasing run of consecutive ids.
        for w in seen.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
    }

    /// Different corpora never generate identical text under one seed.
    #[test]
    fn corpora_are_distinct(seed in 0u64..500) {
        let a = Corpus::TinyShakespeare.generate(1_000, seed);
        let b = Corpus::WikiText.generate(1_000, seed);
        let c = Corpus::Alpaca.generate(1_000, seed);
        prop_assert_ne!(&a, &b);
        prop_assert_ne!(&b, &c);
        prop_assert_ne!(&a, &c);
    }
}

//! Character-level tokenizer with a fixed, corpus-independent vocabulary.

/// The fixed character set shared by every corpus in the workspace.
///
/// Keeping the vocabulary fixed (rather than derived per corpus) means one
/// pre-trained model can be fine-tuned on any corpus without id remapping —
/// mirroring how a real pre-trained LLM's tokenizer is reused downstream.
const CHARSET: &str =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,:;!?'\"()-\n#=[]";

/// A character-level tokenizer over a fixed vocabulary.
///
/// Unknown characters map to the dedicated `<unk>` id (the last id).
#[derive(Debug, Clone)]
pub struct CharTokenizer {
    chars: Vec<char>,
    lookup: Vec<Option<usize>>,
}

impl CharTokenizer {
    /// Creates the workspace-standard tokenizer.
    pub fn new() -> Self {
        let chars: Vec<char> = CHARSET.chars().collect();
        let mut lookup = vec![None; 128];
        for (i, &c) in chars.iter().enumerate() {
            lookup[c as usize] = Some(i);
        }
        CharTokenizer { chars, lookup }
    }

    /// Vocabulary size, including the `<unk>` id.
    pub fn vocab_size(&self) -> usize {
        self.chars.len() + 1
    }

    /// The id reserved for unknown characters.
    pub fn unk_id(&self) -> usize {
        self.chars.len()
    }

    /// Encodes text into token ids.
    pub fn encode(&self, text: &str) -> Vec<usize> {
        text.chars()
            .map(|c| {
                let idx = c as usize;
                if idx < 128 {
                    self.lookup[idx].unwrap_or(self.chars.len())
                } else {
                    self.chars.len()
                }
            })
            .collect()
    }

    /// Decodes token ids back into text; `<unk>` renders as `ä` (a character
    /// deliberately outside the charset).
    ///
    /// # Panics
    /// Panics if any id exceeds the vocabulary.
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter()
            .map(|&id| {
                assert!(id < self.vocab_size(), "id {id} out of vocab");
                if id == self.unk_id() {
                    'ä'
                } else {
                    self.chars[id]
                }
            })
            .collect()
    }
}

impl Default for CharTokenizer {
    fn default() -> Self {
        CharTokenizer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_known_text() {
        let tok = CharTokenizer::new();
        let text = "Hello, World! 42\n";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn unknown_chars_map_to_unk() {
        let tok = CharTokenizer::new();
        let ids = tok.encode("a€b");
        assert_eq!(ids[1], tok.unk_id());
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn vocab_size_is_stable() {
        let tok = CharTokenizer::new();
        // Charset + <unk>; the model configs depend on this being stable.
        assert_eq!(tok.vocab_size(), CHARSET.chars().count() + 1);
        assert!(tok.vocab_size() < 100, "char vocab stays small");
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let tok = CharTokenizer::new();
        let ids = tok.encode(CHARSET);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "every charset char has its own id");
        assert_eq!(*sorted.last().unwrap(), tok.vocab_size() - 2);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn decode_rejects_bad_id() {
        let tok = CharTokenizer::new();
        tok.decode(&[tok.vocab_size()]);
    }
}

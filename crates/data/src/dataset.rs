//! Tokenized datasets and batch sampling.

use vela_tensor::rng::DetRng;

use crate::CharTokenizer;

/// One language-modelling batch: `inputs[i]` predicts `targets[i]`.
///
/// Both are flattened `[batch · seq]` id sequences, grouped by batch
/// element, matching the `[tokens, features]` layout used by the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Input token ids, length `batch_size * seq_len`.
    pub inputs: Vec<usize>,
    /// Next-token targets, same length as `inputs`.
    pub targets: Vec<usize>,
    /// Number of sequences in the batch.
    pub batch_size: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
}

impl Batch {
    /// Total number of tokens in the batch.
    pub fn token_count(&self) -> usize {
        self.inputs.len()
    }
}

/// A tokenized corpus supporting deterministic random-window batching.
#[derive(Debug, Clone)]
pub struct TokenDataset {
    tokens: Vec<usize>,
}

impl TokenDataset {
    /// Tokenizes `text` with `tokenizer`.
    pub fn from_text(tokenizer: &CharTokenizer, text: &str) -> Self {
        TokenDataset {
            tokens: tokenizer.encode(text),
        }
    }

    /// Wraps an existing id sequence.
    pub fn from_tokens(tokens: Vec<usize>) -> Self {
        TokenDataset { tokens }
    }

    /// Number of tokens in the dataset.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` if the dataset holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The raw token ids.
    pub fn tokens(&self) -> &[usize] {
        &self.tokens
    }

    /// Samples a batch of `batch_size` random windows of `seq_len` tokens,
    /// with next-token targets.
    ///
    /// # Panics
    /// Panics if the dataset is shorter than `seq_len + 1`.
    pub fn sample_batch(&self, batch_size: usize, seq_len: usize, rng: &mut DetRng) -> Batch {
        assert!(
            self.tokens.len() > seq_len,
            "dataset ({} tokens) too short for seq_len {seq_len}",
            self.tokens.len()
        );
        let max_start = self.tokens.len() - seq_len - 1;
        let mut inputs = Vec::with_capacity(batch_size * seq_len);
        let mut targets = Vec::with_capacity(batch_size * seq_len);
        for _ in 0..batch_size {
            let start = rng.below(max_start + 1);
            inputs.extend_from_slice(&self.tokens[start..start + seq_len]);
            targets.extend_from_slice(&self.tokens[start + 1..start + seq_len + 1]);
        }
        Batch {
            inputs,
            targets,
            batch_size,
            seq_len,
        }
    }

    /// Iterates sequential non-overlapping evaluation batches covering the
    /// whole dataset (the inference pass used to measure expert locality).
    pub fn sequential_batches(&self, batch_size: usize, seq_len: usize) -> Vec<Batch> {
        let window = seq_len + 1;
        let mut batches = Vec::new();
        let mut cursor = 0;
        loop {
            let mut inputs = Vec::with_capacity(batch_size * seq_len);
            let mut targets = Vec::with_capacity(batch_size * seq_len);
            let mut rows = 0;
            while rows < batch_size && cursor + window <= self.tokens.len() {
                inputs.extend_from_slice(&self.tokens[cursor..cursor + seq_len]);
                targets.extend_from_slice(&self.tokens[cursor + 1..cursor + window]);
                cursor += seq_len;
                rows += 1;
            }
            if rows == 0 {
                break;
            }
            batches.push(Batch {
                inputs,
                targets,
                batch_size: rows,
                seq_len,
            });
            if cursor + window > self.tokens.len() {
                break;
            }
        }
        batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Corpus;

    fn small_dataset() -> TokenDataset {
        let tok = CharTokenizer::new();
        TokenDataset::from_text(&tok, &Corpus::Mixed.generate(2_000, 1))
    }

    #[test]
    fn sample_batch_shapes() {
        let data = small_dataset();
        let mut rng = DetRng::new(0);
        let b = data.sample_batch(4, 16, &mut rng);
        assert_eq!(b.inputs.len(), 64);
        assert_eq!(b.targets.len(), 64);
        assert_eq!(b.token_count(), 64);
        assert_eq!(b.batch_size, 4);
        assert_eq!(b.seq_len, 16);
    }

    #[test]
    fn targets_are_shifted_inputs() {
        let data = TokenDataset::from_tokens((0..100).collect());
        let mut rng = DetRng::new(1);
        let b = data.sample_batch(2, 10, &mut rng);
        for row in 0..2 {
            for i in 0..9 {
                assert_eq!(b.inputs[row * 10 + i + 1], b.targets[row * 10 + i]);
            }
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let data = small_dataset();
        let b1 = data.sample_batch(2, 8, &mut DetRng::new(5));
        let b2 = data.sample_batch(2, 8, &mut DetRng::new(5));
        assert_eq!(b1, b2);
    }

    #[test]
    fn sequential_batches_cover_dataset_without_overlap() {
        let data = TokenDataset::from_tokens((0..100).collect());
        let batches = data.sequential_batches(2, 10);
        let mut seen = Vec::new();
        for b in &batches {
            seen.extend_from_slice(&b.inputs);
        }
        // Windows advance by seq_len, so inputs are consecutive ids.
        for w in seen.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
        assert!(seen.len() >= 80, "most of the dataset is covered");
    }

    #[test]
    fn sequential_batches_handle_partial_final_batch() {
        let data = TokenDataset::from_tokens((0..35).collect());
        let batches = data.sequential_batches(2, 10);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].batch_size, 2);
        assert_eq!(batches[1].batch_size, 1);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_dataset_panics() {
        TokenDataset::from_tokens(vec![1, 2, 3]).sample_batch(1, 8, &mut DetRng::new(0));
    }
}

//! Seeded synthetic corpus generators.
//!
//! Each [`Corpus`] draws sentences from a different mixture of vocabulary
//! *domains*. Domains differ in character-level statistics (names and
//! colons in drama, years and headings in encyclopedic text, symbols in
//! code, digits in arithmetic), which is what lets the experts of a
//! character-level MoE model specialise — and therefore what produces the
//! expert-locality contrast between corpora that the VELA evaluation
//! depends on.

use vela_tensor::rng::DetRng;

/// A synthetic stand-in for one of the paper's datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corpus {
    /// Drama dialogue — the Tiny-Shakespeare analogue used by the
    /// measurement study (§III).
    TinyShakespeare,
    /// Narrow-domain encyclopedic prose — the WikiText analogue
    /// (concentrated expert access).
    WikiText,
    /// Many-domain instruction/response pairs — the Alpaca analogue
    /// (more uniform expert access).
    Alpaca,
    /// Uniform mixture over all domains — the pre-training corpus.
    Mixed,
}

impl Corpus {
    /// All fine-tuning corpora (excludes the pre-training mixture).
    pub const FINE_TUNE: [Corpus; 3] = [Corpus::TinyShakespeare, Corpus::WikiText, Corpus::Alpaca];

    /// Generates roughly `target_chars` characters of text, deterministically
    /// from `seed`.
    pub fn generate(self, target_chars: usize, seed: u64) -> String {
        let mut rng = DetRng::new(seed ^ self.salt());
        let mut out = String::with_capacity(target_chars + 128);
        while out.len() < target_chars {
            match self {
                Corpus::TinyShakespeare => drama_scene(&mut out, &mut rng),
                Corpus::WikiText => wiki_article(&mut out, &mut rng),
                Corpus::Alpaca => alpaca_pair(&mut out, &mut rng),
                Corpus::Mixed => match rng.below(6) {
                    0 => drama_scene(&mut out, &mut rng),
                    1 => wiki_article(&mut out, &mut rng),
                    2 => alpaca_pair(&mut out, &mut rng),
                    3 => code_snippet(&mut out, &mut rng),
                    4 => arithmetic_drill(&mut out, &mut rng),
                    _ => travel_note(&mut out, &mut rng),
                },
            }
        }
        out.truncate(target_chars);
        out
    }

    /// The human-readable dataset name used in harness output.
    pub fn name(self) -> &'static str {
        match self {
            Corpus::TinyShakespeare => "tiny-shakespeare",
            Corpus::WikiText => "wikitext",
            Corpus::Alpaca => "alpaca",
            Corpus::Mixed => "mixed-pretrain",
        }
    }

    fn salt(self) -> u64 {
        match self {
            Corpus::TinyShakespeare => 0x5AEB_0001,
            Corpus::WikiText => 0x5AEB_0002,
            Corpus::Alpaca => 0x5AEB_0003,
            Corpus::Mixed => 0x5AEB_0004,
        }
    }
}

impl std::fmt::Display for Corpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn pick<'a>(rng: &mut DetRng, pool: &[&'a str]) -> &'a str {
    pool[rng.below(pool.len())]
}

// ---------------------------------------------------------------------------
// Domain: drama (Tiny-Shakespeare analogue)
// ---------------------------------------------------------------------------

const SPEAKERS: &[&str] = &[
    "ROMEO", "JULIET", "MACBETH", "HAMLET", "OPHELIA", "PORTIA", "BRUTUS", "VIOLA",
];
const ARCHAIC: &[&str] = &[
    "thou",
    "thee",
    "thy",
    "hath",
    "doth",
    "wherefore",
    "anon",
    "prithee",
    "forsooth",
    "alas",
];
const DRAMA_NOUNS: &[&str] = &[
    "dagger", "crown", "moon", "heart", "ghost", "garden", "sword", "love", "night", "throne",
];
const DRAMA_VERBS: &[&str] = &[
    "speak", "weep", "swear", "dream", "plot", "mourn", "vanish", "kneel",
];

fn drama_scene(out: &mut String, rng: &mut DetRng) {
    out.push_str(pick(rng, SPEAKERS));
    out.push_str(":\n");
    let lines = 2 + rng.below(3);
    for _ in 0..lines {
        out.push_str(pick(rng, ARCHAIC));
        out.push(' ');
        out.push_str(pick(rng, DRAMA_VERBS));
        out.push_str(" upon the ");
        out.push_str(pick(rng, DRAMA_NOUNS));
        out.push_str(", ");
        out.push_str(pick(rng, ARCHAIC));
        out.push(' ');
        out.push_str(pick(rng, DRAMA_NOUNS));
        out.push_str("!\n");
    }
    out.push('\n');
}

// ---------------------------------------------------------------------------
// Domain: encyclopedic (WikiText analogue) — deliberately narrow
// ---------------------------------------------------------------------------

const WIKI_SUBJECTS: &[&str] = &[
    "The ancient fortress",
    "The river delta",
    "The railway line",
    "The cathedral",
    "The observatory",
    "The canal system",
];
const WIKI_FACTS: &[&str] = &[
    "was constructed",
    "was restored",
    "was surveyed",
    "was expanded",
    "was documented",
];
const WIKI_PLACES: &[&str] = &[
    "in the northern province",
    "near the coastal plain",
    "along the trade route",
    "within the old district",
];

fn wiki_article(out: &mut String, rng: &mut DetRng) {
    out.push_str("= ");
    out.push_str(pick(rng, WIKI_SUBJECTS));
    out.push_str(" =\n");
    let sentences = 3 + rng.below(3);
    for _ in 0..sentences {
        out.push_str(pick(rng, WIKI_SUBJECTS));
        out.push(' ');
        out.push_str(pick(rng, WIKI_FACTS));
        out.push(' ');
        out.push_str(pick(rng, WIKI_PLACES));
        out.push_str(" in ");
        let year = 1100 + rng.below(900);
        out.push_str(&year.to_string());
        out.push_str(" [");
        out.push_str(&(1 + rng.below(40)).to_string());
        out.push_str("].\n");
    }
    out.push('\n');
}

// ---------------------------------------------------------------------------
// Domains for the instruction corpus (Alpaca analogue) — deliberately broad
// ---------------------------------------------------------------------------

const COOK_ITEMS: &[&str] = &["onions", "lentils", "rice", "peppers", "garlic", "noodles"];
const COOK_VERBS: &[&str] = &["chop", "simmer", "roast", "whisk", "saute", "season"];
const TRAVEL_CITIES: &[&str] = &["Kyoto", "Lisbon", "Oslo", "Quito", "Hanoi", "Tunis"];
const ADVICE_TOPICS: &[&str] = &["sleep", "budgeting", "focus", "exercise", "reading"];

fn alpaca_pair(out: &mut String, rng: &mut DetRng) {
    match rng.below(5) {
        0 => {
            out.push_str("# Instruction:\nWrite a recipe step.\n# Response:\n");
            out.push_str(pick(rng, COOK_VERBS));
            out.push_str(" the ");
            out.push_str(pick(rng, COOK_ITEMS));
            out.push_str(", then ");
            out.push_str(pick(rng, COOK_VERBS));
            out.push_str(" with ");
            out.push_str(pick(rng, COOK_ITEMS));
            out.push_str(".\n\n");
        }
        1 => {
            out.push_str("# Instruction:\nSuggest a travel stop.\n# Response:\nVisit ");
            out.push_str(pick(rng, TRAVEL_CITIES));
            out.push_str(" before ");
            out.push_str(pick(rng, TRAVEL_CITIES));
            out.push_str("; stay ");
            out.push_str(&(2 + rng.below(8)).to_string());
            out.push_str(" nights.\n\n");
        }
        2 => {
            out.push_str("# Instruction:\nWrite a line of code.\n# Response:\n");
            code_snippet(out, rng);
        }
        3 => {
            out.push_str("# Instruction:\nSolve the sum.\n# Response:\n");
            arithmetic_drill(out, rng);
        }
        _ => {
            out.push_str("# Instruction:\nGive advice about ");
            out.push_str(pick(rng, ADVICE_TOPICS));
            out.push_str(".\n# Response:\nImprove your ");
            out.push_str(pick(rng, ADVICE_TOPICS));
            out.push_str(" with a daily routine.\n\n");
        }
    }
}

const CODE_VARS: &[&str] = &["total", "index", "count", "buffer", "limit"];

fn code_snippet(out: &mut String, rng: &mut DetRng) {
    out.push_str(pick(rng, CODE_VARS));
    out.push_str(" = ");
    out.push_str(pick(rng, CODE_VARS));
    out.push('[');
    out.push_str(&rng.below(100).to_string());
    out.push_str("] ");
    out.push_str("- ");
    out.push_str(&rng.below(50).to_string());
    out.push_str("\n\n");
}

fn arithmetic_drill(out: &mut String, rng: &mut DetRng) {
    let a = rng.below(90) + 10;
    let b = rng.below(90) + 10;
    out.push_str(&a.to_string());
    out.push_str(" - ");
    out.push_str(&b.to_string());
    out.push_str(" = ");
    out.push_str(&(a as i64 - b as i64).to_string());
    out.push('\n');
}

fn travel_note(out: &mut String, rng: &mut DetRng) {
    out.push_str("From ");
    out.push_str(pick(rng, TRAVEL_CITIES));
    out.push_str(" the road runs to ");
    out.push_str(pick(rng, TRAVEL_CITIES));
    out.push_str(" in ");
    out.push_str(&(3 + rng.below(20)).to_string());
    out.push_str(" hours.\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::WikiText.generate(5_000, 42);
        let b = Corpus::WikiText.generate(5_000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::WikiText.generate(2_000, 1);
        let b = Corpus::WikiText.generate(2_000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn target_length_respected() {
        for corpus in [
            Corpus::TinyShakespeare,
            Corpus::WikiText,
            Corpus::Alpaca,
            Corpus::Mixed,
        ] {
            assert_eq!(corpus.generate(3_333, 5).len(), 3_333);
        }
    }

    #[test]
    fn corpora_have_distinct_character_statistics() {
        let drama = Corpus::TinyShakespeare.generate(20_000, 3);
        let wiki = Corpus::WikiText.generate(20_000, 3);
        let digit_frac =
            |s: &str| s.chars().filter(|c| c.is_ascii_digit()).count() as f64 / s.len() as f64;
        // Encyclopedic text is digit-heavy (years, citations); drama is not.
        assert!(digit_frac(&wiki) > 4.0 * digit_frac(&drama).max(1e-9));
        // Drama is colon/name heavy.
        let colon = |s: &str| s.matches(':').count();
        assert!(colon(&drama) > colon(&wiki));
    }

    #[test]
    fn alpaca_mixes_more_domains_than_wiki() {
        // Proxy: unique trigram count is higher for the broad corpus.
        let trigrams = |s: &str| {
            let b = s.as_bytes();
            let mut set = std::collections::HashSet::new();
            for w in b.windows(3) {
                set.insert(w.to_vec());
            }
            set.len()
        };
        let alpaca = Corpus::Alpaca.generate(30_000, 9);
        let wiki = Corpus::WikiText.generate(30_000, 9);
        assert!(
            trigrams(&alpaca) > trigrams(&wiki),
            "alpaca {} vs wiki {}",
            trigrams(&alpaca),
            trigrams(&wiki)
        );
    }

    #[test]
    fn all_corpora_stay_within_tokenizer_charset() {
        let tok = crate::CharTokenizer::new();
        for corpus in [
            Corpus::TinyShakespeare,
            Corpus::WikiText,
            Corpus::Alpaca,
            Corpus::Mixed,
        ] {
            let text = corpus.generate(10_000, 11);
            let unk = tok
                .encode(&text)
                .iter()
                .filter(|&&id| id == tok.unk_id())
                .count();
            assert_eq!(unk, 0, "{corpus} emits chars outside the charset");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Corpus::WikiText.to_string(), "wikitext");
        assert_eq!(Corpus::FINE_TUNE.len(), 3);
    }
}

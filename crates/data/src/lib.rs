//! Synthetic corpora, tokenizer and batching for MoE fine-tuning workloads.
//!
//! The VELA evaluation fine-tunes on Tiny-Shakespeare, WikiText and Alpaca.
//! Those datasets are not available offline, so this crate generates seeded
//! synthetic stand-ins with the *statistical property that matters to the
//! paper*: each corpus draws from a different mixture of vocabulary domains,
//! which is what makes different experts specialise on different corpora
//! (concentrated access for the narrow-domain `wiki_like` corpus, more
//! uniform access for the many-domain `alpaca_like` corpus).
//!
//! # Example
//!
//! ```
//! use vela_data::{Corpus, CharTokenizer, TokenDataset};
//!
//! let text = Corpus::TinyShakespeare.generate(2_000, 7);
//! let tok = CharTokenizer::new();
//! let data = TokenDataset::from_text(&tok, &text);
//! assert!(data.len() > 1_000);
//! ```

mod corpus;
mod dataset;
mod tokenizer;

pub use corpus::Corpus;
pub use dataset::{Batch, TokenDataset};
pub use tokenizer::CharTokenizer;

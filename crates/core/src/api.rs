//! The high-level session API: pre-train → measure → place → fine-tune,
//! in one builder.

use vela_cluster::{DeviceId, Topology};
use vela_data::{CharTokenizer, Corpus, TokenDataset};
use vela_model::finetune::{prepare_for_finetune, LoraConfig};
use vela_model::pretrain::{pretrain, PretrainConfig};
use vela_model::ModelConfig;
use vela_nn::optim::AdamWConfig;
use vela_placement::{Placement, PlacementProblem, Strategy};
use vela_runtime::{RealRuntime, StepMetrics, TransportConfig};
use vela_tensor::rng::DetRng;

use crate::measure::measure_locality;

/// Builder for a [`VelaSession`]; see the crate-level quickstart.
#[derive(Debug, Clone)]
pub struct VelaSessionBuilder {
    model: ModelConfig,
    pretrain_steps: usize,
    finetune_batch: usize,
    corpus: Corpus,
    corpus_chars: usize,
    topology: Topology,
    strategy: Strategy,
    lora: LoraConfig,
    optim: AdamWConfig,
    transport: TransportConfig,
    seed: u64,
}

impl VelaSessionBuilder {
    fn new() -> Self {
        let mut model = ModelConfig::test_small();
        model.vocab = CharTokenizer::new().vocab_size();
        VelaSessionBuilder {
            model,
            pretrain_steps: 100,
            finetune_batch: 8,
            corpus: Corpus::TinyShakespeare,
            corpus_chars: 50_000,
            topology: Topology::paper_testbed(),
            strategy: Strategy::Vela,
            lora: LoraConfig::default(),
            optim: AdamWConfig::default(),
            transport: TransportConfig::from_env(),
            seed: 2025,
        }
    }

    /// Sets the model configuration (vocabulary must match the workspace
    /// tokenizer).
    pub fn model(&mut self, cfg: ModelConfig) -> &mut Self {
        self.model = cfg;
        self
    }

    /// Number of balanced pre-training steps before fine-tuning.
    pub fn pretrain_steps(&mut self, steps: usize) -> &mut Self {
        self.pretrain_steps = steps;
        self
    }

    /// Fine-tuning batch size (sequences per step).
    pub fn finetune_batch(&mut self, batch: usize) -> &mut Self {
        self.finetune_batch = batch;
        self
    }

    /// The fine-tuning corpus.
    pub fn corpus(&mut self, corpus: Corpus) -> &mut Self {
        self.corpus = corpus;
        self
    }

    /// Characters of corpus to generate.
    pub fn corpus_chars(&mut self, chars: usize) -> &mut Self {
        self.corpus_chars = chars;
        self
    }

    /// The cluster to run on (defaults to the paper's 3 × 2-GPU testbed).
    pub fn topology(&mut self, topology: Topology) -> &mut Self {
        self.topology = topology;
        self
    }

    /// The expert-placement strategy (defaults to [`Strategy::Vela`]).
    pub fn strategy(&mut self, strategy: Strategy) -> &mut Self {
        self.strategy = strategy;
        self
    }

    /// LoRA hyper-parameters.
    pub fn lora(&mut self, lora: LoraConfig) -> &mut Self {
        self.lora = lora;
        self
    }

    /// Optimizer configuration for fine-tuning.
    pub fn optim(&mut self, optim: AdamWConfig) -> &mut Self {
        self.optim = optim;
        self
    }

    /// The transport carrying master↔worker traffic (defaults to the
    /// `VELA_TRANSPORT` environment knob: in-process channels unless the
    /// user asks for TCP loopback or real worker processes).
    pub fn transport(&mut self, transport: TransportConfig) -> &mut Self {
        self.transport = transport;
        self
    }

    /// Master seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Runs the full pipeline: balanced pre-training on the mixed corpus,
    /// LoRA preparation, locality measurement on the target corpus,
    /// placement, and distributed launch.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent (e.g. vocabulary
    /// mismatch with the tokenizer).
    pub fn build(&self) -> VelaSession {
        let pre = pretrain(
            &self.model,
            &PretrainConfig {
                steps: self.pretrain_steps,
                batch_size: self.finetune_batch.min(8),
                corpus_chars: self.corpus_chars.max(20_000),
                seed: self.seed,
                ..PretrainConfig::default()
            },
        );
        let (mut model, mut experts) = (pre.model, pre.experts);
        prepare_for_finetune(
            &mut model,
            &mut experts,
            self.lora,
            &mut DetRng::new(self.seed ^ 0xA5A5),
        );

        let tokenizer = CharTokenizer::new();
        let dataset = TokenDataset::from_text(
            &tokenizer,
            &self.corpus.generate(self.corpus_chars, self.seed ^ 0xC0),
        );
        let profile = measure_locality(&mut model, &mut experts, &dataset, self.finetune_batch, 16);

        let master = DeviceId(0);
        let workers: Vec<DeviceId> = self.topology.devices().iter().map(|d| d.id).collect();
        let cfg = model.config().clone();
        let problem = PlacementProblem::new(
            self.topology.clone(),
            master,
            workers.clone(),
            profile.to_matrix(),
            (self.finetune_batch * cfg.seq_len * cfg.top_k) as f64,
            (cfg.dim * 4) as u64,
            PlacementProblem::even_capacities(cfg.blocks, cfg.experts, workers.len(), 2),
        );
        let placement = self.strategy.place(&problem);

        let runtime = RealRuntime::launch_with(
            self.transport,
            model,
            experts,
            placement.clone(),
            self.topology.clone(),
            master,
            workers,
            self.optim,
        );
        VelaSession {
            runtime,
            dataset,
            placement,
            batch: self.finetune_batch,
            seq_len: cfg.seq_len,
            rng: DetRng::new(self.seed ^ 0xF00D),
        }
    }
}

/// A live end-to-end VELA session over the distributed runtime.
#[derive(Debug)]
pub struct VelaSession {
    runtime: RealRuntime,
    dataset: TokenDataset,
    placement: Placement,
    batch: usize,
    seq_len: usize,
    rng: DetRng,
}

impl VelaSession {
    /// Starts a builder with sensible defaults.
    pub fn builder() -> VelaSessionBuilder {
        VelaSessionBuilder::new()
    }

    /// The placement the session runs with.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Label of the transport backend carrying the session's traffic.
    pub fn transport(&self) -> &'static str {
        self.runtime.transport_label()
    }

    /// Runs `steps` distributed fine-tuning steps.
    ///
    /// # Panics
    /// Panics if the transport fails mid-run — a session has no way to
    /// resume a half-finished step.
    pub fn finetune(&mut self, steps: usize) -> Vec<StepMetrics> {
        (0..steps)
            .map(|_| {
                let batch = self
                    .dataset
                    .sample_batch(self.batch, self.seq_len, &mut self.rng);
                self.runtime
                    .train_step(
                        &batch.inputs,
                        &batch.targets,
                        batch.batch_size,
                        batch.seq_len,
                    )
                    .unwrap_or_else(|e| panic!("transport failed mid-session: {e}"))
            })
            .collect()
    }

    /// Shuts down the worker threads and returns nothing (the trained
    /// model can be recovered with [`into_parts`](Self::into_parts)
    /// instead when needed).
    pub fn shutdown(self) {
        self.runtime.shutdown();
    }

    /// Shuts down and returns the trained backbone and reassembled expert
    /// population.
    pub fn into_parts(self) -> (vela_model::MoeModel, vela_model::LocalExpertStore) {
        self.runtime.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_builder() -> VelaSessionBuilder {
        let mut b = VelaSessionBuilder::new();
        b.pretrain_steps(10).finetune_batch(2).corpus_chars(20_000);
        b
    }

    #[test]
    fn end_to_end_session_runs() {
        let mut session = quick_builder().build();
        assert!(!session.transport().is_empty());
        let metrics = session.finetune(2);
        assert_eq!(metrics.len(), 2);
        assert!(metrics[0].loss.unwrap().is_finite());
        assert!(metrics[0].traffic.total_bytes > 0);
        let (mut model, mut experts) = session.into_parts();
        use vela_nn::param::Module;
        assert!(model.trainable_param_count() > 0);
        assert!(experts.trainable_param_count() > 0);
    }

    #[test]
    fn strategies_yield_different_placements() {
        let vela = quick_builder().strategy(Strategy::Vela).build();
        let seq = quick_builder().strategy(Strategy::Sequential).build();
        assert_ne!(vela.placement(), seq.placement());
        vela.shutdown();
        seq.shutdown();
    }
}

//! Locality measurement: pass a dataset through a model and record the
//! expert-access distribution (§IV-B: "prior to fine-tuning, we pass the
//! dataset through the model to generate a probability matrix P").

use vela_data::TokenDataset;
use vela_locality::{AccessTracker, LocalityProfile};
use vela_model::{ExpertProvider, MoeModel};

/// Runs up to `max_batches` sequential evaluation batches of `dataset`
/// through `model` in inference mode and returns the measured access
/// profile `P ∈ R^{L×E}`.
///
/// # Panics
/// Panics if the dataset is shorter than one sequence or `batch_size` is
/// zero.
pub fn measure_locality(
    model: &mut MoeModel,
    provider: &mut dyn ExpertProvider,
    dataset: &TokenDataset,
    batch_size: usize,
    max_batches: usize,
) -> LocalityProfile {
    assert!(batch_size > 0, "batch_size must be positive");
    let cfg = model.config().clone();
    let mut tracker = AccessTracker::new(cfg.blocks, cfg.experts);
    for batch in dataset
        .sequential_batches(batch_size, cfg.seq_len)
        .iter()
        .take(max_batches)
    {
        model.forward(&batch.inputs, batch.batch_size, batch.seq_len, provider);
        tracker.record(&model.routing_snapshot());
    }
    LocalityProfile::from_frequencies("measured", tracker.frequency_matrix())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vela_data::{CharTokenizer, Corpus};
    use vela_model::ModelConfig;
    use vela_tensor::rng::DetRng;

    #[test]
    fn measures_a_valid_profile() {
        let mut cfg = ModelConfig::test_small();
        cfg.vocab = CharTokenizer::new().vocab_size();
        let (mut model, mut experts) = MoeModel::new(&cfg, &mut DetRng::new(1));
        let tok = CharTokenizer::new();
        let dataset = TokenDataset::from_text(&tok, &Corpus::WikiText.generate(5_000, 2));
        let profile = measure_locality(&mut model, &mut experts, &dataset, 4, 5);
        assert_eq!(profile.blocks(), cfg.blocks);
        assert_eq!(profile.experts(), cfg.experts);
        for l in 0..cfg.blocks {
            let s: f64 = profile.row(l).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn measurement_is_deterministic() {
        let mut cfg = ModelConfig::test_small();
        cfg.vocab = CharTokenizer::new().vocab_size();
        let tok = CharTokenizer::new();
        let dataset = TokenDataset::from_text(&tok, &Corpus::Alpaca.generate(5_000, 3));
        let run = || {
            let (mut model, mut experts) = MoeModel::new(&cfg, &mut DetRng::new(4));
            measure_locality(&mut model, &mut experts, &dataset, 2, 4).to_matrix()
        };
        assert_eq!(run(), run());
    }
}

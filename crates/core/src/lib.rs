//! # VELA: communication-efficient MoE fine-tuning with locality-aware
//! # expert placement
//!
//! A from-scratch Rust reproduction of the VELA system (Hu, Kang & Li,
//! ICDCS 2025). VELA fine-tunes Mixture-of-Experts language models in a
//! distributed master–worker architecture, exploiting the *expert
//! locality* of pre-trained MoE models — some experts are accessed far
//! more often than others, and the bias is stable during fine-tuning — to
//! place experts so that hot ones sit on cheap links, cutting cross-node
//! communication by up to ~25 % and step time by up to ~28 %.
//!
//! This crate is the public face of the workspace; the heavy lifting lives
//! in the re-exported sub-crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `vela-tensor` | dense tensors, kernels, seeded RNG |
//! | [`nn`] | `vela-nn` | layers with explicit backward, LoRA, AdamW |
//! | [`data`] | `vela-data` | synthetic corpora, tokenizer, batching |
//! | [`model`] | `vela-model` | MoE transformer, pre-training, fine-tuning |
//! | [`locality`] | `vela-locality` | access counters, Theorem 1, profiles |
//! | [`cluster`] | `vela-cluster` | topology, cost model, traffic ledger |
//! | [`placement`] | `vela-placement` | the LP placement + baselines |
//! | [`runtime`] | `vela-runtime` | master–worker runtime + EP baseline |
//!
//! # Quickstart
//!
//! ```
//! use vela::prelude::*;
//!
//! // Pre-train a small MoE model, measure its expert locality, solve the
//! // placement LP and fine-tune it distributed — in a few lines.
//! let mut session = VelaSession::builder()
//!     .model(ModelConfig::test_small_with_tokenizer_vocab())
//!     .pretrain_steps(20)
//!     .corpus(Corpus::TinyShakespeare)
//!     .strategy(Strategy::Vela)
//!     .build();
//! let metrics = session.finetune(3);
//! assert_eq!(metrics.len(), 3);
//! session.shutdown();
//! ```

pub use vela_cluster as cluster;
pub use vela_data as data;
pub use vela_locality as locality;
pub use vela_model as model;
pub use vela_nn as nn;
pub use vela_obs as obs;
pub use vela_placement as placement;
pub use vela_runtime as runtime;
pub use vela_tensor as tensor;

pub mod api;
pub mod measure;

/// The most common imports, for examples and quick experiments.
pub mod prelude {
    pub use crate::api::{VelaSession, VelaSessionBuilder};
    pub use crate::measure::measure_locality;
    pub use crate::ModelConfigExt;
    pub use vela_cluster::{Bandwidth, CostModel, DeviceId, NodeId, Topology};
    pub use vela_data::{Batch, CharTokenizer, Corpus, TokenDataset};
    pub use vela_locality::{AccessTracker, Cdf, DriftDetector, LocalityProfile, StabilityReport};
    pub use vela_model::finetune::{FinetuneConfig, LoraConfig};
    pub use vela_model::pretrain::{pretrain, PretrainConfig};
    pub use vela_model::{ExpertProvider, LocalExpertStore, ModelConfig, MoeModel, MoeSpec};
    pub use vela_nn::optim::{AdamW, AdamWConfig, Sgd};
    pub use vela_placement::{
        Placement, PlacementProblem, ReplicatedPlacement, ReplicationConfig, Strategy,
    };
    pub use vela_runtime::{
        EpEngine, MigrationHandle, MigrationMode, PhaseAttribution, RealRuntime,
        ReplicationSummary, RunSummary, ScaleConfig, StepMetrics, TransportConfig, VirtualEngine,
    };
    pub use vela_tensor::rng::DetRng;
    pub use vela_tensor::Tensor;
}

/// Extension trait hosting small conveniences on re-exported types.
pub trait ModelConfigExt {
    /// [`ModelConfig::test_small`](vela_model::ModelConfig::test_small)
    /// with the vocabulary set from the workspace tokenizer.
    fn test_small_with_tokenizer_vocab() -> vela_model::ModelConfig;
}

impl ModelConfigExt for vela_model::ModelConfig {
    fn test_small_with_tokenizer_vocab() -> vela_model::ModelConfig {
        let mut cfg = vela_model::ModelConfig::test_small();
        cfg.vocab = vela_data::CharTokenizer::new().vocab_size();
        cfg
    }
}

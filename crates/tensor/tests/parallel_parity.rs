//! Bitwise parity between the threaded matmul kernels and their serial
//! equivalents.
//!
//! The parallel backend's contract is that every output element is
//! accumulated in exactly the order the serial kernel uses, so results
//! are identical — not merely close — at any thread count. These tests
//! pin that contract against (a) naive reference triple loops and
//! (b) the kernels themselves run under differently-sized pools.

use vela_tensor::parallel::{self, with_pool, ThreadPool};
use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

/// Shapes `(r, k, c)` mixing tiny, ragged, and pool-engaging sizes
/// (the larger ones exceed the parallel cutoff, so a multi-lane pool
/// genuinely splits them). Several sit exactly on or one past the
/// 8×8 microkernel tile boundaries to exercise the zero-padded
/// remainder lanes.
const SHAPES: [(usize, usize, usize); 10] = [
    (1, 1, 1),
    (1, 5, 3),
    (8, 8, 8),    // exactly one full MR×NR tile
    (9, 4, 9),    // one past the tile edge on both axes
    (16, 16, 16), // whole tiles only
    (15, 16, 17), // remainder rows and columns
    (17, 9, 33),
    (33, 64, 7),
    (96, 64, 80),
    (65, 33, 131), // ragged everywhere, large enough to split across lanes
];

const THREADS: [usize; 4] = [2, 3, 5, 8];

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn inputs(r: usize, k: usize, c: usize, seed: u64) -> (Tensor, Tensor, Tensor, Tensor) {
    let mut rng = DetRng::new(seed);
    // Operand layouts per variant: nn takes (r,k)×(k,c), tn takes
    // (k,r)×(k,c), nt takes (r,k)×(c,k).
    let a_nn = Tensor::uniform((r, k), -1.0, 1.0, &mut rng);
    let b_nn = Tensor::uniform((k, c), -1.0, 1.0, &mut rng);
    let a_tn = Tensor::uniform((k, r), -1.0, 1.0, &mut rng);
    let b_nt = Tensor::uniform((c, k), -1.0, 1.0, &mut rng);
    (a_nn, b_nn, a_tn, b_nt)
}

/// `A @ B`, accumulated in ascending-`p` order from `0.0` — the exact
/// order the production kernel guarantees.
fn naive_nn(a: &Tensor, b: &Tensor) -> Vec<f32> {
    let ((r, k), (_, c)) = (a.shape().as_2d(), b.shape().as_2d());
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            for p in 0..k {
                out[i * c + j] += av[i * k + p] * bv[p * c + j];
            }
        }
    }
    out
}

/// `A^T @ B` for `A: (k, r)`, `B: (k, c)`, ascending-`p` accumulation.
fn naive_tn(a: &Tensor, b: &Tensor) -> Vec<f32> {
    let ((k, r), (_, c)) = (a.shape().as_2d(), b.shape().as_2d());
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            for p in 0..k {
                out[i * c + j] += av[p * r + i] * bv[p * c + j];
            }
        }
    }
    out
}

/// `A @ B^T` for `A: (r, k)`, `B: (c, k)`, ascending-`p` accumulation.
fn naive_nt(a: &Tensor, b: &Tensor) -> Vec<f32> {
    let ((r, k), (c, _)) = (a.shape().as_2d(), b.shape().as_2d());
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            for p in 0..k {
                out[i * c + j] += av[i * k + p] * bv[j * k + p];
            }
        }
    }
    out
}

#[test]
fn matmul_matches_naive_reference_bitwise() {
    for (case, &(r, k, c)) in SHAPES.iter().enumerate() {
        let (a_nn, b_nn, a_tn, b_nt) = inputs(r, k, c, 100 + case as u64);
        let serial = ThreadPool::new(1);
        with_pool(&serial, || {
            assert_eq!(
                bits(&a_nn.matmul(&b_nn)),
                naive_nn(&a_nn, &b_nn)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "nn {r}x{k}x{c}"
            );
            assert_eq!(
                bits(&a_tn.matmul_tn(&b_nn)),
                naive_tn(&a_tn, &b_nn)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "tn {r}x{k}x{c}"
            );
            assert_eq!(
                bits(&a_nn.matmul_nt(&b_nt)),
                naive_nt(&a_nn, &b_nt)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "nt {r}x{k}x{c}"
            );
        });
    }
}

#[test]
fn matmul_is_bitwise_identical_at_any_thread_count() {
    for (case, &(r, k, c)) in SHAPES.iter().enumerate() {
        let (a_nn, b_nn, a_tn, b_nt) = inputs(r, k, c, 200 + case as u64);
        let serial = ThreadPool::new(1);
        let reference = with_pool(&serial, || {
            (
                bits(&a_nn.matmul(&b_nn)),
                bits(&a_tn.matmul_tn(&b_nn)),
                bits(&a_nn.matmul_nt(&b_nt)),
            )
        });
        for &threads in &THREADS {
            let pool = ThreadPool::new(threads);
            let got = with_pool(&pool, || {
                (
                    bits(&a_nn.matmul(&b_nn)),
                    bits(&a_tn.matmul_tn(&b_nn)),
                    bits(&a_nn.matmul_nt(&b_nt)),
                )
            });
            assert_eq!(got.0, reference.0, "nn {r}x{k}x{c} @ {threads} threads");
            assert_eq!(got.1, reference.1, "tn {r}x{k}x{c} @ {threads} threads");
            assert_eq!(got.2, reference.2, "nt {r}x{k}x{c} @ {threads} threads");
        }
    }
}

/// Serializes the tests that touch the `VELA_THREADS` process environment.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn vela_threads_one_reproduces_serial_results() {
    // `VELA_THREADS=1` must both size the pool at one lane and reproduce
    // the serial kernel bit-for-bit (trivially true by the parity
    // guarantee, pinned here as a regression test for the env knob).
    let env_threads = {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("VELA_THREADS", "1");
        let n = parallel::default_threads();
        std::env::remove_var("VELA_THREADS");
        n
    };
    assert_eq!(env_threads, 1);

    let (a, b, _, _) = inputs(96, 64, 80, 7);
    let env_pool = ThreadPool::new(env_threads);
    let wide = ThreadPool::new(6);
    let serial_bits = with_pool(&env_pool, || bits(&a.matmul(&b)));
    let wide_bits = with_pool(&wide, || bits(&a.matmul(&b)));
    assert_eq!(serial_bits, wide_bits);
}

#[test]
fn invalid_vela_threads_values_fall_back() {
    let _env = ENV_LOCK.lock().unwrap();
    std::env::set_var("VELA_THREADS", "0");
    let zero = parallel::default_threads();
    std::env::set_var("VELA_THREADS", "not-a-number");
    let junk = parallel::default_threads();
    std::env::remove_var("VELA_THREADS");
    assert!(zero >= 1);
    assert!(junk >= 1);
}

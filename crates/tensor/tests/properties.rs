//! Randomized property tests for the tensor substrate.
//!
//! Each property is checked over many [`DetRng`]-seeded random cases, so
//! the suite is fully deterministic and needs no external test framework.

use vela_tensor::ops;
use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

const CASES: u64 = 32;

fn random_tensor(rows: usize, cols: usize, rng: &mut DetRng) -> Tensor {
    Tensor::uniform((rows, cols), -10.0, 10.0, rng)
}

#[test]
fn softmax_rows_is_a_distribution() {
    for seed in 0..CASES {
        let t = random_tensor(4, 6, &mut DetRng::new(seed));
        let s = ops::softmax_rows(&t);
        for i in 0..4 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "seed {seed} row {i}: sum {sum}");
            assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

#[test]
fn softmax_preserves_order() {
    for seed in 0..CASES {
        let t = random_tensor(1, 5, &mut DetRng::new(seed));
        let s = ops::softmax_rows(&t);
        for a in 0..5 {
            for b in 0..5 {
                if t.at(a) > t.at(b) {
                    assert!(s.at(a) >= s.at(b), "seed {seed}: order broken at ({a},{b})");
                }
            }
        }
    }
}

#[test]
fn matmul_distributes_over_addition() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let a = random_tensor(3, 4, &mut rng);
        let b = random_tensor(4, 2, &mut rng);
        let c = random_tensor(4, 2, &mut rng);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for i in 0..lhs.len() {
            assert!(
                (lhs.at(i) - rhs.at(i)).abs() < 1e-2,
                "seed {seed} idx {i}: {} vs {}",
                lhs.at(i),
                rhs.at(i)
            );
        }
    }
}

#[test]
fn matmul_tn_nt_agree_with_transpose() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let a = random_tensor(3, 4, &mut rng);
        let b = random_tensor(3, 5, &mut rng);
        let tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(vela_tensor::approx_eq(
            tn.as_slice(),
            explicit.as_slice(),
            1e-3
        ));

        let c = Tensor::from_vec((5, 4), vec![0.5; 20]);
        let nt = a.matmul_nt(&c);
        let explicit2 = a.matmul(&c.transpose());
        assert!(vela_tensor::approx_eq(
            nt.as_slice(),
            explicit2.as_slice(),
            1e-3
        ));
    }
}

#[test]
fn gather_then_scatter_restores_selected_rows() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let t = random_tensor(6, 3, &mut rng);
        let mut idx: Vec<usize> = (0..(1 + rng.below(5))).map(|_| rng.below(6)).collect();
        // Deduplicate so scatter-add writes each destination once.
        idx.sort_unstable();
        idx.dedup();
        let gathered = t.gather_rows(&idx);
        let mut out = Tensor::zeros((6, 3));
        out.scatter_add_rows(&idx, &gathered);
        for (pos, &i) in idx.iter().enumerate() {
            assert_eq!(out.row(i), gathered.row(pos), "seed {seed}");
            assert_eq!(out.row(i), t.row(i), "seed {seed}");
        }
    }
}

#[test]
fn topk_values_dominate_rest() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let t = random_tensor(2, 6, &mut rng);
        let k = 1 + rng.below(6);
        let (idx, vals) = ops::topk_rows(&t, k);
        for r in 0..2 {
            let chosen: Vec<usize> = idx[r * k..(r + 1) * k].to_vec();
            let min_chosen = vals[r * k..(r + 1) * k]
                .iter()
                .cloned()
                .fold(f32::INFINITY, f32::min);
            for j in 0..6 {
                if !chosen.contains(&j) {
                    assert!(
                        t.at2(r, j) <= min_chosen + 1e-6,
                        "seed {seed} k {k}: unchosen {} beats chosen min {min_chosen}",
                        t.at2(r, j)
                    );
                }
            }
        }
    }
}

#[test]
fn transpose_is_involution() {
    for seed in 0..CASES {
        let t = random_tensor(4, 7, &mut DetRng::new(seed));
        assert_eq!(t.transpose().transpose(), t);
    }
}

#[test]
fn norm_scales_linearly() {
    for seed in 0..CASES {
        let mut rng = DetRng::new(seed);
        let t = random_tensor(3, 3, &mut rng);
        let s = rng.uniform(0.0, 5.0);
        let scaled = t.scale(s);
        assert!(
            (scaled.norm() - s * t.norm()).abs() < 1e-2 * (1.0 + t.norm()),
            "seed {seed} scale {s}"
        );
    }
}

#[test]
fn uniform_tensor_reproducible() {
    let mut a = DetRng::new(77);
    let mut b = DetRng::new(77);
    let ta = Tensor::uniform((8, 8), -1.0, 1.0, &mut a);
    let tb = Tensor::uniform((8, 8), -1.0, 1.0, &mut b);
    assert_eq!(ta, tb);
}

//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use vela_tensor::ops;
use vela_tensor::rng::DetRng;
use vela_tensor::Tensor;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec((rows, cols), data))
}

proptest! {
    #[test]
    fn softmax_rows_is_a_distribution(t in tensor_strategy(4, 6)) {
        let s = ops::softmax_rows(&t);
        for i in 0..4 {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_preserves_order(t in tensor_strategy(1, 5)) {
        let s = ops::softmax_rows(&t);
        for a in 0..5 {
            for b in 0..5 {
                if t.at(a) > t.at(b) {
                    prop_assert!(s.at(a) >= s.at(b));
                }
            }
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for i in 0..lhs.len() {
            prop_assert!((lhs.at(i) - rhs.at(i)).abs() < 1e-2);
        }
    }

    #[test]
    fn matmul_tn_nt_agree_with_transpose(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(3, 5),
    ) {
        let tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        prop_assert!(vela_tensor::approx_eq(tn.as_slice(), explicit.as_slice(), 1e-3));

        let c = Tensor::from_vec((5, 4), vec![0.5; 20]);
        let nt = a.matmul_nt(&c);
        let explicit2 = a.matmul(&c.transpose());
        prop_assert!(vela_tensor::approx_eq(nt.as_slice(), explicit2.as_slice(), 1e-3));
    }

    #[test]
    fn gather_then_scatter_restores_selected_rows(
        t in tensor_strategy(6, 3),
        idx in prop::collection::vec(0usize..6, 1..6),
    ) {
        // Deduplicate so scatter-add writes each destination once.
        let mut idx = idx;
        idx.sort_unstable();
        idx.dedup();
        let gathered = t.gather_rows(&idx);
        let mut out = Tensor::zeros((6, 3));
        out.scatter_add_rows(&idx, &gathered);
        for (pos, &i) in idx.iter().enumerate() {
            prop_assert_eq!(out.row(i), gathered.row(pos));
            prop_assert_eq!(out.row(i), t.row(i));
        }
    }

    #[test]
    fn topk_values_dominate_rest(t in tensor_strategy(2, 6), k in 1usize..=6) {
        let (idx, vals) = ops::topk_rows(&t, k);
        for r in 0..2 {
            let chosen: Vec<usize> = idx[r * k..(r + 1) * k].to_vec();
            let min_chosen = vals[r * k..(r + 1) * k]
                .iter()
                .cloned()
                .fold(f32::INFINITY, f32::min);
            for j in 0..6 {
                if !chosen.contains(&j) {
                    prop_assert!(t.at2(r, j) <= min_chosen + 1e-6);
                }
            }
        }
    }

    #[test]
    fn transpose_is_involution(t in tensor_strategy(4, 7)) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn norm_scales_linearly(t in tensor_strategy(3, 3), s in 0.0f32..5.0) {
        let scaled = t.scale(s);
        prop_assert!((scaled.norm() - s * t.norm()).abs() < 1e-2 * (1.0 + t.norm()));
    }
}

#[test]
fn uniform_tensor_reproducible() {
    let mut a = DetRng::new(77);
    let mut b = DetRng::new(77);
    let ta = Tensor::uniform((8, 8), -1.0, 1.0, &mut a);
    let tb = Tensor::uniform((8, 8), -1.0, 1.0, &mut b);
    assert_eq!(ta, tb);
}

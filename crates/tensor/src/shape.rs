use std::fmt;
use std::hash::{Hash, Hasher};

/// The dimensions of a [`Tensor`](crate::Tensor), stored outermost-first.
///
/// A `Shape` is a thin wrapper around a dimension list that provides the
/// row-major stride arithmetic used by every kernel in this crate. Tensors in
/// this workspace are at most three-dimensional
/// (`[batch, sequence, feature]`); most kernels operate on the
/// two-dimensional `[tokens, feature]` view.
///
/// Dimensions are stored inline (`[usize; 3]` plus a length), so cloning a
/// shape — which happens on every tensor-producing op — never touches the
/// heap. This is part of the zero-allocation hot-path contract described in
/// DESIGN.md.
///
/// # Example
/// ```
/// use vela_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, Copy)]
pub struct Shape {
    dims: [usize; 3],
    ndim: u8,
}

impl Shape {
    /// Creates a shape from an explicit dimension list.
    ///
    /// # Panics
    /// Panics if `dims` is empty or has more than three dimensions.
    pub fn new(dims: impl AsRef<[usize]>) -> Self {
        let dims = dims.as_ref();
        assert!(
            !dims.is_empty() && dims.len() <= 3,
            "shape must have 1..=3 dimensions, got {dims:?}"
        );
        let mut inline = [0usize; 3];
        inline[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: inline,
            ndim: dims.len() as u8,
        }
    }

    /// Convenience constructor for a one-dimensional shape.
    pub fn d1(n: usize) -> Self {
        Shape {
            dims: [n, 0, 0],
            ndim: 1,
        }
    }

    /// Convenience constructor for a two-dimensional shape.
    pub fn d2(rows: usize, cols: usize) -> Self {
        Shape {
            dims: [rows, cols, 0],
            ndim: 2,
        }
    }

    /// Convenience constructor for a three-dimensional shape.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Shape {
            dims: [a, b, c],
            ndim: 3,
        }
    }

    /// The dimension list, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.ndim as usize]
    }

    /// The number of dimensions.
    pub fn ndim(&self) -> usize {
        self.ndim as usize
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Returns `true` if the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let n = self.ndim();
        let mut strides = vec![1usize; n];
        for i in (0..n.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= self.ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims()[axis]
    }

    /// Interprets the shape as two-dimensional `(rows, cols)`, flattening all
    /// outer dimensions into `rows`. A 1-D shape is viewed as a single row.
    pub fn as_2d(&self) -> (usize, usize) {
        match self.ndim {
            1 => (1, self.dims[0]),
            2 => (self.dims[0], self.dims[1]),
            3 => (self.dims[0] * self.dims[1], self.dims[2]),
            _ => unreachable!("shapes are at most 3-d"),
        }
    }
}

impl PartialEq for Shape {
    fn eq(&self, other: &Self) -> bool {
        self.dims() == other.dims()
    }
}

impl Eq for Shape {}

impl Hash for Shape {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.dims().hash(state);
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let strs: Vec<String> = self.dims().iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", strs.join("x"))
    }
}

impl From<(usize, usize)> for Shape {
    fn from((r, c): (usize, usize)) -> Self {
        Shape::d2(r, c)
    }
}

impl From<usize> for Shape {
    fn from(n: usize) -> Self {
        Shape::d1(n)
    }
}

impl From<(usize, usize, usize)> for Shape {
    fn from((a, b, c): (usize, usize, usize)) -> Self {
        Shape::d3(a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::d3(2, 3, 4).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::d2(5, 7).strides(), vec![7, 1]);
        assert_eq!(Shape::d1(9).strides(), vec![1]);
    }

    #[test]
    fn len_and_dims() {
        let s = Shape::d3(2, 3, 4);
        assert_eq!(s.len(), 24);
        assert_eq!(s.ndim(), 3);
        assert_eq!(s.dim(1), 3);
        assert!(!s.is_empty());
        assert!(Shape::d2(0, 5).is_empty());
    }

    #[test]
    fn as_2d_flattens_outer() {
        assert_eq!(Shape::d3(2, 3, 4).as_2d(), (6, 4));
        assert_eq!(Shape::d2(5, 7).as_2d(), (5, 7));
        assert_eq!(Shape::d1(9).as_2d(), (1, 9));
    }

    #[test]
    fn display_and_from() {
        let s: Shape = (2usize, 3usize).into();
        assert_eq!(format!("{s}"), "[2x3]");
        assert_eq!(format!("{s:?}"), "Shape[2, 3]");
        let s1: Shape = 4usize.into();
        assert_eq!(s1.dims(), &[4]);
        let s3: Shape = (1usize, 2usize, 3usize).into();
        assert_eq!(s3.dims(), &[1, 2, 3]);
    }

    #[test]
    fn eq_ignores_unused_inline_slots() {
        // d2(2, 3) and new(&[2, 3]) must agree regardless of construction.
        assert_eq!(Shape::d2(2, 3), Shape::new([2, 3]));
        assert_ne!(Shape::d2(2, 3), Shape::d3(2, 3, 1));
        assert_ne!(Shape::d1(6), Shape::d2(2, 3));
    }

    #[test]
    #[should_panic(expected = "1..=3 dimensions")]
    fn rejects_empty() {
        Shape::new(Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "1..=3 dimensions")]
    fn rejects_4d() {
        Shape::new(vec![1, 2, 3, 4]);
    }
}

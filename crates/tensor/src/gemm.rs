//! Packed, register-blocked GEMM: the single microkernel behind
//! [`Tensor::matmul`](crate::Tensor::matmul), `matmul_tn` and `matmul_nt`.
//!
//! # Tile layout
//!
//! The driver packs `B` once per call into column panels of [`NR`] columns,
//! stored K-major (`bpack[p * NR + jj]`), so the microkernel reads `B`
//! contiguously no matter which variant produced it — `matmul_nt`'s
//! transposed access pattern is absorbed entirely by the pack step. `A` is
//! packed per row tile into K-major [`MR`]-row strips (`apack[p * MR + ii]`).
//! Remainder tiles are zero-padded: padded lanes compute garbage that is
//! never written back, and real lanes only ever multiply real values, so
//! padding cannot perturb any output bit.
//!
//! # Accumulation-order contract
//!
//! Every output element is accumulated in ascending inner-index (`p`) order
//! starting from `0.0`, in a dedicated accumulator slot that spans the full
//! `k` extent — there is no cache blocking over `k`, because splitting the
//! reduction would change rounding and break the bitwise parity contract
//! (serial and threaded runs, any `VELA_THREADS`, any variant: identical
//! bits). Threading only partitions output rows; tile boundaries inside a
//! row chunk don't affect per-element order, so any partition yields the
//! same bits. The multiply-adds are written as separate `*` and `+` (Rust
//! does not contract to FMA), matching the naive reference loops in the
//! parity suites.

use std::ops::Range;

use vela_obs::LazyCounter;

use crate::{parallel, workspace};

/// GEMM dispatches that stayed on the calling thread (below the
/// parallel cutoff or single-lane pool) vs. went to the pool.
static GEMM_SERIAL: LazyCounter = LazyCounter::new("tensor.gemm.serial");
static GEMM_PARALLEL: LazyCounter = LazyCounter::new("tensor.gemm.parallel");

/// Rows per microkernel tile (register-blocked output rows).
pub const MR: usize = 8;

/// Columns per packed `B` panel (register-blocked output columns).
pub const NR: usize = 8;

/// How the logical operands map onto the caller's row-major buffers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Layout {
    /// `a: (r, k)`, `b: (k, c)` — plain `A @ B`.
    Nn,
    /// `a: (k, r)`, `b: (k, c)` — `A^T @ B` without materializing `A^T`.
    Tn,
    /// `a: (r, k)`, `b: (c, k)` — `A @ B^T` without materializing `B^T`.
    Nt,
}

/// `out = A @ B` (per `layout`), `out: (r, c)`, inner dimension `k`.
///
/// `out` is fully overwritten; it does not need to be zeroed.
pub fn gemm(layout: Layout, a: &[f32], b: &[f32], r: usize, k: usize, c: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), r * c);
    if r == 0 || c == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }

    let _g = vela_obs::span("tensor.gemm");

    // Pack B once; the packed panels are shared read-only across threads.
    let panels = c.div_ceil(NR);
    let mut bpack_buf = workspace::take_vec_uninit(panels * k * NR);
    {
        let _p = vela_obs::span("tensor.gemm.pack");
        pack_b(layout, b, k, c, &mut bpack_buf);
    }
    let bpack = &bpack_buf[..];

    {
        let _c = vela_obs::span("tensor.gemm.compute");
        par_rows(r, k * c, out, c, |rows, chunk| {
            gemm_rows(layout, a, bpack, r, k, c, rows, chunk);
        });
    }

    workspace::recycle_vec(bpack_buf);
}

/// Packs `B` into K-major column panels: panel `jp` covers columns
/// `jp*NR .. jp*NR+NR` and stores `bpack[jp*k*NR + p*NR + jj] = B[p, j0+jj]`.
/// Short final panels are zero-padded.
fn pack_b(layout: Layout, b: &[f32], k: usize, c: usize, bpack: &mut [f32]) {
    let panels = c.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let jw = NR.min(c - j0);
        let panel = &mut bpack[jp * k * NR..(jp + 1) * k * NR];
        match layout {
            // B is (k, c) row-major: copy row segments.
            Layout::Nn | Layout::Tn => {
                for p in 0..k {
                    let src = &b[p * c + j0..p * c + j0 + jw];
                    let dst = &mut panel[p * NR..p * NR + NR];
                    dst[..jw].copy_from_slice(src);
                    dst[jw..].fill(0.0);
                }
            }
            // B is (c, k) row-major: transpose-gather a column strip. Reads
            // are sequential per source row; this is the one-time cost that
            // turns matmul_nt into a contiguous panel-dot.
            Layout::Nt => {
                if jw < NR {
                    panel.fill(0.0);
                }
                for jj in 0..jw {
                    let src = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * NR + jj] = v;
                    }
                }
            }
        }
    }
}

/// Packs an `A` row tile (`rows i0..i0+iw` of the logical `(r, k)` operand)
/// into K-major order: `apack[p*MR + ii] = A[i0+ii, p]`, zero-padding short
/// tiles.
fn pack_a(layout: Layout, a: &[f32], r: usize, k: usize, i0: usize, iw: usize, apack: &mut [f32]) {
    match layout {
        // A is (r, k) row-major: gather MR rows into K-major strips.
        Layout::Nn | Layout::Nt => {
            if iw < MR {
                apack.fill(0.0);
            }
            for ii in 0..iw {
                let src = &a[(i0 + ii) * k..(i0 + ii + 1) * k];
                for (p, &v) in src.iter().enumerate() {
                    apack[p * MR + ii] = v;
                }
            }
        }
        // A is (k, r) row-major: the logical A^T rows are already K-major
        // columns, so each p contributes a contiguous segment.
        Layout::Tn => {
            for p in 0..k {
                let src = &a[p * r + i0..p * r + i0 + iw];
                let dst = &mut apack[p * MR..p * MR + MR];
                dst[..iw].copy_from_slice(src);
                dst[iw..].fill(0.0);
            }
        }
    }
}

/// Computes one `MR x NR` output tile into `acc`, accumulating the full `k`
/// extent in ascending-`p` order. Both operands are packed K-major, so the
/// inner loops read contiguously and vectorize cleanly.
#[inline]
fn microkernel(apack: &[f32], bpanel: &[f32], k: usize, acc: &mut [f32; MR * NR]) {
    acc.fill(0.0);
    for p in 0..k {
        let arow = &apack[p * MR..p * MR + MR];
        let brow = &bpanel[p * NR..p * NR + NR];
        for ii in 0..MR {
            let av = arow[ii];
            let dst = &mut acc[ii * NR..ii * NR + NR];
            for (d, &bv) in dst.iter_mut().zip(brow) {
                *d += av * bv;
            }
        }
    }
}

/// Computes output rows `rows` into `chunk` (the disjoint sub-slice owned by
/// this range): packs each `A` tile, then sweeps all `B` panels through the
/// microkernel.
fn gemm_rows(
    layout: Layout,
    a: &[f32],
    bpack: &[f32],
    r: usize,
    k: usize,
    c: usize,
    rows: Range<usize>,
    chunk: &mut [f32],
) {
    let base = rows.start;
    let panels = c.div_ceil(NR);
    let mut apack = workspace::take_vec_uninit(k * MR);
    let mut acc = [0.0f32; MR * NR];

    let mut i0 = rows.start;
    while i0 < rows.end {
        let iw = MR.min(rows.end - i0);
        pack_a(layout, a, r, k, i0, iw, &mut apack);
        for jp in 0..panels {
            let j0 = jp * NR;
            let jw = NR.min(c - j0);
            microkernel(&apack, &bpack[jp * k * NR..(jp + 1) * k * NR], k, &mut acc);
            for ii in 0..iw {
                let dst = &mut chunk[(i0 - base + ii) * c + j0..(i0 - base + ii) * c + j0 + jw];
                dst.copy_from_slice(&acc[ii * NR..ii * NR + jw]);
            }
        }
        i0 += iw;
    }

    workspace::recycle_vec(apack);
}

/// Runs `kernel` over disjoint row ranges of the output, splitting across
/// the current pool only when the total work clears the parallel cutoff.
fn par_rows(
    rows: usize,
    work_per_row: usize,
    out: &mut [f32],
    cols: usize,
    kernel: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    if rows * work_per_row.max(1) < parallel::par_cutoff() || parallel::current_threads() <= 1 {
        GEMM_SERIAL.add(1);
        kernel(0..rows, out);
        return;
    }
    GEMM_PARALLEL.add(1);
    let min_rows = (parallel::PAR_MIN_WORK / work_per_row.max(1)).max(1);
    let slots = parallel::DisjointSlots::new(out);
    parallel::par_ranges(rows, min_rows, |range| {
        // SAFETY: ranges from `par_ranges` are disjoint, so each chunk is
        // the sole accessor of its row slice.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(slots.get(range.start * cols), range.len() * cols)
        };
        kernel(range, chunk);
    });
}

//! Row-wise kernels shared across the workspace.
//!
//! These free functions operate on the 2-D view of a [`Tensor`]
//! (`[tokens, features]`) and implement the numerically careful pieces —
//! softmax, log-softmax, top-k selection — together with small reduction
//! helpers used by layers and the locality toolkit.

use crate::Tensor;

/// Fused `dst[i] += scale * src[i]` over two equal-length slices — the
/// row-level AXPY behind the MoE weighted combine and gradient folds.
///
/// Unrolled four lanes wide; elements are independent, so the result is
/// bit-identical to the naive loop at any width.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn scaled_add(dst: &mut [f32], scale: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "scaled_add length mismatch");
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dc, sc) in (&mut d).zip(&mut s) {
        dc[0] += scale * sc[0];
        dc[1] += scale * sc[1];
        dc[2] += scale * sc[2];
        dc[3] += scale * sc[3];
    }
    for (a, &b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a += scale * b;
    }
}

/// Numerically stable row-wise softmax.
///
/// Each row of the 2-D view is shifted by its maximum before
/// exponentiation, so arbitrarily large logits do not overflow.
///
/// # Example
/// ```
/// use vela_tensor::{ops, Tensor};
/// let t = Tensor::from_rows(&[&[0.0, 0.0]]);
/// let s = ops::softmax_rows(&t);
/// assert!((s.at2(0, 0) - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    let (r, c) = logits.shape().as_2d();
    let mut out = logits.clone();
    for i in 0..r {
        let row = out.row_mut(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
    debug_assert_eq!(out.shape().as_2d(), (r, c));
    out
}

/// Numerically stable row-wise log-softmax.
pub fn log_softmax_rows(logits: &Tensor) -> Tensor {
    let (r, _) = logits.shape().as_2d();
    let mut out = logits.clone();
    for i in 0..r {
        let row = out.row_mut(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row.iter().map(|x| (x - max).exp()).sum::<f32>().ln() + max;
        for x in row.iter_mut() {
            *x -= log_sum;
        }
    }
    out
}

/// Backward pass of row-wise softmax: given the softmax output `probs` and
/// the upstream gradient `grad_out`, returns the gradient with respect to
/// the logits: `p ⊙ (g − (g·p) 1)` per row.
///
/// # Panics
/// Panics if the shapes differ.
pub fn softmax_rows_backward(probs: &Tensor, grad_out: &Tensor) -> Tensor {
    assert_eq!(
        probs.shape(),
        grad_out.shape(),
        "softmax backward shape mismatch"
    );
    let (r, c) = probs.shape().as_2d();
    let mut out = Tensor::zeros((r, c));
    for i in 0..r {
        let p = probs.row(i);
        let g = grad_out.row(i);
        let dot: f32 = p.iter().zip(g).map(|(&pi, &gi)| pi * gi).sum();
        let o = out.row_mut(i);
        for j in 0..c {
            o[j] = p[j] * (g[j] - dot);
        }
    }
    out
}

/// Indices and values of the `k` largest entries of each row, sorted by
/// descending value (ties broken by lower index, matching deterministic
/// top-k routing).
///
/// Returns `(indices, values)`, each of length `rows * k` in row-major order.
///
/// # Panics
/// Panics if `k` is zero or exceeds the number of columns.
pub fn topk_rows(t: &Tensor, k: usize) -> (Vec<usize>, Vec<f32>) {
    let mut indices = Vec::new();
    let mut values = Vec::new();
    topk_rows_into(t, k, &mut indices, &mut values);
    (indices, values)
}

/// Allocation-free [`topk_rows`]: clears and refills the caller's buffers,
/// reusing their capacity. `k` successive argmax scans per row keep the
/// selection order bitwise-identical to the sorting formulation: strictly
/// greater wins, so ties keep the lower index.
///
/// # Panics
/// Panics if `k` is zero or exceeds the number of columns.
pub fn topk_rows_into(t: &Tensor, k: usize, indices: &mut Vec<usize>, values: &mut Vec<f32>) {
    let (r, c) = t.shape().as_2d();
    assert!(k >= 1 && k <= c, "topk k={k} out of 1..={c}");
    indices.clear();
    values.clear();
    indices.reserve(r * k);
    values.reserve(r * k);
    for i in 0..r {
        let row = t.row(i);
        let picked_start = indices.len();
        for _ in 0..k {
            let picked = &indices[picked_start..];
            let mut best: Option<usize> = None;
            for (j, &v) in row.iter().enumerate() {
                if picked.contains(&j) {
                    continue;
                }
                match best {
                    Some(b) if !(v > row[b]) => {}
                    _ => best = Some(j),
                }
            }
            let j = best.expect("k <= cols leaves a candidate");
            indices.push(j);
            values.push(row[j]);
        }
    }
}

/// Index of the maximum entry in each row (ties broken by lower index).
pub fn argmax_rows(t: &Tensor) -> Vec<usize> {
    let (indices, _) = topk_rows(t, 1);
    indices
}

/// Sum over rows: returns a vector of length `cols` where entry `j` is the
/// sum of column `j`.
pub fn sum_rows(t: &Tensor) -> Vec<f32> {
    let (r, c) = t.shape().as_2d();
    let mut out = vec![0.0f32; c];
    for i in 0..r {
        for (o, &v) in out.iter_mut().zip(t.row(i)) {
            *o += v;
        }
    }
    out
}

/// Sum over columns: returns a vector of length `rows` where entry `i` is
/// the sum of row `i`.
pub fn sum_cols(t: &Tensor) -> Vec<f32> {
    (0..t.rows()).map(|i| t.row(i).iter().sum()).collect()
}

/// SiLU (a.k.a. swish) activation `x * sigmoid(x)`, element-wise.
pub fn silu(t: &Tensor) -> Tensor {
    t.map(|x| x * sigmoid(x))
}

/// SiLU into a caller-owned tensor, reusing its buffer (see
/// [`Tensor::map_into`]).
pub fn silu_into(t: &Tensor, out: &mut Tensor) {
    t.map_into(out, |x| x * sigmoid(x));
}

/// Derivative of SiLU with respect to its input, element-wise, evaluated at
/// the pre-activation `x`.
pub fn silu_grad(t: &Tensor) -> Tensor {
    t.map(|x| {
        let s = sigmoid(x);
        s * (1.0 + x * (1.0 - s))
    })
}

/// SiLU derivative into a caller-owned tensor, reusing its buffer.
pub fn silu_grad_into(t: &Tensor, out: &mut Tensor) {
    t.map_into(out, |x| {
        let s = sigmoid(x);
        s * (1.0 + x * (1.0 - s))
    });
}

/// The logistic function `1 / (1 + e^{-x})`.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::rng::DetRng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = DetRng::new(11);
        let t = Tensor::uniform((7, 5), -4.0, 4.0, &mut rng);
        let s = softmax_rows(&t);
        for i in 0..7 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.row(i).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let t = Tensor::from_rows(&[&[1000.0, 1000.0, 999.0]]);
        let s = softmax_rows(&t);
        assert!(s.as_slice().iter().all(|p| p.is_finite()));
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(s.at2(0, 0) > s.at2(0, 2));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let mut rng = DetRng::new(12);
        let t = Tensor::uniform((4, 6), -3.0, 3.0, &mut rng);
        let ls = log_softmax_rows(&t);
        let s = softmax_rows(&t);
        let exp_ls = ls.map(f32::exp);
        assert!(approx_eq(exp_ls.as_slice(), s.as_slice(), 1e-5));
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let mut rng = DetRng::new(13);
        let logits = Tensor::uniform((2, 4), -1.0, 1.0, &mut rng);
        let grad_out = Tensor::uniform((2, 4), -1.0, 1.0, &mut rng);
        let probs = softmax_rows(&logits);
        let analytic = softmax_rows_backward(&probs, &grad_out);
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut plus = logits.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[idx] -= eps;
            let fp: f32 = softmax_rows(&plus)
                .as_slice()
                .iter()
                .zip(grad_out.as_slice())
                .map(|(&p, &g)| p * g)
                .sum();
            let fm: f32 = softmax_rows(&minus)
                .as_slice()
                .iter()
                .zip(grad_out.as_slice())
                .map(|(&p, &g)| p * g)
                .sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - analytic.at(idx)).abs() < 2e-2,
                "idx {idx}: numeric {numeric} vs analytic {}",
                analytic.at(idx)
            );
        }
    }

    #[test]
    fn topk_orders_by_value() {
        let t = Tensor::from_rows(&[&[0.1, 0.9, 0.5], &[3.0, 1.0, 2.0]]);
        let (idx, val) = topk_rows(&t, 2);
        assert_eq!(idx, vec![1, 2, 0, 2]);
        assert_eq!(val, vec![0.9, 0.5, 3.0, 2.0]);
    }

    #[test]
    fn topk_ties_prefer_lower_index() {
        let t = Tensor::from_rows(&[&[0.5, 0.5, 0.5]]);
        let (idx, _) = topk_rows(&t, 2);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn topk_into_reuses_buffers_and_matches_sort_order() {
        let mut rng = DetRng::new(23);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for case in 0..50 {
            let rows = 1 + case % 5;
            let cols = 2 + case % 7;
            let k = 1 + case % cols;
            // Quantized entries force frequent ties.
            let mut t = Tensor::uniform((rows, cols), -1.0, 1.0, &mut rng);
            for v in t.as_mut_slice() {
                *v = (*v * 4.0).round() / 4.0;
            }
            topk_rows_into(&t, k, &mut indices, &mut values);
            // Reference: full descending sort, ties by lower index.
            let mut want_idx = Vec::new();
            let mut want_val = Vec::new();
            for i in 0..rows {
                let row = t.row(i);
                let mut order: Vec<usize> = (0..cols).collect();
                order.sort_by(|&a, &b| {
                    row[b]
                        .partial_cmp(&row[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                for &j in order.iter().take(k) {
                    want_idx.push(j);
                    want_val.push(row[j]);
                }
            }
            assert_eq!(indices, want_idx, "case {case}");
            assert_eq!(values, want_val, "case {case}");
        }
    }

    #[test]
    fn argmax_rows_picks_max() {
        let t = Tensor::from_rows(&[&[0.0, 2.0, 1.0], &[9.0, 3.0, 4.0]]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }

    #[test]
    fn row_and_col_sums() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(sum_rows(&t), vec![4.0, 6.0]);
        assert_eq!(sum_cols(&t), vec![3.0, 7.0]);
    }

    #[test]
    fn silu_matches_definition() {
        let t = Tensor::from_vec(3usize, vec![-2.0, 0.0, 2.0]);
        let s = silu(&t);
        assert!((s.at(1)).abs() < 1e-7);
        assert!((s.at(2) - 2.0 * sigmoid(2.0)).abs() < 1e-6);
        assert!(s.at(0) < 0.0);
    }

    #[test]
    fn silu_grad_matches_finite_difference() {
        let t = Tensor::from_vec(5usize, vec![-3.0, -1.0, 0.0, 1.0, 3.0]);
        let g = silu_grad(&t);
        let eps = 1e-3f32;
        for i in 0..t.len() {
            let x = t.at(i);
            let numeric =
                ((x + eps) * sigmoid(x + eps) - (x - eps) * sigmoid(x - eps)) / (2.0 * eps);
            assert!((numeric - g.at(i)).abs() < 1e-3);
        }
    }

    #[test]
    fn silu_into_matches_silu_bitwise() {
        let mut rng = DetRng::new(14);
        let t = Tensor::uniform((3, 5), -4.0, 4.0, &mut rng);
        let mut out = Tensor::zeros((1, 1));
        silu_into(&t, &mut out);
        assert_eq!(out, silu(&t));
        silu_grad_into(&t, &mut out);
        assert_eq!(out, silu_grad(&t));
    }

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[-5.0f32, -1.0, 0.0, 1.0, 5.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "topk k=")]
    fn topk_rejects_oversized_k() {
        topk_rows(&Tensor::zeros((1, 2)), 3);
    }
}

//! Deterministic random-number generation.
//!
//! Every stochastic component in the workspace — weight initialization,
//! synthetic corpora, routing traces, placement baselines — draws from a
//! [`DetRng`] seeded with an explicit `u64`, making all experiments
//! reproducible bit-for-bit across runs and machines.
//!
//! The generator is an in-tree xoshiro256++ seeded through SplitMix64
//! (the reference seeding procedure), so the crate builds with zero
//! external dependencies — the build environment has no crates.io access.

/// A deterministic, seedable random-number generator.
///
/// Implements xoshiro256++ with SplitMix64 seed expansion and adds the
/// distributions this workspace needs (uniform, normal via Box–Muller,
/// categorical, permutation) behind a small stable API.
///
/// # Example
/// ```
/// use vela_tensor::rng::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
    /// Cached second sample from the Box–Muller transform.
    spare_normal: Option<f32>,
}

/// One step of SplitMix64: the recommended way to expand a single `u64`
/// seed into the 256-bit xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng {
            state,
            spare_normal: None,
        }
    }

    /// Derives an independent child generator. Used to hand each worker or
    /// data stream its own reproducible stream.
    pub fn fork(&mut self, tag: u64) -> DetRng {
        let seed = self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(seed)
    }

    /// A uniform `u64` (one xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A standard-uniform sample from `[0, 1)` with 24 bits of mantissa.
    pub fn unit(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniform sample from `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform requires lo < hi, got [{lo}, {hi})");
        loop {
            let x = lo + (hi - lo) * self.unit();
            // Rounding at the top of a wide range can land exactly on
            // `hi`; redraw (probability ~2^-24) to keep the half-open
            // contract.
            if x < hi {
                return x;
            }
        }
    }

    /// A normal sample with the given mean and standard deviation
    /// (Box–Muller transform).
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        let z = match self.spare_normal.take() {
            Some(z) => z,
            None => {
                // Box–Muller: two uniforms -> two independent normals.
                let u1 = loop {
                    let u = self.unit();
                    if u > f32::MIN_POSITIVE {
                        break u;
                    }
                };
                let u2 = self.unit();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f32::consts::PI * u2;
                self.spare_normal = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        mean + std * z
    }

    /// A uniform integer from `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below requires n > 0");
        // Rejection sampling over the largest multiple of `n` keeps the
        // distribution exactly uniform.
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Samples an index from an unnormalized weight vector.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn categorical(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "categorical requires weights");
        let total: f32 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "categorical requires positive finite total weight, got {total}"
        );
        let mut target = self.uniform(0.0, total);
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f32) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn matches_xoshiro256pp_reference_vector() {
        // First outputs of xoshiro256++ with state seeded by SplitMix64(0):
        // state = [e220a8397b1dcdaf, 6e789e6aa1b965f4,
        //          06c45d188009454f, f88bb8a8724c81ec].
        let mut rng = DetRng::new(0);
        assert_eq!(rng.next_u64(), 0x53175d61490b23df);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut root1 = DetRng::new(9);
        let mut root2 = DetRng::new(9);
        let mut c1 = root1.fork(5);
        let mut c2 = root2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = root1.fork(6);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = DetRng::new(4);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut rng = DetRng::new(11);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::new(5);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(1.0, 2.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = DetRng::new(12);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.below(5)] += 1;
        }
        for &c in &counts {
            assert!((c as f32 / 50_000.0 - 0.2).abs() < 0.01, "{counts:?}");
        }
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = DetRng::new(6);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.categorical(&[1.0, 2.0, 7.0])] += 1;
        }
        let f2 = counts[2] as f32 / 30_000.0;
        assert!((f2 - 0.7).abs() < 0.02, "freq {f2}");
        assert!(counts[0] < counts[1] && counts[1] < counts[2]);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = DetRng::new(7);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_bad_range_panics() {
        DetRng::new(0).uniform(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn categorical_zero_total_panics() {
        DetRng::new(0).categorical(&[0.0, 0.0]);
    }
}

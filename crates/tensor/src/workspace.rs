//! Thread-local scratch-buffer pool backing the zero-allocation hot path.
//!
//! Every [`Tensor`](crate::Tensor) returns its backing `Vec<f32>` here when
//! dropped, and every tensor-producing op draws its buffer from here first,
//! so a steady-state training step recycles the same handful of buffers
//! instead of hitting the system allocator. Layers that want explicit
//! scratch tensors (attention blocks, MoE gather buffers) use [`take`] /
//! [`take_uninit`] directly; everything else gets pooling for free through
//! the `Tensor` constructors.
//!
//! # Borrowing rules
//!
//! - Buffers are pooled **per thread**. A tensor created on a worker thread
//!   and dropped on the caller's thread migrates its buffer between pools;
//!   this is safe and merely shifts where the capacity lives.
//! - [`take_uninit`] returns a tensor whose elements are *unspecified but
//!   initialized* values (leftovers from a previous use). Callers must
//!   overwrite every element before reading. There is no `unsafe` here: the
//!   pool never exposes uninitialized memory, it only skips the zero-fill.
//! - The pool holds at most [`MAX_POOLED_BUFFERS`] buffers and at most
//!   [`MAX_POOLED_FLOATS`] elements of capacity per buffer; anything larger
//!   is released to the allocator on drop, so pathological peaks don't pin
//!   memory forever.

use std::cell::RefCell;

use vela_obs::LazyCounter;

use crate::{Shape, Tensor};

/// Process-wide pool telemetry (sums over all thread-local pools; the
/// per-thread split stays available via [`stats`]).
static WS_HIT: LazyCounter = LazyCounter::new("tensor.workspace.hit");
static WS_MISS: LazyCounter = LazyCounter::new("tensor.workspace.miss");
static WS_RECYCLED: LazyCounter = LazyCounter::new("tensor.workspace.recycled");

/// Maximum buffers held per thread-local pool.
pub const MAX_POOLED_BUFFERS: usize = 64;

/// Maximum capacity (in `f32` elements) of a single pooled buffer; larger
/// buffers are freed on drop instead of pooled (16M floats = 64 MiB).
pub const MAX_POOLED_FLOATS: usize = 16 << 20;

#[derive(Default)]
struct Pool {
    bufs: Vec<Vec<f32>>,
    hits: u64,
    misses: u64,
    recycled: u64,
}

impl Pool {
    /// Best-fit take: the smallest pooled buffer whose capacity covers `n`,
    /// falling back to the largest available buffer (its capacity will grow
    /// once and then stick) or a fresh allocation.
    fn take(&mut self, n: usize) -> Vec<f32> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, b) in self.bufs.iter().enumerate() {
            let cap = b.capacity();
            let better = match best {
                Some((_, bc)) => {
                    if bc >= n {
                        cap >= n && cap < bc
                    } else {
                        cap > bc
                    }
                }
                None => true,
            };
            if better {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, cap)) => {
                if cap >= n {
                    self.hits += 1;
                    WS_HIT.add(1);
                } else {
                    // The buffer is reused but must grow: counts as a miss.
                    self.misses += 1;
                    WS_MISS.add(1);
                }
                self.bufs.swap_remove(i)
            }
            None => {
                self.misses += 1;
                WS_MISS.add(1);
                Vec::with_capacity(n)
            }
        }
    }

    fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_FLOATS {
            return;
        }
        if self.bufs.len() < MAX_POOLED_BUFFERS {
            self.recycled += 1;
            WS_RECYCLED.add(1);
            self.bufs.push(buf);
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Takes a pooled buffer resized to `n` elements, all zero.
pub(crate) fn take_vec_zeroed(n: usize) -> Vec<f32> {
    let mut v = take_vec_raw(n);
    v.clear();
    v.resize(n, 0.0);
    v
}

/// Takes a pooled buffer resized to `n` elements with unspecified (but
/// initialized) contents. Callers must overwrite every element.
pub(crate) fn take_vec_uninit(n: usize) -> Vec<f32> {
    let mut v = take_vec_raw(n);
    // A pooled vec keeps its full length, so truncating or zero-extending
    // only touches the tail — never `set_len` into untouched capacity.
    if v.len() >= n {
        v.truncate(n);
    } else {
        v.resize(n, 0.0);
    }
    v
}

fn take_vec_raw(n: usize) -> Vec<f32> {
    POOL.try_with(|p| p.borrow_mut().take(n))
        .unwrap_or_else(|_| Vec::with_capacity(n))
}

/// Returns a buffer to the current thread's pool. Called by `Tensor::drop`;
/// safe during thread teardown (the buffer is simply freed then).
pub(crate) fn recycle_vec(buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    // During TLS teardown the pool may already be gone; dropping the buffer
    // normally is the correct fallback.
    let _ = POOL.try_with(|p| p.borrow_mut().recycle(buf));
}

/// Takes a zero-filled tensor of `shape` from the pool.
pub fn take(shape: impl Into<Shape>) -> Tensor {
    let shape = shape.into();
    let data = take_vec_zeroed(shape.len());
    Tensor::from_vec(shape, data)
}

/// Takes a tensor of `shape` with unspecified (but initialized) contents.
/// Every element must be overwritten before it is read.
pub fn take_uninit(shape: impl Into<Shape>) -> Tensor {
    let shape = shape.into();
    let data = take_vec_uninit(shape.len());
    Tensor::from_vec(shape, data)
}

/// Explicitly returns a tensor's buffer to the pool. Equivalent to dropping
/// it; provided so borrow-and-return call sites read symmetrically.
pub fn recycle(tensor: Tensor) {
    drop(tensor);
}

/// Point-in-time pool statistics for the current thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Buffers currently parked in this thread's pool.
    pub pooled_buffers: usize,
    /// Total capacity (elements) parked in this thread's pool.
    pub pooled_floats: usize,
    /// Takes served from the pool since thread start.
    pub hits: u64,
    /// Takes that had to allocate since thread start.
    pub misses: u64,
    /// Buffers accepted back into the pool since thread start.
    pub recycled: u64,
}

/// Statistics for the current thread's pool.
pub fn stats() -> WorkspaceStats {
    POOL.try_with(|p| {
        let p = p.borrow();
        WorkspaceStats {
            pooled_buffers: p.bufs.len(),
            pooled_floats: p.bufs.iter().map(|b| b.capacity()).sum(),
            hits: p.hits,
            misses: p.misses,
            recycled: p.recycled,
        }
    })
    .unwrap_or(WorkspaceStats {
        pooled_buffers: 0,
        pooled_floats: 0,
        hits: 0,
        misses: 0,
        recycled: 0,
    })
}

/// Frees every buffer parked in the current thread's pool.
pub fn clear() {
    let _ = POOL.try_with(|p| p.borrow_mut().bufs.clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_then_take_reuses_capacity() {
        clear();
        let t = take_uninit((16, 16));
        let cap = t.as_slice().len();
        assert_eq!(cap, 256);
        drop(t);
        let before = stats();
        assert!(before.pooled_buffers >= 1);
        let t2 = take((16, 16));
        assert!(t2.as_slice().iter().all(|&x| x == 0.0));
        let after = stats();
        assert!(after.hits > before.hits, "second take should hit the pool");
    }

    #[test]
    fn take_uninit_has_correct_len_only() {
        clear();
        // Park a large buffer, then take a smaller one: length must shrink.
        drop(take((8, 8)));
        let small = take_uninit(5usize);
        assert_eq!(small.len(), 5);
        // And growing past a pooled buffer's length zero-extends the tail.
        let big = take_uninit((32, 32));
        assert_eq!(big.len(), 1024);
    }

    #[test]
    fn oversize_buffers_are_not_pooled() {
        clear();
        let n = MAX_POOLED_FLOATS + 1;
        let t = Tensor::from_vec(n, vec![0.0; n]);
        drop(t);
        assert_eq!(stats().pooled_buffers, 0);
    }

    #[test]
    fn clear_empties_pool() {
        drop(take((4, 4)));
        clear();
        let s = stats();
        assert_eq!(s.pooled_buffers, 0);
        assert_eq!(s.pooled_floats, 0);
    }
}

//! Dense `f32` tensor substrate for the VELA reproduction.
//!
//! This crate provides the minimal numerical foundation that the rest of the
//! workspace builds on: a row-major dense [`Tensor`] type, the arithmetic and
//! linear-algebra kernels needed by a Mixture-of-Experts transformer
//! (mat-muls, softmax, reductions, row gather/scatter), and a deterministic
//! random-number facility ([`rng::DetRng`]) so every experiment in the
//! repository is reproducible bit-for-bit.
//!
//! The design favours clarity and testability first: the mat-mul variants
//! lower onto one packed, register-blocked microkernel ([`gemm`]), threaded
//! across a deterministic pool ([`parallel`]) that partitions work over
//! output rows — so results stay bitwise-identical at any thread count
//! (`VELA_THREADS` selects the pool size; `1` reproduces the serial kernels
//! exactly; `VELA_PAR_CUTOFF` tunes the serial-fallback threshold). Tensor
//! buffers recycle through a thread-local pool ([`workspace`]), keeping
//! steady-state training steps allocation-free.
//!
//! # Example
//!
//! ```
//! use vela_tensor::Tensor;
//!
//! let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```

pub mod gemm;
pub mod ops;
pub mod parallel;
pub mod rng;
mod shape;
mod tensor;
pub mod workspace;

pub use shape::Shape;
pub use tensor::Tensor;

/// Absolute tolerance used by the test helpers in this workspace.
pub const TEST_EPS: f32 = 1e-4;

/// Returns `true` if `a` and `b` are element-wise equal within `tol`.
///
/// Intended for tests; both slices must have the same length.
///
/// # Example
/// ```
/// assert!(vela_tensor::approx_eq(&[1.0], &[1.0 + 1e-6], 1e-4));
/// ```
pub fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

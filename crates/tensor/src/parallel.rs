//! Deterministic std-only parallel compute backend.
//!
//! A persistent, work-stealing-free thread pool shared by every kernel in
//! the workspace. The design goals, in order:
//!
//! 1. **Bitwise determinism.** Work is partitioned over *output rows*, so
//!    each output element is accumulated by exactly one thread in exactly
//!    the order the serial kernel would use. Results are identical at any
//!    thread count, which keeps every parity and gradcheck test in the
//!    repository valid.
//! 2. **Zero dependencies.** Only `std::thread`, `Mutex`, `Condvar` and
//!    atomics; the build environment has no crates.io access.
//! 3. **No oversubscription.** Nested parallel sections (an expert FFN's
//!    matmul inside an already-parallel per-expert dispatch) run serially
//!    inline: every pool thread and every thread currently participating
//!    in a parallel section is marked, and `run` on a marked thread just
//!    executes its chunks on the spot.
//!
//! The pool size comes from the `VELA_THREADS` environment variable,
//! defaulting to [`std::thread::available_parallelism`]. `VELA_THREADS=1`
//! disables threading entirely and is guaranteed to reproduce serial
//! results (which, by goal 1, equal the parallel results anyway).
//!
//! # Example
//! ```
//! use vela_tensor::parallel::{self, ThreadPool};
//!
//! let pool = ThreadPool::new(2);
//! let squares = parallel::with_pool(&pool, || {
//!     parallel::par_map(4, |i| i * i)
//! });
//! assert_eq!(squares, vec![0, 1, 4, 9]);
//! ```

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

use vela_obs::LazyCounter;

/// Cutoff decisions taken by the hinted map helpers: sections that ran
/// inline on the calling thread vs. sections handed to the pool.
static PAR_INLINE: LazyCounter = LazyCounter::new("tensor.par.inline");
static PAR_POOL: LazyCounter = LazyCounter::new("tensor.par.pool");

thread_local! {
    /// True on pool workers and on any thread currently inside
    /// [`ThreadPool::run`]; nested sections run inline.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
    /// Scoped pool override installed by [`with_pool`]; null means the
    /// process-wide default pool.
    static CURRENT_POOL: Cell<*const ThreadPool> = const { Cell::new(std::ptr::null()) };
}

/// A persistent pool of `threads - 1` worker threads; the caller of
/// [`run`](ThreadPool::run) acts as the remaining lane.
#[derive(Debug)]
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
    /// Serializes concurrent `run` calls from different OS threads.
    submit: Mutex<()>,
    handles: Vec<thread::JoinHandle<()>>,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<PoolState>,
    start: Condvar,
    done: Condvar,
}

#[derive(Debug)]
struct PoolState {
    generation: u64,
    job: Option<Job>,
    panicked: bool,
    shutdown: bool,
}

/// One broadcast parallel section. `func` borrows from the `run` caller's
/// stack; soundness rests on `run` not returning until `completed ==
/// chunks`, and on late-waking workers never dereferencing `func` without
/// first claiming an in-range chunk (impossible once all chunks are
/// claimed, since `next` only grows).
#[derive(Debug, Clone)]
struct Job {
    func: FnPtr,
    chunks: usize,
    next: Arc<AtomicUsize>,
    completed: Arc<AtomicUsize>,
}

#[derive(Debug, Clone, Copy)]
struct FnPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and outlives every dereference per the protocol documented on `Job`.
unsafe impl Send for FnPtr {}
unsafe impl Sync for FnPtr {}

impl ThreadPool {
    /// Creates a pool with `threads` total lanes (the caller counts as
    /// one, so `threads - 1` OS threads are spawned). `threads == 1`
    /// spawns nothing and makes every [`run`](Self::run) serial.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("vela-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            threads,
            submit: Mutex::new(()),
            handles,
        }
    }

    /// Total lanes (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `task(i)` for every `i in 0..chunks`, returning once all
    /// chunks finished. Chunks are claimed from a shared counter (no work
    /// stealing, no per-thread queues); since chunks touch disjoint output
    /// regions in every caller in this workspace, claim order never
    /// affects results.
    ///
    /// Runs inline when the pool has one lane, there is at most one chunk,
    /// or the calling thread is already inside a parallel section.
    ///
    /// # Panics
    /// Propagates a panic if any chunk panicked (on whichever thread ran it).
    pub fn run(&self, chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if self.threads == 1 || chunks == 1 || IN_PARALLEL.get() {
            for i in 0..chunks {
                task(i);
            }
            return;
        }
        // A panic propagated by a previous `run` poisons this mutex; the
        // guarded slot holds no data, so the poison flag carries no meaning.
        let _submit = self
            .submit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let next = Arc::new(AtomicUsize::new(0));
        let completed = Arc::new(AtomicUsize::new(0));
        // SAFETY: erases the borrow lifetime from the trait-object pointer.
        // `run` does not return until every chunk completed, so the closure
        // outlives all dereferences (protocol documented on `Job`).
        let func: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync + '_)) };
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.job.is_none(), "job slot busy despite submit lock");
            st.generation += 1;
            st.panicked = false;
            st.job = Some(Job {
                func: FnPtr(func),
                chunks,
                next: next.clone(),
                completed: completed.clone(),
            });
            self.shared.start.notify_all();
        }

        // The caller is a lane too: claim and execute chunks like a worker.
        IN_PARALLEL.set(true);
        let caller_result = catch_unwind(AssertUnwindSafe(|| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= chunks {
                break;
            }
            task(i);
            finish_chunk(&self.shared, &completed, chunks);
        }));
        IN_PARALLEL.set(false);
        if caller_result.is_err() {
            // The panicking chunk still counts as attempted, otherwise the
            // completion count never reaches `chunks`.
            finish_chunk(&self.shared, &completed, chunks);
        }

        let mut st = self.shared.state.lock().unwrap();
        while st.job.is_some() {
            st = self.shared.done.wait(st).unwrap();
        }
        let worker_panicked = st.panicked;
        drop(st);
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        if worker_panicked {
            panic!("a parallel task panicked on a pool worker");
        }
    }
}

/// Records one attempted chunk; the thread that attempts the last chunk
/// clears the job slot and wakes the submitter.
fn finish_chunk(shared: &Shared, completed: &AtomicUsize, chunks: usize) {
    if completed.fetch_add(1, Ordering::AcqRel) + 1 == chunks {
        let mut st = shared.state.lock().unwrap();
        st.job = None;
        shared.done.notify_all();
    }
}

fn worker_loop(shared: &Shared) {
    IN_PARALLEL.set(true);
    let mut seen_generation = 0u64;
    loop {
        let (job, generation) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen_generation {
                    if let Some(job) = st.job.clone() {
                        break (job, st.generation);
                    }
                    // A generation we never saw already completed.
                    seen_generation = st.generation;
                }
                st = shared.start.wait(st).unwrap();
            }
        };
        seen_generation = generation;
        loop {
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.chunks {
                break;
            }
            // SAFETY: `i < chunks`, so the submitter is still blocked in
            // `run` and the borrowed closure is alive.
            let task = unsafe { &*job.func.0 };
            if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
                shared.state.lock().unwrap().panicked = true;
            }
            finish_chunk(shared, &job.completed, job.chunks);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Minimum number of inner-loop operations a parallel chunk should own;
/// kernels split work into chunks of at least this much each.
pub const PAR_MIN_WORK: usize = 16 * 1024;

/// Default serial-fallback cutoff (in inner-loop operations, e.g.
/// `rows * k * cols` for a matmul): dispatches smaller than this skip the
/// pool entirely. On small or oversubscribed hosts the pool's wake/sync
/// overhead exceeds the kernel time well past this point, which is what
/// made PR 1's "parallel" MoE dispatch slower than serial.
pub const DEFAULT_PAR_CUTOFF: usize = 1 << 18;

/// The serial-fallback cutoff, read once from `VELA_PAR_CUTOFF`.
///
/// Work totals **below** the cutoff run inline on the calling thread.
/// `VELA_PAR_CUTOFF=0` disables the fallback (everything goes to the
/// pool); an unset or unparsable value means [`DEFAULT_PAR_CUTOFF`].
pub fn par_cutoff() -> usize {
    static CUTOFF: OnceLock<usize> = OnceLock::new();
    *CUTOFF.get_or_init(|| parse_cutoff(std::env::var("VELA_PAR_CUTOFF").ok().as_deref()))
}

fn parse_cutoff(raw: Option<&str>) -> usize {
    match raw {
        Some(v) => v.trim().parse::<usize>().unwrap_or(DEFAULT_PAR_CUTOFF),
        None => DEFAULT_PAR_CUTOFF,
    }
}

/// [`par_map`] with a total-work hint: runs inline (no pool, no per-slot
/// bookkeeping) when `total_work` is below [`par_cutoff`] or there is only
/// one item.
pub fn par_map_hinted<R: Send, F: Fn(usize) -> R + Sync>(
    n: usize,
    total_work: usize,
    f: F,
) -> Vec<R> {
    if n <= 1 || total_work < par_cutoff() || current_threads() <= 1 {
        PAR_INLINE.add(1);
        return (0..n).map(f).collect();
    }
    PAR_POOL.add(1);
    par_map(n, f)
}

/// [`par_map_mut`] with a total-work hint: runs inline when `total_work` is
/// below [`par_cutoff`] or there is only one item.
pub fn par_map_mut_hinted<T, R, F>(items: &mut [T], total_work: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    if items.len() <= 1 || total_work < par_cutoff() || current_threads() <= 1 {
        PAR_INLINE.add(1);
        return items.iter_mut().enumerate().map(|(i, v)| f(i, v)).collect();
    }
    PAR_POOL.add(1);
    par_map_mut(items, f)
}

/// Thread count requested via `VELA_THREADS`, falling back to the host's
/// available parallelism. Invalid or zero values fall back too.
pub fn default_threads() -> usize {
    match std::env::var("VELA_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available(),
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// The process-wide default pool, created on first use from
/// `VELA_THREADS` / [`std::thread::available_parallelism`].
pub fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

/// Runs `f` with `pool` installed as the calling thread's current pool;
/// every kernel invoked inside uses it instead of the global pool. This is
/// the shared handle threaded through `vela-nn`/`vela-model`, and the lever
/// the parity tests use to compare thread counts in one process.
pub fn with_pool<R>(pool: &ThreadPool, f: impl FnOnce() -> R) -> R {
    let previous = CURRENT_POOL.with(|c| c.replace(pool as *const ThreadPool));
    struct Restore(*const ThreadPool);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_POOL.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(previous);
    f()
}

/// Calls `g` with the calling thread's current pool (the [`with_pool`]
/// override if one is active, the global pool otherwise).
fn with_current<R>(g: impl FnOnce(&ThreadPool) -> R) -> R {
    let ptr = CURRENT_POOL.with(Cell::get);
    if ptr.is_null() {
        g(global_pool())
    } else {
        // SAFETY: `with_pool` keeps the pool borrowed for the whole scope
        // in which the override is installed.
        g(unsafe { &*ptr })
    }
}

/// Lane count of the calling thread's current pool.
pub fn current_threads() -> usize {
    with_current(ThreadPool::threads)
}

/// Splits `0..rows` into at most `lanes` contiguous ranges of at least
/// `min_rows` rows each and runs `f` on every range in parallel.
///
/// Partitioning is over whole rows, so callers that write disjoint row
/// slices of an output buffer get bitwise-deterministic results at any
/// thread count.
pub fn par_ranges(rows: usize, min_rows: usize, f: impl Fn(Range<usize>) + Sync) {
    if rows == 0 {
        return;
    }
    with_current(|pool| {
        let max_chunks = rows.div_ceil(min_rows.max(1));
        let chunks = pool.threads().min(max_chunks).max(1);
        if chunks == 1 {
            f(0..rows);
            return;
        }
        let per_chunk = rows.div_ceil(chunks);
        pool.run(chunks, &|ci| {
            let start = ci * per_chunk;
            let end = ((ci + 1) * per_chunk).min(rows);
            if start < end {
                f(start..end);
            }
        });
    });
}

/// Computes `f(i)` for `i in 0..n` in parallel and returns the results in
/// index order. Each result slot is written by exactly one chunk.
pub fn par_map<R: Send, F: Fn(usize) -> R + Sync>(n: usize, f: F) -> Vec<R> {
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    {
        let slots = DisjointSlots::new(&mut results);
        with_current(|pool| {
            pool.run(n, &|i| {
                // SAFETY: chunk `i` is the only writer of slot `i`.
                unsafe { *slots.get(i) = Some(f(i)) };
            });
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("parallel map chunk skipped"))
        .collect()
}

/// Applies `f` to every element of `items` in parallel, each element
/// visited by exactly one chunk, and returns the per-element results in
/// order.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    {
        let slots = DisjointSlots::new(&mut results);
        let targets = DisjointSlots::new(items);
        with_current(|pool| {
            pool.run(n, &|i| {
                // SAFETY: chunk `i` is the only accessor of element `i` of
                // both slices.
                unsafe { *slots.get(i) = Some(f(i, &mut *targets.get(i))) };
            });
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("parallel map chunk skipped"))
        .collect()
}

/// A raw view over a mutable slice for index-disjoint parallel writes.
///
/// Callers must guarantee that no index is accessed by two chunks; the
/// helpers above satisfy this by assigning chunk `i` exactly slot `i`.
pub(crate) struct DisjointSlots<T> {
    base: *mut T,
    len: usize,
}

// SAFETY: access discipline (disjoint indices, all writes complete before
// the borrow ends) is enforced by the callers.
unsafe impl<T: Send> Send for DisjointSlots<T> {}
unsafe impl<T: Send> Sync for DisjointSlots<T> {}

impl<T> DisjointSlots<T> {
    pub(crate) fn new(slice: &mut [T]) -> Self {
        DisjointSlots {
            base: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Pointer to element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and not concurrently accessed by any other
    /// chunk.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self, i: usize) -> *mut T {
        debug_assert!(i < self.len);
        unsafe { self.base.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn run_executes_every_chunk_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        pool.run(64, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.run(5, &|i| order.lock().unwrap().push(i));
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_is_reusable_across_many_runs() {
        let pool = ThreadPool::new(3);
        for round in 0..50 {
            let total = AtomicUsize::new(0);
            pool.run(7, &|i| {
                total.fetch_add(i + 1, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 28, "round {round}");
        }
    }

    #[test]
    fn nested_run_executes_inline_without_deadlock() {
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        pool.run(4, &|_| {
            // Nested section: must run inline on whichever thread is here.
            with_current(|p| {
                p.run(3, &|_| {
                    total.fetch_add(1, Ordering::Relaxed);
                })
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn par_map_preserves_index_order() {
        let pool = ThreadPool::new(4);
        let out = with_pool(&pool, || par_map(100, |i| i * 3));
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_mut_gives_each_element_to_one_chunk() {
        let pool = ThreadPool::new(4);
        let mut items = vec![0u64; 32];
        let doubles = with_pool(&pool, || {
            par_map_mut(&mut items, |i, v| {
                *v = i as u64 + 1;
                *v * 2
            })
        });
        assert_eq!(items, (1..=32u64).collect::<Vec<_>>());
        assert_eq!(doubles, (1..=32u64).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_ranges_covers_rows_exactly_once() {
        let pool = ThreadPool::new(3);
        let covered: Vec<AtomicU32> = (0..97).map(|_| AtomicU32::new(0)).collect();
        with_pool(&pool, || {
            par_ranges(97, 4, |range| {
                for i in range {
                    covered[i].fetch_add(1, Ordering::Relaxed);
                }
            })
        });
        assert!(covered.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn with_pool_overrides_and_restores() {
        let pool = ThreadPool::new(7);
        let outer = current_threads();
        let inner = with_pool(&pool, current_threads);
        assert_eq!(inner, 7);
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("chunk 3 exploded");
                }
            });
        }));
        assert!(result.is_err());
        // Pool must stay usable after a panicked section.
        let total = AtomicUsize::new(0);
        pool.run(4, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn zero_chunks_is_a_no_op() {
        let pool = ThreadPool::new(2);
        pool.run(0, &|_| panic!("must not run"));
    }

    #[test]
    fn env_default_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn cutoff_parsing() {
        assert_eq!(parse_cutoff(None), DEFAULT_PAR_CUTOFF);
        assert_eq!(parse_cutoff(Some("4096")), 4096);
        assert_eq!(parse_cutoff(Some(" 0 ")), 0);
        assert_eq!(parse_cutoff(Some("banana")), DEFAULT_PAR_CUTOFF);
        assert_eq!(parse_cutoff(Some("")), DEFAULT_PAR_CUTOFF);
    }

    #[test]
    fn hinted_maps_match_plain_maps() {
        let pool = ThreadPool::new(3);
        with_pool(&pool, || {
            // Below any sensible cutoff: serial path.
            let small = par_map_hinted(8, 10, |i| i * 2);
            assert_eq!(small, (0..8).map(|i| i * 2).collect::<Vec<_>>());
            // Above the cutoff: pool path, same results.
            let big = par_map_hinted(8, usize::MAX, |i| i * 2);
            assert_eq!(big, small);
            let mut items = vec![0usize; 8];
            let r1 = par_map_mut_hinted(&mut items, 10, |i, v| {
                *v = i;
                i
            });
            let mut items2 = vec![0usize; 8];
            let r2 = par_map_mut_hinted(&mut items2, usize::MAX, |i, v| {
                *v = i;
                i
            });
            assert_eq!(items, items2);
            assert_eq!(r1, r2);
        });
    }
}

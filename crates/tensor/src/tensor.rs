use std::fmt;
use std::ops::{Add, Mul, Neg, Range, Sub};

use crate::parallel;
use crate::rng::DetRng;
use crate::Shape;

/// Rows are processed in tiles of this many rows so that a `B` row loaded
/// into cache is reused across the whole tile.
const ROW_TILE: usize = 8;

/// Minimum number of multiply-adds a parallel chunk should own; matmuls
/// below roughly this size run serially, and larger ones are split into
/// row ranges of at least this much work each.
const PAR_MIN_WORK: usize = 16 * 1024;

/// Runs `kernel` over row ranges of `0..rows`, handing each invocation the
/// disjoint `[range.len() * cols]` sub-slice of `out` it owns.
///
/// Work is partitioned over whole output rows and every row is written by
/// exactly one chunk, so results are bitwise-identical at any thread
/// count.
fn par_rows_into(
    rows: usize,
    cols: usize,
    work_per_row: usize,
    out: &mut [f32],
    kernel: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    debug_assert_eq!(out.len(), rows * cols);
    let min_rows = (PAR_MIN_WORK / work_per_row.max(1)).max(1);
    let slots = parallel::DisjointSlots::new(out);
    parallel::par_ranges(rows, min_rows, |range| {
        // SAFETY: ranges from `par_ranges` are disjoint, so each chunk is
        // the sole accessor of its row slice.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(slots.get(range.start * cols), range.len() * cols)
        };
        kernel(range, chunk);
    });
}

/// `C[rows] = A[rows, :] @ B` for a row range, writing into `out` (the
/// sub-slice owned by this range). Every output element accumulates its
/// `k` terms in ascending-`p` order starting from `0.0` — the contract the
/// parity suite pins down.
fn matmul_rows(a: &[f32], b: &[f32], k: usize, c: usize, rows: Range<usize>, out: &mut [f32]) {
    let base = rows.start;
    let mut i0 = rows.start;
    while i0 < rows.end {
        let ilim = (i0 + ROW_TILE).min(rows.end);
        for p in 0..k {
            let brow = &b[p * c..(p + 1) * c];
            for i in i0..ilim {
                let av = a[i * k + p];
                let orow = &mut out[(i - base) * c..(i - base + 1) * c];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        i0 = ilim;
    }
}

/// `C[rows] = A^T[rows, :] @ B` for a row range over `A: (k, r)`,
/// `B: (k, c)`. Same ascending-`p` accumulation order as [`matmul_rows`].
fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    k: usize,
    r: usize,
    c: usize,
    rows: Range<usize>,
    out: &mut [f32],
) {
    let base = rows.start;
    let mut i0 = rows.start;
    while i0 < rows.end {
        let ilim = (i0 + ROW_TILE).min(rows.end);
        for p in 0..k {
            let aseg = &a[p * r + i0..p * r + ilim];
            let brow = &b[p * c..(p + 1) * c];
            for (off, &av) in aseg.iter().enumerate() {
                let i = i0 + off;
                let orow = &mut out[(i - base) * c..(i - base + 1) * c];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        i0 = ilim;
    }
}

/// `C[rows] = A[rows, :] @ B^T` for a row range over `A: (r, k)`,
/// `B: (c, k)`. Each element is one dot product accumulated in ascending
/// inner-index order.
fn matmul_nt_rows(a: &[f32], b: &[f32], k: usize, c: usize, rows: Range<usize>, out: &mut [f32]) {
    let base = rows.start;
    let mut i0 = rows.start;
    while i0 < rows.end {
        let ilim = (i0 + ROW_TILE).min(rows.end);
        for j in 0..c {
            let brow = &b[j * k..(j + 1) * k];
            for i in i0..ilim {
                let arow = &a[i * k..(i + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                out[(i - base) * c + j] = acc;
            }
        }
        i0 = ilim;
    }
}

/// A dense, row-major, owned `f32` tensor of at most three dimensions.
///
/// `Tensor` is the single numerical currency of the workspace: activations,
/// weights, gradients and optimizer state are all `Tensor`s. The type keeps
/// its buffer contiguous and owned, which keeps every kernel a simple loop
/// and makes serialization for the distributed runtime trivial.
///
/// Most kernels live as inherent methods here or in [`crate::ops`]; binary
/// operators (`+`, `-`, `*`) are provided for same-shape element-wise use.
///
/// # Example
/// ```
/// use vela_tensor::Tensor;
///
/// let x = Tensor::full((2, 2), 3.0);
/// let y = &x + &Tensor::eye(2);
/// assert_eq!(y.at2(0, 0), 4.0);
/// assert_eq!(y.at2(0, 1), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            data.len(),
            "shape {shape} expects {} elements, got {}",
            shape.len(),
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates a 2-D tensor from row slices.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Tensor::from_vec((rows.len(), cols), data)
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.len();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.len();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// The `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros((n, n));
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut DetRng) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { shape, data }
    }

    /// A tensor with elements drawn from a normal distribution.
    pub fn normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut DetRng) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.normal(mean, std)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows in the 2-D view (outer dims flattened).
    pub fn rows(&self) -> usize {
        self.shape.as_2d().0
    }

    /// Number of columns in the 2-D view (innermost dim).
    pub fn cols(&self) -> usize {
        self.shape.as_2d().1
    }

    /// Immutable access to the backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at flat index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn at(&self, i: usize) -> f32 {
        self.data[i]
    }

    /// Element at 2-D position `(row, col)` of the flattened 2-D view.
    ///
    /// # Panics
    /// Panics if the position is out of bounds.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        let (r, c) = self.shape.as_2d();
        assert!(row < r && col < c, "index ({row},{col}) out of {r}x{c}");
        self.data[row * c + col]
    }

    /// Sets the element at 2-D position `(row, col)`.
    ///
    /// # Panics
    /// Panics if the position is out of bounds.
    pub fn set2(&mut self, row: usize, col: usize, value: f32) {
        let (r, c) = self.shape.as_2d();
        assert!(row < r && col < c, "index ({row},{col}) out of {r}x{c}");
        self.data[row * c + col] = value;
    }

    /// Borrows row `row` of the 2-D view.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        let (r, c) = self.shape.as_2d();
        assert!(row < r, "row {row} out of {r}");
        &self.data[row * c..(row + 1) * c]
    }

    /// Mutably borrows row `row` of the 2-D view.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        let (r, c) = self.shape.as_2d();
        assert!(row < r, "row {row} out of {r}");
        &mut self.data[row * c..(row + 1) * c]
    }

    /// Returns a copy reshaped to `shape` (same element count).
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements into {shape}",
            self.data.len()
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise `self + other` (same shape).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise `self - other` (same shape).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise `self * other` (Hadamard product, same shape).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise combination of two same-shape tensors.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += other` (same shape).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += scale * other` (same shape). The fused AXPY used by
    /// gradient accumulation and optimizers.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// `self * s` for a scalar `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place scalar multiply.
    pub fn scale_inplace(&mut self, s: f32) {
        self.map_inplace(|x| x * s);
    }

    /// Fills the tensor with zeros, keeping its shape.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean of empty tensor");
        self.sum() / self.data.len() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of empty tensor");
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// 2-D transpose of the flattened 2-D view.
    pub fn transpose(&self) -> Tensor {
        let (r, c) = self.shape.as_2d();
        let mut out = Tensor::zeros((c, r));
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Matrix product of the 2-D views: `(r x k) @ (k x c) -> (r x c)`.
    ///
    /// Large products are split over output rows across the current
    /// [`parallel`] pool; every element is accumulated in ascending
    /// inner-index order regardless of thread count, so results are
    /// bitwise-deterministic.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (r, k) = self.shape.as_2d();
        let (k2, c) = other.shape.as_2d();
        assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
        let mut out = vec![0.0f32; r * c];
        let (a, b) = (&self.data, &other.data);
        par_rows_into(r, c, k * c, &mut out, |rows, chunk| {
            matmul_rows(a, b, k, c, rows, chunk);
        });
        Tensor::from_vec((r, c), out)
    }

    /// `self^T @ other`: `(k x r)^T`-free product computing `(r x c)` from
    /// `self: (k x r)` and `other: (k x c)` without materializing the
    /// transpose. Used by backward passes for weight gradients.
    ///
    /// # Panics
    /// Panics if the outer (row) dimensions disagree.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (k, r) = self.shape.as_2d();
        let (k2, c) = other.shape.as_2d();
        assert_eq!(k, k2, "matmul_tn row dims: {k} vs {k2}");
        let mut out = vec![0.0f32; r * c];
        let (a, b) = (&self.data, &other.data);
        par_rows_into(r, c, k * c, &mut out, |rows, chunk| {
            matmul_tn_rows(a, b, k, r, c, rows, chunk);
        });
        Tensor::from_vec((r, c), out)
    }

    /// `self @ other^T`: computes `(r x c)` from `self: (r x k)` and
    /// `other: (c x k)` without materializing the transpose. Used by backward
    /// passes for input gradients.
    ///
    /// # Panics
    /// Panics if the inner (column) dimensions disagree.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (r, k) = self.shape.as_2d();
        let (c, k2) = other.shape.as_2d();
        assert_eq!(k, k2, "matmul_nt col dims: {k} vs {k2}");
        let mut out = vec![0.0f32; r * c];
        let (a, b) = (&self.data, &other.data);
        par_rows_into(r, c, k * c, &mut out, |rows, chunk| {
            matmul_nt_rows(a, b, k, c, rows, chunk);
        });
        Tensor::from_vec((r, c), out)
    }

    /// Gathers rows of the 2-D view by index, producing
    /// `(indices.len() x cols)`.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let (r, c) = self.shape.as_2d();
        let mut data = Vec::with_capacity(indices.len() * c);
        for &idx in indices {
            assert!(idx < r, "gather index {idx} out of {r} rows");
            data.extend_from_slice(&self.data[idx * c..(idx + 1) * c]);
        }
        Tensor::from_vec((indices.len(), c), data)
    }

    /// Scatter-add of `src` rows into `self` rows of the 2-D view:
    /// `self[indices[i]] += src[i]`.
    ///
    /// # Panics
    /// Panics if the column counts differ, the index count does not match
    /// `src`'s row count, or any index is out of bounds.
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Tensor) {
        let (r, c) = self.shape.as_2d();
        let (sr, sc) = src.shape.as_2d();
        assert_eq!(c, sc, "scatter column mismatch: {c} vs {sc}");
        assert_eq!(indices.len(), sr, "scatter index count mismatch");
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < r, "scatter index {idx} out of {r} rows");
            let dst = &mut self.data[idx * c..(idx + 1) * c];
            let s = &src.data[i * c..(i + 1) * c];
            for (d, &v) in dst.iter_mut().zip(s) {
                *d += v;
            }
        }
    }

    /// Concatenates 2-D tensors along rows.
    ///
    /// # Panics
    /// Panics if `parts` is empty or the column counts differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows requires at least one part");
        let c = parts[0].cols();
        let total: usize = parts.iter().map(|p| p.rows()).sum();
        let mut data = Vec::with_capacity(total * c);
        for p in parts {
            assert_eq!(p.cols(), c, "concat column mismatch");
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec((total, c), data)
    }

    /// Adds `bias` (length = cols) to every row of the 2-D view.
    ///
    /// # Panics
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Tensor {
        let (r, c) = self.shape.as_2d();
        assert_eq!(bias.len(), c, "bias length {} vs cols {c}", bias.len());
        let mut out = self.clone();
        for i in 0..r {
            for (j, &b) in bias.iter().enumerate() {
                out.data[i * c + j] += b;
            }
        }
        out
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}", self.shape)?;
        if self.len() <= 8 {
            write!(f, ", {:?})", self.data)
        } else {
            write!(
                f,
                ", [{:.4}, {:.4}, .., {:.4}])",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1]
            )
        }
    }
}

impl Default for Tensor {
    /// A 1-element zero tensor.
    fn default() -> Self {
        Tensor::zeros(1usize)
    }
}

impl Add for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs)
    }
}

impl Sub for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs)
    }
}

impl Mul for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        Tensor::mul(self, rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        let mut t = t;
        t.set2(0, 0, -1.0);
        assert_eq!(t.at(0), -1.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = DetRng::new(7);
        let a = Tensor::uniform((4, 4), -1.0, 1.0, &mut rng);
        let i = Tensor::eye(4);
        assert!(approx_eq(a.matmul(&i).as_slice(), a.as_slice(), 1e-6));
        assert!(approx_eq(i.matmul(&a).as_slice(), a.as_slice(), 1e-6));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = DetRng::new(1);
        let a = Tensor::uniform((5, 3), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform((5, 4), -1.0, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!(approx_eq(fast.as_slice(), slow.as_slice(), 1e-5));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = DetRng::new(2);
        let a = Tensor::uniform((5, 3), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform((4, 3), -1.0, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert!(approx_eq(fast.as_slice(), slow.as_slice(), 1e-5));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(3usize, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(3usize, vec![4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0, -3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(2usize, vec![1.0, 1.0]);
        let g = Tensor::from_vec(2usize, vec![2.0, 4.0]);
        a.axpy(0.5, &g);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 1.5);
        assert_eq!(t.max(), 4.0);
        assert!((t.norm() - (1.0f32 + 4.0 + 9.0 + 16.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = t.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
        let mut out = Tensor::zeros((3, 2));
        out.scatter_add_rows(&[2, 0], &g);
        assert_eq!(out.as_slice(), &[1.0, 2.0, 0.0, 0.0, 5.0, 6.0]);
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let src = Tensor::from_rows(&[&[1.0], &[2.0]]);
        let mut out = Tensor::zeros((2, 1));
        out.scatter_add_rows(&[0, 0], &src);
        assert_eq!(out.as_slice(), &[3.0, 0.0]);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = DetRng::new(3);
        let a = Tensor::uniform((3, 5), -1.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(6usize, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let r = t.reshape((2, 3));
        assert_eq!(r.at2(1, 0), 3.0);
        let r3 = t.reshape((1, 2, 3));
        assert_eq!(r3.shape().dims(), &[1, 2, 3]);
    }

    #[test]
    fn add_row_broadcast_adds_bias() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let out = t.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros((2, 3));
        let b = Tensor::zeros((2, 3));
        a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros((2, 3));
        let b = Tensor::zeros((3, 2));
        let _ = &a + &b;
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", Tensor::zeros(1usize)).is_empty());
        assert!(!format!("{:?}", Tensor::zeros((4, 4))).is_empty());
    }
}

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::gemm::{self, Layout};
use crate::rng::DetRng;
use crate::workspace;
use crate::Shape;

/// Resizes a pooled buffer to `n` elements without preserving contents
/// (beyond the zero-fill of any newly grown tail).
fn resize_for(data: &mut Vec<f32>, n: usize) {
    if data.len() >= n {
        data.truncate(n);
    } else {
        data.resize(n, 0.0);
    }
}

/// A dense, row-major, owned `f32` tensor of at most three dimensions.
///
/// `Tensor` is the single numerical currency of the workspace: activations,
/// weights, gradients and optimizer state are all `Tensor`s. The type keeps
/// its buffer contiguous and owned, which keeps every kernel a simple loop
/// and makes serialization for the distributed runtime trivial.
///
/// Buffers are drawn from and returned to the thread-local
/// [`workspace`] pool: dropping a tensor recycles its allocation, and every
/// constructor reuses a pooled buffer when one fits, so steady-state
/// training steps stay off the system allocator.
///
/// Most kernels live as inherent methods here or in [`crate::ops`]; binary
/// operators (`+`, `-`, `*`) are provided for same-shape element-wise use.
///
/// # Example
/// ```
/// use vela_tensor::Tensor;
///
/// let x = Tensor::full((2, 2), 3.0);
/// let y = &x + &Tensor::eye(2);
/// assert_eq!(y.at2(0, 0), 4.0);
/// assert_eq!(y.at2(0, 1), 3.0);
/// ```
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = workspace::take_vec_uninit(self.data.len());
        data.copy_from_slice(&self.data);
        Tensor {
            shape: self.shape,
            data,
        }
    }
}

impl Drop for Tensor {
    /// Returns the backing buffer to the thread-local [`workspace`] pool.
    fn drop(&mut self) {
        workspace::recycle_vec(std::mem::take(&mut self.data));
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            data.len(),
            "shape {shape} expects {} elements, got {}",
            shape.len(),
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates a 2-D tensor from row slices.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = workspace::take_vec_uninit(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data[i * cols..(i + 1) * cols].copy_from_slice(row);
        }
        Tensor::from_vec((rows.len(), cols), data)
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = workspace::take_vec_zeroed(shape.len());
        Tensor { shape, data }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let mut data = workspace::take_vec_uninit(shape.len());
        data.fill(value);
        Tensor { shape, data }
    }

    /// The `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros((n, n));
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut DetRng) -> Self {
        let shape = shape.into();
        let mut data = workspace::take_vec_uninit(shape.len());
        for x in &mut data {
            *x = rng.uniform(lo, hi);
        }
        Tensor { shape, data }
    }

    /// A tensor with elements drawn from a normal distribution.
    pub fn normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut DetRng) -> Self {
        let shape = shape.into();
        let mut data = workspace::take_vec_uninit(shape.len());
        for x in &mut data {
            *x = rng.normal(mean, std);
        }
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows in the 2-D view (outer dims flattened).
    pub fn rows(&self) -> usize {
        self.shape.as_2d().0
    }

    /// Number of columns in the 2-D view (innermost dim).
    pub fn cols(&self) -> usize {
        self.shape.as_2d().1
    }

    /// Immutable access to the backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer (which is then
    /// owned by the caller instead of returning to the pool).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Element at flat index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn at(&self, i: usize) -> f32 {
        self.data[i]
    }

    /// Element at 2-D position `(row, col)` of the flattened 2-D view.
    ///
    /// # Panics
    /// Panics if the position is out of bounds.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        let (r, c) = self.shape.as_2d();
        assert!(row < r && col < c, "index ({row},{col}) out of {r}x{c}");
        self.data[row * c + col]
    }

    /// Sets the element at 2-D position `(row, col)`.
    ///
    /// # Panics
    /// Panics if the position is out of bounds.
    pub fn set2(&mut self, row: usize, col: usize, value: f32) {
        let (r, c) = self.shape.as_2d();
        assert!(row < r && col < c, "index ({row},{col}) out of {r}x{c}");
        self.data[row * c + col] = value;
    }

    /// Borrows row `row` of the 2-D view.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        let (r, c) = self.shape.as_2d();
        assert!(row < r, "row {row} out of {r}");
        &self.data[row * c..(row + 1) * c]
    }

    /// Mutably borrows row `row` of the 2-D view.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        let (r, c) = self.shape.as_2d();
        assert!(row < r, "row {row} out of {r}");
        &mut self.data[row * c..(row + 1) * c]
    }

    /// Returns a copy reshaped to `shape` (same element count).
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements into {shape}",
            self.data.len()
        );
        let mut out = self.clone();
        out.shape = shape;
        out
    }

    /// Becomes a buffer-reusing copy of `src`: shape and contents are
    /// overwritten, the existing allocation is kept when it fits. The
    /// zero-allocation replacement for `*slot = src.clone()` in layer
    /// caches.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape = src.shape;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = workspace::take_vec_uninit(self.data.len());
        for (o, &x) in out.iter_mut().zip(&self.data) {
            *o = f(x);
        }
        Tensor {
            shape: self.shape,
            data: out,
        }
    }

    /// Applies `f` to every element, writing into `out` (reshaped to match;
    /// its buffer is reused).
    pub fn map_into(&self, out: &mut Tensor, f: impl Fn(f32) -> f32) {
        out.shape = self.shape;
        resize_for(&mut out.data, self.data.len());
        for (o, &x) in out.data.iter_mut().zip(&self.data) {
            *o = f(x);
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise `self + other` (same shape).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise `self - other` (same shape).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise `self * other` (Hadamard product, same shape).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise combination of two same-shape tensors.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        let mut out = workspace::take_vec_uninit(self.data.len());
        for ((o, &a), &b) in out.iter_mut().zip(&self.data).zip(&other.data) {
            *o = f(a, b);
        }
        Tensor {
            shape: self.shape,
            data: out,
        }
    }

    /// Element-wise combination written into `out` (reshaped to match; its
    /// buffer is reused).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip_into(&self, other: &Tensor, out: &mut Tensor, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        out.shape = self.shape;
        resize_for(&mut out.data, self.data.len());
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = f(a, b);
        }
    }

    /// In-place `self += other` (same shape).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += scale * other` (same shape). The fused AXPY used by
    /// gradient accumulation and optimizers.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        crate::ops::scaled_add(&mut self.data, scale, &other.data);
    }

    /// `self * s` for a scalar `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place scalar multiply.
    pub fn scale_inplace(&mut self, s: f32) {
        self.map_inplace(|x| x * s);
    }

    /// Fills the tensor with zeros, keeping its shape.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean of empty tensor");
        self.sum() / self.data.len() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of empty tensor");
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// 2-D transpose of the flattened 2-D view.
    pub fn transpose(&self) -> Tensor {
        let (r, c) = self.shape.as_2d();
        let mut out = workspace::take_vec_uninit(self.data.len());
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec((c, r), out)
    }

    /// Matrix product of the 2-D views: `(r x k) @ (k x c) -> (r x c)`.
    ///
    /// All three variants lower onto the packed microkernel in
    /// [`crate::gemm`]. Large products are split over output rows across
    /// the current [`crate::parallel`] pool; every element is accumulated
    /// in ascending inner-index order regardless of thread count, so
    /// results are bitwise-deterministic.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (r, k) = self.shape.as_2d();
        let (k2, c) = other.shape.as_2d();
        assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
        let mut out = workspace::take_vec_uninit(r * c);
        gemm::gemm(Layout::Nn, &self.data, &other.data, r, k, c, &mut out);
        Tensor::from_vec((r, c), out)
    }

    /// `self^T @ other`: `(k x r)^T`-free product computing `(r x c)` from
    /// `self: (k x r)` and `other: (k x c)` without materializing the
    /// transpose. Used by backward passes for weight gradients.
    ///
    /// # Panics
    /// Panics if the outer (row) dimensions disagree.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (k, r) = self.shape.as_2d();
        let (k2, c) = other.shape.as_2d();
        assert_eq!(k, k2, "matmul_tn row dims: {k} vs {k2}");
        let mut out = workspace::take_vec_uninit(r * c);
        gemm::gemm(Layout::Tn, &self.data, &other.data, r, k, c, &mut out);
        Tensor::from_vec((r, c), out)
    }

    /// `self @ other^T`: computes `(r x c)` from `self: (r x k)` and
    /// `other: (c x k)` without materializing the transpose. Used by backward
    /// passes for input gradients.
    ///
    /// # Panics
    /// Panics if the inner (column) dimensions disagree.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (r, k) = self.shape.as_2d();
        let (c, k2) = other.shape.as_2d();
        assert_eq!(k, k2, "matmul_nt col dims: {k} vs {k2}");
        let mut out = workspace::take_vec_uninit(r * c);
        gemm::gemm(Layout::Nt, &self.data, &other.data, r, k, c, &mut out);
        Tensor::from_vec((r, c), out)
    }

    /// Gathers rows of the 2-D view by index, producing
    /// `(indices.len() x cols)`.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let c = self.shape.as_2d().1;
        let mut out = Tensor::from_vec(
            (indices.len(), c),
            workspace::take_vec_uninit(indices.len() * c),
        );
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// Gathers rows by index into `out` (reshaped to
    /// `(indices.len(), cols)`; its buffer is reused).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Tensor) {
        let (r, c) = self.shape.as_2d();
        out.shape = Shape::d2(indices.len(), c);
        resize_for(&mut out.data, indices.len() * c);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < r, "gather index {idx} out of {r} rows");
            out.data[i * c..(i + 1) * c].copy_from_slice(&self.data[idx * c..(idx + 1) * c]);
        }
    }

    /// Scatter-add of `src` rows into `self` rows of the 2-D view:
    /// `self[indices[i]] += src[i]`.
    ///
    /// # Panics
    /// Panics if the column counts differ, the index count does not match
    /// `src`'s row count, or any index is out of bounds.
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Tensor) {
        let (r, c) = self.shape.as_2d();
        let (sr, sc) = src.shape.as_2d();
        assert_eq!(c, sc, "scatter column mismatch: {c} vs {sc}");
        assert_eq!(indices.len(), sr, "scatter index count mismatch");
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < r, "scatter index {idx} out of {r} rows");
            let dst = &mut self.data[idx * c..(idx + 1) * c];
            let s = &src.data[i * c..(i + 1) * c];
            for (d, &v) in dst.iter_mut().zip(s) {
                *d += v;
            }
        }
    }

    /// Concatenates 2-D tensors along rows.
    ///
    /// # Panics
    /// Panics if `parts` is empty or the column counts differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows requires at least one part");
        let c = parts[0].cols();
        let total: usize = parts.iter().map(|p| p.rows()).sum();
        let mut data = workspace::take_vec_uninit(total * c);
        let mut off = 0;
        for p in parts {
            assert_eq!(p.cols(), c, "concat column mismatch");
            data[off..off + p.data.len()].copy_from_slice(&p.data);
            off += p.data.len();
        }
        Tensor::from_vec((total, c), data)
    }

    /// Adds `bias` (length = cols) to every row of the 2-D view.
    ///
    /// # Panics
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Tensor {
        let mut out = self.clone();
        out.add_row_broadcast_inplace(bias);
        out
    }

    /// In-place variant of [`add_row_broadcast`](Self::add_row_broadcast).
    ///
    /// # Panics
    /// Panics if `bias.len()` differs from the column count.
    pub fn add_row_broadcast_inplace(&mut self, bias: &[f32]) {
        let (r, c) = self.shape.as_2d();
        assert_eq!(bias.len(), c, "bias length {} vs cols {c}", bias.len());
        for i in 0..r {
            for (j, &b) in bias.iter().enumerate() {
                self.data[i * c + j] += b;
            }
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}", self.shape)?;
        if self.len() <= 8 {
            write!(f, ", {:?})", self.data)
        } else {
            write!(
                f,
                ", [{:.4}, {:.4}, .., {:.4}])",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1]
            )
        }
    }
}

impl Default for Tensor {
    /// A 1-element zero tensor.
    fn default() -> Self {
        Tensor::zeros(1usize)
    }
}

impl Add for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs)
    }
}

impl Sub for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs)
    }
}

impl Mul for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        Tensor::mul(self, rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        let mut t = t;
        t.set2(0, 0, -1.0);
        assert_eq!(t.at(0), -1.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = DetRng::new(7);
        let a = Tensor::uniform((4, 4), -1.0, 1.0, &mut rng);
        let i = Tensor::eye(4);
        assert!(approx_eq(a.matmul(&i).as_slice(), a.as_slice(), 1e-6));
        assert!(approx_eq(i.matmul(&a).as_slice(), a.as_slice(), 1e-6));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = DetRng::new(1);
        let a = Tensor::uniform((5, 3), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform((5, 4), -1.0, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!(approx_eq(fast.as_slice(), slow.as_slice(), 1e-5));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = DetRng::new(2);
        let a = Tensor::uniform((5, 3), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform((4, 3), -1.0, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert!(approx_eq(fast.as_slice(), slow.as_slice(), 1e-5));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(3usize, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(3usize, vec![4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0, -3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(2usize, vec![1.0, 1.0]);
        let g = Tensor::from_vec(2usize, vec![2.0, 4.0]);
        a.axpy(0.5, &g);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 1.5);
        assert_eq!(t.max(), 4.0);
        assert!((t.norm() - (1.0f32 + 4.0 + 9.0 + 16.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = t.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
        let mut out = Tensor::zeros((3, 2));
        out.scatter_add_rows(&[2, 0], &g);
        assert_eq!(out.as_slice(), &[1.0, 2.0, 0.0, 0.0, 5.0, 6.0]);
    }

    #[test]
    fn gather_rows_into_reuses_buffer() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut out = Tensor::zeros((1, 1));
        t.gather_rows_into(&[1, 1, 0], &mut out);
        assert_eq!(out.shape().dims(), &[3, 2]);
        assert_eq!(out.as_slice(), &[3.0, 4.0, 3.0, 4.0, 1.0, 2.0]);
        // Shrinking works too.
        t.gather_rows_into(&[2], &mut out);
        assert_eq!(out.as_slice(), &[5.0, 6.0]);
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let src = Tensor::from_rows(&[&[1.0], &[2.0]]);
        let mut out = Tensor::zeros((2, 1));
        out.scatter_add_rows(&[0, 0], &src);
        assert_eq!(out.as_slice(), &[3.0, 0.0]);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = DetRng::new(3);
        let a = Tensor::uniform((3, 5), -1.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(6usize, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let r = t.reshape((2, 3));
        assert_eq!(r.at2(1, 0), 3.0);
        let r3 = t.reshape((1, 2, 3));
        assert_eq!(r3.shape().dims(), &[1, 2, 3]);
    }

    #[test]
    fn copy_from_tracks_shape_and_contents() {
        let src = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let mut dst = Tensor::zeros((7, 7));
        dst.copy_from(&src);
        assert_eq!(dst, src);
        let smaller = Tensor::from_vec(2usize, vec![9.0, 8.0]);
        dst.copy_from(&smaller);
        assert_eq!(dst, smaller);
    }

    #[test]
    fn map_and_zip_into_reuse_buffers() {
        let a = Tensor::from_vec(3usize, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(3usize, vec![4.0, 5.0, 6.0]);
        let mut out = Tensor::zeros((9, 9));
        a.map_into(&mut out, |x| x * 10.0);
        assert_eq!(out.as_slice(), &[10.0, 20.0, 30.0]);
        a.zip_into(&b, &mut out, |x, y| x + y);
        assert_eq!(out.as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(out.shape().dims(), &[3]);
    }

    #[test]
    fn into_vec_detaches_buffer() {
        let t = Tensor::from_vec(3usize, vec![1.0, 2.0, 3.0]);
        let v = t.into_vec();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let out = t.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros((2, 3));
        let b = Tensor::zeros((2, 3));
        a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros((2, 3));
        let b = Tensor::zeros((3, 2));
        let _ = &a + &b;
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", Tensor::zeros(1usize)).is_empty());
        assert!(!format!("{:?}", Tensor::zeros((4, 4))).is_empty());
    }
}

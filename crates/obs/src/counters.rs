//! Named process-global counters and fixed-bucket histograms.
//!
//! Registration goes through a mutex-protected map, but the returned
//! handles point at leaked atomics, so the hot path — [`Counter::add`]
//! / [`Histogram::record`] — is a relaxed `fetch_add` with no lock.
//! Hot call sites cache the handle in a [`LazyCounter`] /
//! [`LazyHistogram`] static so the map is consulted once per site.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

fn counter_registry() -> &'static Mutex<BTreeMap<String, &'static AtomicU64>> {
    static R: OnceLock<Mutex<BTreeMap<String, &'static AtomicU64>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Handle to a named monotonic counter.
#[derive(Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    #[inline]
    pub fn add(self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Look up (or create) the counter with the given name. Callers on hot
/// paths should hold the handle in a [`LazyCounter`] instead of calling
/// this per event.
pub fn counter(name: &str) -> Counter {
    let mut reg = counter_registry().lock().unwrap();
    if let Some(c) = reg.get(name) {
        return Counter(c);
    }
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    reg.insert(name.to_string(), cell);
    Counter(cell)
}

/// All counters with a non-zero value, sorted by name.
pub fn counter_snapshot() -> Vec<(String, u64)> {
    counter_registry()
        .lock()
        .unwrap()
        .iter()
        .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
        .filter(|&(_, v)| v != 0)
        .collect()
}

/// Zero every registered counter and histogram (tests/harnesses only;
/// handles stay valid).
pub fn reset_counters() {
    for c in counter_registry().lock().unwrap().values() {
        c.store(0, Ordering::Relaxed);
    }
    for h in histogram_registry().lock().unwrap().values() {
        for b in h.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A counter handle resolved on first use and gated on
/// [`crate::enabled`], for `static` placement at hot call sites.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl LazyCounter {
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// One relaxed load + branch when observability is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.get_or_init(|| counter(self.name)).add(n);
        }
    }
}

/// Power-of-two bucket histogram: bucket `i` counts values whose bit
/// length is `i` (bucket 0 holds zeros), i.e. value `v` lands in the
/// bucket whose lower bound is the largest power of two `<= v`.
struct HistSlot {
    buckets: [AtomicU64; 65],
}

fn histogram_registry() -> &'static Mutex<BTreeMap<String, &'static HistSlot>> {
    static R: OnceLock<Mutex<BTreeMap<String, &'static HistSlot>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Handle to a named fixed-bucket histogram.
#[derive(Clone, Copy)]
pub struct Histogram(&'static HistSlot);

impl Histogram {
    #[inline]
    pub fn record(self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// Look up (or create) the histogram with the given name.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = histogram_registry().lock().unwrap();
    if let Some(h) = reg.get(name) {
        return Histogram(h);
    }
    let slot: &'static HistSlot = Box::leak(Box::new(HistSlot {
        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
    }));
    reg.insert(name.to_string(), slot);
    Histogram(slot)
}

/// Non-empty buckets of every histogram, as `(name, [(bucket lower
/// bound, count)])`, sorted by name.
pub fn histogram_snapshot() -> Vec<(String, Vec<(u64, u64)>)> {
    histogram_registry()
        .lock()
        .unwrap()
        .iter()
        .filter_map(|(n, h)| {
            let buckets: Vec<(u64, u64)> = h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let count = b.load(Ordering::Relaxed);
                    if count == 0 {
                        return None;
                    }
                    let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                    Some((lo, count))
                })
                .collect();
            if buckets.is_empty() {
                None
            } else {
                Some((n.clone(), buckets))
            }
        })
        .collect()
}

/// A histogram handle resolved on first use and gated on
/// [`crate::enabled`], for `static` placement at hot call sites.
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Histogram>,
}

impl LazyHistogram {
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.cell.get_or_init(|| histogram(self.name)).record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registries are process-global and shared with other tests, so
    // these use distinctive name prefixes and only assert about them.

    #[test]
    fn counter_snapshot_is_sorted_and_skips_zeros() {
        counter("snaptest.zz").add(2);
        counter("snaptest.aa").add(1);
        counter("snaptest.mm").add(3);
        counter("snaptest.zero"); // registered but never incremented
        let snap: Vec<(String, u64)> = counter_snapshot()
            .into_iter()
            .filter(|(n, _)| n.starts_with("snaptest."))
            .collect();
        assert_eq!(
            snap,
            vec![
                ("snaptest.aa".to_string(), 1),
                ("snaptest.mm".to_string(), 3),
                ("snaptest.zz".to_string(), 2),
            ],
            "snapshot must be name-sorted with zero counters dropped"
        );
    }

    #[test]
    fn histogram_snapshot_is_sorted_by_name_and_bucket() {
        histogram("hsnaptest.b").record(17); // bucket ≥16
        histogram("hsnaptest.a").record(0); // bucket ≥0
        histogram("hsnaptest.a").record(5); // bucket ≥4
        let snap: Vec<(String, Vec<(u64, u64)>)> = histogram_snapshot()
            .into_iter()
            .filter(|(n, _)| n.starts_with("hsnaptest."))
            .collect();
        assert_eq!(
            snap,
            vec![
                ("hsnaptest.a".to_string(), vec![(0, 1), (4, 1)]),
                ("hsnaptest.b".to_string(), vec![(16, 1)]),
            ],
            "snapshot must be name-sorted with ascending bucket bounds"
        );
    }
}

//! Live plain-text metrics endpoint.
//!
//! When `VELA_METRICS_ADDR` is set (e.g. `127.0.0.1:9188`), a detached
//! listener thread serves a point-in-time counter + histogram snapshot
//! to every connection and closes it — `nc 127.0.0.1 9188` mid-run
//! prints the current state of a long job without waiting for trace
//! files. The output is plain text, one metric per line, sorted by
//! name, so two snapshots diff cleanly:
//!
//! ```text
//! counter runtime.pipeline.exchange_us 18734
//! histogram model.moe.group_rows 16:7 32:3
//! ```
//!
//! Everything is `std`-only: one `TcpListener`, one thread, no HTTP.
//! Setting `VELA_METRICS_ADDR` implies at least
//! [`TraceMode::Counters`](crate::TraceMode::Counters) — a snapshot of
//! counters nobody records would always be empty.

use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};

/// The current counter + histogram snapshot in the endpoint's wire
/// format. Deterministically sorted by metric name (the snapshot
/// functions guarantee the order).
pub fn render() -> String {
    let mut out = String::new();
    for (name, value) in crate::counter_snapshot() {
        let _ = writeln!(out, "counter {name} {value}");
    }
    for (name, buckets) in crate::histogram_snapshot() {
        let _ = write!(out, "histogram {name}");
        for (lo, count) in buckets {
            let _ = write!(out, " {lo}:{count}");
        }
        out.push('\n');
    }
    out
}

/// Bind `addr` and serve metric snapshots from a detached thread, one
/// connection at a time. Returns the bound address (pass `port` 0 to
/// let the OS pick, e.g. in tests).
pub fn serve(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("vela-metrics".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if let Ok(mut sock) = stream {
                    let _ = sock.write_all(render().as_bytes());
                }
            }
        })?;
    Ok(local)
}

static STARTED: AtomicBool = AtomicBool::new(false);

/// Start the endpoint for `VELA_METRICS_ADDR` exactly once (the trace
/// mode initialiser may race). Bind failures are logged, not fatal —
/// observability must never take the workload down.
pub(crate) fn start_from_env(addr: &str) {
    if STARTED.swap(true, Ordering::SeqCst) {
        return;
    }
    match serve(addr) {
        Ok(local) => crate::info!("metrics endpoint listening on {local}"),
        Err(e) => crate::warn!("cannot serve metrics on {addr}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use std::io::Read as _;
    use std::net::TcpStream;

    #[test]
    fn endpoint_serves_sorted_snapshot_per_connection() {
        crate::set_mode(crate::TraceMode::Counters);
        crate::counter("endpoint.test.zz").add(7);
        crate::counter("endpoint.test.aa").add(3);
        let addr = super::serve("127.0.0.1:0").expect("bind");
        // Two sequential connections each get a full snapshot.
        for _ in 0..2 {
            let mut sock = TcpStream::connect(addr).expect("connect");
            let mut body = String::new();
            sock.read_to_string(&mut body).expect("read");
            let aa = body.find("counter endpoint.test.aa 3").expect("aa line");
            let zz = body.find("counter endpoint.test.zz 7").expect("zz line");
            assert!(aa < zz, "metrics must be sorted by name:\n{body}");
        }
    }
}

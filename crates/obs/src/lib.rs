//! Std-only structured tracing, counters and per-step attribution.
//!
//! The crate is the workspace's observability substrate: every other
//! crate may depend on it (it depends on nothing), and every recording
//! call collapses to a single relaxed atomic load + branch when tracing
//! is disabled, so instrumented hot paths stay benchmark-neutral.
//!
//! ## Model
//!
//! * **Spans** ([`span`]) record wall-clock enter/exit pairs tagged with
//!   the current *logical step* (a process-global counter advanced by
//!   [`step_begin`]). Events land in thread-local buffers that are
//!   drained to the process-global sink either when a buffer fills or
//!   when [`flush`] is called.
//! * **Counters / histograms** ([`counter`], [`histogram`]) are named
//!   process-global atomics; recording is a relaxed `fetch_add`.
//!   Snapshots are emitted into the trace at every [`flush`] as
//!   cumulative values (readers keep the last value per name).
//! * **Expert-row events** ([`expert_rows`]) attribute per-expert token
//!   counts to a (step, block, pass) triple — the raw material for
//!   re-deriving the paper's Fig. 3 locality profile from a trace.
//!
//! ## Knobs
//!
//! * `VELA_TRACE` — `0`/unset: off; `counters`: counters only, no file;
//!   `jsonl`/`1`: JSONL event stream; `chrome`: Chrome `trace_event`
//!   JSON (load in `chrome://tracing` / Perfetto).
//! * `VELA_TRACE_OUT` — output path (default `vela-trace.jsonl` or
//!   `vela-trace.json` for chrome mode).
//! * `VELA_METRICS_ADDR` — serve a live plain-text counter/histogram
//!   snapshot on this TCP address (see [`endpoint`]); implies at least
//!   [`TraceMode::Counters`].
//! * `VELA_LOG` — stderr logger level: `error`, `warn` (default),
//!   `info`, `debug`.
//!
//! ## Trace schema (JSONL)
//!
//! One JSON object per line; `t` is integer microseconds since process
//! start, `tid` a small per-thread integer (0 = snapshot pseudo-thread):
//!
//! ```text
//! {"ev":"b","t":12,"tid":1,"step":3,"name":"runtime.step"}      span enter
//! {"ev":"e","t":90,"tid":1,"name":"runtime.step"}               span exit
//! {"ev":"c","t":99,"tid":0,"name":"tensor.workspace.hit","value":42}
//! {"ev":"h","t":99,"tid":0,"name":"model.moe.group_rows","buckets":[[16,7],[32,3]]}
//! {"ev":"x","t":50,"tid":1,"step":3,"name":"fwd","src":"runtime","block":0,"rows":[[0,128],[3,64]]}
//! {"ev":"f","t":60,"tid":1,"step":3,"ph":"s","corr":412317122560}   flow endpoint
//! {"ev":"k","t":70,"tid":0,"worker":1,"offset":-1423,"rtt":88}      clock sample
//! ```
//!
//! `"f"` records are the endpoints of one dispatch → worker-compute →
//! result chain, keyed by the [`corr`] correlation key: the master
//! emits `ph:"s"` at serialize and `ph:"f"` at result drain, the
//! worker emits `ph:"t"` twice around the serve. `"k"` records are
//! NTP-style clock samples (`offset` = worker clock − master clock,
//! signed; `rtt` the round trip that measured it) that let
//! `trace_summary merge` rebase a worker trace onto the master
//! timeline. A merged trace additionally carries a `"pid"` field on
//! every record (0 = master, `i + 1` = worker `i`); unmerged
//! single-process traces omit it.
//!
//! Chrome mode maps `b`/`e` to `ph:"B"/"E"`, counters to `ph:"C"`,
//! expert rows and clock samples to instant events, and flow endpoints
//! to `ph:"s"/"t"/"f"` flow events. The chrome file is a JSON array
//! that is intentionally left unterminated (the format tolerates it,
//! and it lets us stream without an exit hook).

pub mod counters;
pub mod endpoint;
pub mod logger;
pub mod reader;
pub mod sink;
pub mod span;

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub use counters::{
    counter, counter_snapshot, histogram, histogram_snapshot, reset_counters, Counter, Histogram,
    LazyCounter, LazyHistogram,
};
pub use logger::Level;
pub use span::{expert_rows, flow, span, FlowPhase, SpanGuard};

/// Compact correlation key identifying one dispatch frame of one
/// exchange: `(step, worker, block, pass, chunk)` packed into a `u64`.
///
/// The layout is part of the trace schema (readers decode it without
/// the runtime):
///
/// ```text
/// bits 63..38   step   (mod 2^26)
/// bits 37..33   worker (mod 2^5)
/// bits 32..17   block  (mod 2^16)
/// bit  16       pass   (0 = forward, 1 = backward)
/// bits 15..0    chunk  (mod 2^16)
/// ```
///
/// Within one run the tuple is unique per in-flight frame: the ring
/// sends exactly one dispatch per `(worker, block, pass, chunk)` per
/// step, and the step component keeps keys distinct for the lifetime
/// of any realistic trace.
pub mod corr {
    /// Pack a correlation key. `pass` is 0 for forward, 1 for backward.
    #[inline]
    pub fn pack(step: u64, worker: u64, block: u64, pass: u64, chunk: u64) -> u64 {
        ((step & 0x3ff_ffff) << 38)
            | ((worker & 0x1f) << 33)
            | ((block & 0xffff) << 17)
            | ((pass & 1) << 16)
            | (chunk & 0xffff)
    }

    /// The step component of a packed key.
    #[inline]
    pub fn step(corr: u64) -> u64 {
        (corr >> 38) & 0x3ff_ffff
    }

    /// The worker component of a packed key.
    #[inline]
    pub fn worker(corr: u64) -> u64 {
        (corr >> 33) & 0x1f
    }

    /// The pass component of a packed key (0 = forward, 1 = backward).
    #[inline]
    pub fn pass(corr: u64) -> u64 {
        (corr >> 16) & 1
    }
}

/// What the process records, ordered by increasing capability.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum TraceMode {
    /// Nothing is recorded; every probe is a relaxed load + branch.
    Off = 1,
    /// Counters/histograms accumulate but no event file is written.
    Counters = 2,
    /// Counters plus span/row events streamed as JSONL.
    Jsonl = 3,
    /// Counters plus span/row events in Chrome `trace_event` JSON.
    Chrome = 4,
}

/// 0 = not yet initialised from the environment.
static MODE: AtomicU8 = AtomicU8::new(0);

fn init_mode_from_env() -> TraceMode {
    let mode = match std::env::var("VELA_TRACE").ok().as_deref() {
        None | Some("") | Some("0") | Some("off") => TraceMode::Off,
        Some("counters") => TraceMode::Counters,
        Some("jsonl") | Some("1") => TraceMode::Jsonl,
        Some("chrome") => TraceMode::Chrome,
        Some(other) => {
            logger::log(
                Level::Warn,
                format_args!("unknown VELA_TRACE value {other:?}; tracing disabled"),
            );
            TraceMode::Off
        }
    };
    // A live metrics endpoint needs counters to snapshot, so the env
    // knob lifts an otherwise-off process to Counters mode.
    match std::env::var("VELA_METRICS_ADDR").ok().as_deref() {
        Some(addr) if !addr.is_empty() => {
            endpoint::start_from_env(addr);
            mode.max(TraceMode::Counters)
        }
        _ => mode,
    }
}

#[inline]
fn mode_raw() -> u8 {
    let m = MODE.load(Ordering::Relaxed);
    if m != 0 {
        return m;
    }
    // Racing initialisers compute the same value from the same env.
    let m = init_mode_from_env() as u8;
    MODE.store(m, Ordering::Relaxed);
    m
}

/// Current mode (initialising from `VELA_TRACE` on first call).
pub fn mode() -> TraceMode {
    match mode_raw() {
        2 => TraceMode::Counters,
        3 => TraceMode::Jsonl,
        4 => TraceMode::Chrome,
        _ => TraceMode::Off,
    }
}

/// Programmatic override of the env-selected mode (used by tests and
/// embedding harnesses). Takes effect for all subsequent probes.
pub fn set_mode(m: TraceMode) {
    MODE.store(m as u8, Ordering::Relaxed);
}

/// Are counters (and anything stronger) being recorded? This is the
/// disabled-fast-path gate: a relaxed load plus one compare.
#[inline]
pub fn enabled() -> bool {
    mode_raw() >= TraceMode::Counters as u8
}

/// Are span/row *events* being recorded (Jsonl or Chrome mode)?
#[inline]
pub fn tracing() -> bool {
    mode_raw() >= TraceMode::Jsonl as u8
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process trace epoch (first call wins).
#[inline]
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

static STEP: AtomicU64 = AtomicU64::new(0);

/// Advance the process-global logical step clock. Training loops call
/// this once per optimisation step; spans opened afterwards are tagged
/// with the new step.
#[inline]
pub fn step_begin(step: u64) {
    STEP.store(step, Ordering::Relaxed);
}

/// The logical step spans opened now will be attributed to.
#[inline]
pub fn current_step() -> u64 {
    STEP.load(Ordering::Relaxed)
}

static NEXT_STEP: AtomicU64 = AtomicU64::new(0);

/// Allocate the next process-unique trace step and make it current.
///
/// Distributed engines use this instead of [`step_begin`] on the master
/// side: several engine launches in one process each restart their local
/// step counter at 1, and were they to tag traces with it, correlation
/// keys from different runs would collide in one trace file. The master
/// broadcasts the returned value in `StepBegin` so workers tag the same
/// step via [`step_begin`].
#[inline]
pub fn next_trace_step() -> u64 {
    let step = NEXT_STEP.fetch_add(1, Ordering::Relaxed) + 1;
    STEP.store(step, Ordering::Relaxed);
    step
}

/// Record one NTP-style clock sample for `worker`: `offset_us` is the
/// worker clock minus the master clock (signed), `rtt_us` the round
/// trip of the probe that measured it. Written directly to the sink as
/// a `"k"` record; `trace_summary merge` uses the minimum-RTT sample
/// per worker to rebase that worker's timestamps.
pub fn clock_sample(worker: usize, offset_us: i64, rtt_us: u64) {
    if !tracing() {
        return;
    }
    sink::write_clock(worker as u64, offset_us, rtt_us);
}

/// Drain every thread's event buffer to the sink, append a cumulative
/// counter/histogram snapshot, and flush the underlying writer. Cheap
/// no-op when tracing is disabled. Engines call this at shutdown; call
/// it at the end of any program that traces.
pub fn flush() {
    if !tracing() {
        return;
    }
    span::drain_all();
    sink::write_snapshots();
    sink::flush_writer();
}

//! Std-only structured tracing, counters and per-step attribution.
//!
//! The crate is the workspace's observability substrate: every other
//! crate may depend on it (it depends on nothing), and every recording
//! call collapses to a single relaxed atomic load + branch when tracing
//! is disabled, so instrumented hot paths stay benchmark-neutral.
//!
//! ## Model
//!
//! * **Spans** ([`span`]) record wall-clock enter/exit pairs tagged with
//!   the current *logical step* (a process-global counter advanced by
//!   [`step_begin`]). Events land in thread-local buffers that are
//!   drained to the process-global sink either when a buffer fills or
//!   when [`flush`] is called.
//! * **Counters / histograms** ([`counter`], [`histogram`]) are named
//!   process-global atomics; recording is a relaxed `fetch_add`.
//!   Snapshots are emitted into the trace at every [`flush`] as
//!   cumulative values (readers keep the last value per name).
//! * **Expert-row events** ([`expert_rows`]) attribute per-expert token
//!   counts to a (step, block, pass) triple — the raw material for
//!   re-deriving the paper's Fig. 3 locality profile from a trace.
//!
//! ## Knobs
//!
//! * `VELA_TRACE` — `0`/unset: off; `counters`: counters only, no file;
//!   `jsonl`/`1`: JSONL event stream; `chrome`: Chrome `trace_event`
//!   JSON (load in `chrome://tracing` / Perfetto).
//! * `VELA_TRACE_OUT` — output path (default `vela-trace.jsonl` or
//!   `vela-trace.json` for chrome mode).
//! * `VELA_LOG` — stderr logger level: `error`, `warn` (default),
//!   `info`, `debug`.
//!
//! ## Trace schema (JSONL)
//!
//! One JSON object per line; `t` is integer microseconds since process
//! start, `tid` a small per-thread integer (0 = snapshot pseudo-thread):
//!
//! ```text
//! {"ev":"b","t":12,"tid":1,"step":3,"name":"runtime.step"}      span enter
//! {"ev":"e","t":90,"tid":1,"name":"runtime.step"}               span exit
//! {"ev":"c","t":99,"tid":0,"name":"tensor.workspace.hit","value":42}
//! {"ev":"h","t":99,"tid":0,"name":"model.moe.group_rows","buckets":[[16,7],[32,3]]}
//! {"ev":"x","t":50,"tid":1,"step":3,"name":"fwd","src":"runtime","block":0,"rows":[[0,128],[3,64]]}
//! ```
//!
//! Chrome mode maps `b`/`e` to `ph:"B"/"E"`, counters to `ph:"C"` and
//! expert rows to instant events. The chrome file is a JSON array that
//! is intentionally left unterminated (the format tolerates it, and it
//! lets us stream without an exit hook).

pub mod counters;
pub mod logger;
pub mod reader;
pub mod sink;
pub mod span;

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub use counters::{
    counter, counter_snapshot, histogram, histogram_snapshot, reset_counters, Counter, Histogram,
    LazyCounter, LazyHistogram,
};
pub use logger::Level;
pub use span::{expert_rows, span, SpanGuard};

/// What the process records, ordered by increasing capability.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum TraceMode {
    /// Nothing is recorded; every probe is a relaxed load + branch.
    Off = 1,
    /// Counters/histograms accumulate but no event file is written.
    Counters = 2,
    /// Counters plus span/row events streamed as JSONL.
    Jsonl = 3,
    /// Counters plus span/row events in Chrome `trace_event` JSON.
    Chrome = 4,
}

/// 0 = not yet initialised from the environment.
static MODE: AtomicU8 = AtomicU8::new(0);

fn init_mode_from_env() -> TraceMode {
    match std::env::var("VELA_TRACE").ok().as_deref() {
        None | Some("") | Some("0") | Some("off") => TraceMode::Off,
        Some("counters") => TraceMode::Counters,
        Some("jsonl") | Some("1") => TraceMode::Jsonl,
        Some("chrome") => TraceMode::Chrome,
        Some(other) => {
            logger::log(
                Level::Warn,
                format_args!("unknown VELA_TRACE value {other:?}; tracing disabled"),
            );
            TraceMode::Off
        }
    }
}

#[inline]
fn mode_raw() -> u8 {
    let m = MODE.load(Ordering::Relaxed);
    if m != 0 {
        return m;
    }
    // Racing initialisers compute the same value from the same env.
    let m = init_mode_from_env() as u8;
    MODE.store(m, Ordering::Relaxed);
    m
}

/// Current mode (initialising from `VELA_TRACE` on first call).
pub fn mode() -> TraceMode {
    match mode_raw() {
        2 => TraceMode::Counters,
        3 => TraceMode::Jsonl,
        4 => TraceMode::Chrome,
        _ => TraceMode::Off,
    }
}

/// Programmatic override of the env-selected mode (used by tests and
/// embedding harnesses). Takes effect for all subsequent probes.
pub fn set_mode(m: TraceMode) {
    MODE.store(m as u8, Ordering::Relaxed);
}

/// Are counters (and anything stronger) being recorded? This is the
/// disabled-fast-path gate: a relaxed load plus one compare.
#[inline]
pub fn enabled() -> bool {
    mode_raw() >= TraceMode::Counters as u8
}

/// Are span/row *events* being recorded (Jsonl or Chrome mode)?
#[inline]
pub fn tracing() -> bool {
    mode_raw() >= TraceMode::Jsonl as u8
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process trace epoch (first call wins).
#[inline]
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

static STEP: AtomicU64 = AtomicU64::new(0);

/// Advance the process-global logical step clock. Training loops call
/// this once per optimisation step; spans opened afterwards are tagged
/// with the new step.
#[inline]
pub fn step_begin(step: u64) {
    STEP.store(step, Ordering::Relaxed);
}

/// The logical step spans opened now will be attributed to.
#[inline]
pub fn current_step() -> u64 {
    STEP.load(Ordering::Relaxed)
}

/// Drain every thread's event buffer to the sink, append a cumulative
/// counter/histogram snapshot, and flush the underlying writer. Cheap
/// no-op when tracing is disabled. Engines call this at shutdown; call
/// it at the end of any program that traces.
pub fn flush() {
    if !tracing() {
        return;
    }
    span::drain_all();
    sink::write_snapshots();
    sink::flush_writer();
}

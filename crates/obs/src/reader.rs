//! Reading side of the JSONL trace schema: a minimal JSON parser (the
//! workspace is hermetic — no serde), typed [`RawEvent`] decoding, and
//! the structural validator behind `trace_summary --check`.

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers are kept as `f64`; every integer the
/// trace schema emits (µs timestamps, row counts, byte totals) is well
/// below 2^53 so the round-trip is exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Parse one complete JSON value (trailing whitespace allowed).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// One decoded JSONL trace event.
#[derive(Debug, Clone)]
pub struct RawEvent {
    /// `"b"`, `"e"`, `"c"`, `"h"` or `"x"`.
    pub ev: String,
    pub name: String,
    pub t: u64,
    pub tid: u64,
    pub step: Option<u64>,
    /// Counter value (`"c"` events).
    pub value: Option<u64>,
    /// Observing layer for `"x"` events (`"runtime"` / `"model"`).
    pub src: Option<String>,
    /// MoE block index for `"x"` events.
    pub block: Option<u64>,
    /// `(expert, rows)` pairs for `"x"` events.
    pub rows: Vec<(u64, u64)>,
    /// `(bucket lower bound, count)` pairs for `"h"` events.
    pub buckets: Vec<(u64, u64)>,
}

fn pairs(v: &Json, what: &str) -> Result<Vec<(u64, u64)>, String> {
    let Json::Arr(items) = v else {
        return Err(format!("{what} must be an array"));
    };
    items
        .iter()
        .map(|item| {
            let Json::Arr(pair) = item else {
                return Err(format!("{what} entries must be [a,b] pairs"));
            };
            match (
                pair.first().and_then(Json::as_u64),
                pair.get(1).and_then(Json::as_u64),
            ) {
                (Some(a), Some(b)) if pair.len() == 2 => Ok((a, b)),
                _ => Err(format!("{what} entries must be [u64,u64] pairs")),
            }
        })
        .collect()
}

/// Decode one JSONL line into a [`RawEvent`], checking every field the
/// schema requires for that event kind.
pub fn parse_line(line: &str) -> Result<RawEvent, String> {
    let v = parse_json(line)?;
    let ev = v
        .get("ev")
        .and_then(Json::as_str)
        .ok_or("missing \"ev\"")?
        .to_string();
    let t = v
        .get("t")
        .and_then(Json::as_u64)
        .ok_or("missing integer \"t\"")?;
    let tid = v
        .get("tid")
        .and_then(Json::as_u64)
        .ok_or("missing integer \"tid\"")?;
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing \"name\"")?
        .to_string();
    let step = v.get("step").and_then(Json::as_u64);
    let value = v.get("value").and_then(Json::as_u64);
    let src = v.get("src").and_then(Json::as_str).map(str::to_string);
    let block = v.get("block").and_then(Json::as_u64);
    let rows = match v.get("rows") {
        Some(r) => pairs(r, "rows")?,
        None => Vec::new(),
    };
    let buckets = match v.get("buckets") {
        Some(b) => pairs(b, "buckets")?,
        None => Vec::new(),
    };
    match ev.as_str() {
        "b" => {
            step.ok_or("span enter missing \"step\"")?;
        }
        "e" => {}
        "c" => {
            value.ok_or("counter event missing \"value\"")?;
        }
        "h" => {
            if buckets.is_empty() {
                return Err("histogram event missing \"buckets\"".to_string());
            }
        }
        "x" => {
            step.ok_or("expert-rows event missing \"step\"")?;
            block.ok_or("expert-rows event missing \"block\"")?;
            src.as_deref().ok_or("expert-rows event missing \"src\"")?;
            if rows.is_empty() {
                return Err("expert-rows event missing \"rows\"".to_string());
            }
        }
        other => return Err(format!("unknown event kind {other:?}")),
    }
    Ok(RawEvent {
        ev,
        name,
        t,
        tid,
        step,
        value,
        src,
        block,
        rows,
        buckets,
    })
}

/// Aggregate structural facts reported by [`validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    pub events: usize,
    /// Completed enter/exit span pairs.
    pub spans: usize,
    pub threads: usize,
    pub max_t: u64,
}

/// Structural validation of a decoded trace: per-thread timestamps
/// must be monotone non-decreasing and span enter/exit events must be
/// balanced with stack discipline (an exit always closes the most
/// recent open span of its thread; nothing stays open at end of
/// stream).
pub fn validate(events: &[RawEvent]) -> Result<TraceStats, String> {
    let mut last_t: BTreeMap<u64, u64> = BTreeMap::new();
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut spans = 0usize;
    let mut max_t = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let prev = last_t.entry(ev.tid).or_insert(0);
        if ev.t < *prev {
            return Err(format!(
                "event {i} (tid {}): timestamp {} goes backwards (previous {})",
                ev.tid, ev.t, prev
            ));
        }
        *prev = ev.t;
        max_t = max_t.max(ev.t);
        match ev.ev.as_str() {
            "b" => stacks.entry(ev.tid).or_default().push(ev.name.clone()),
            "e" => {
                let stack = stacks.entry(ev.tid).or_default();
                match stack.pop() {
                    Some(top) if top == ev.name => spans += 1,
                    Some(top) => {
                        return Err(format!(
                            "event {i} (tid {}): exit {:?} does not match open span {:?}",
                            ev.tid, ev.name, top
                        ));
                    }
                    None => {
                        return Err(format!(
                            "event {i} (tid {}): exit {:?} with no open span",
                            ev.tid, ev.name
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "tid {tid}: span {open:?} still open at end of trace"
            ));
        }
    }
    Ok(TraceStats {
        events: events.len(),
        spans,
        threads: last_t.len(),
        max_t,
    })
}

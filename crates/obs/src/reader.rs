//! Reading side of the JSONL trace schema: a minimal JSON parser (the
//! workspace is hermetic — no serde), typed [`RawEvent`] decoding, and
//! the structural validator behind `trace_summary --check`.

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers are kept as `f64`; every integer the
/// trace schema emits (µs timestamps, row counts, byte totals) is well
/// below 2^53 so the round-trip is exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Signed integer view — the clock-offset field is the one place
    /// the schema emits a negative number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Parse one complete JSON value (trailing whitespace allowed).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// One decoded JSONL trace event.
#[derive(Debug, Clone)]
pub struct RawEvent {
    /// `"b"`, `"e"`, `"c"`, `"h"`, `"x"`, `"f"` (flow endpoint) or
    /// `"k"` (clock sample).
    pub ev: String,
    /// Span/counter/histogram name; empty for `"f"`/`"k"` records.
    pub name: String,
    pub t: u64,
    pub tid: u64,
    /// Process lane: 0 = master, `i + 1` = worker `i`. Only merged
    /// traces carry the field; single-process traces decode as pid 0.
    pub pid: u64,
    pub step: Option<u64>,
    /// Counter value (`"c"` events).
    pub value: Option<u64>,
    /// Observing layer for `"x"` events (`"runtime"` / `"model"`).
    pub src: Option<String>,
    /// MoE block index for `"x"` events.
    pub block: Option<u64>,
    /// `(expert, rows)` pairs for `"x"` events.
    pub rows: Vec<(u64, u64)>,
    /// `(bucket lower bound, count)` pairs for `"h"` events.
    pub buckets: Vec<(u64, u64)>,
    /// Flow phase for `"f"` events: `"s"`, `"t"` or `"f"`.
    pub ph: Option<String>,
    /// Correlation key for `"f"` events (see [`crate::corr`]).
    pub corr: Option<u64>,
    /// Worker index for `"k"` events.
    pub worker: Option<u64>,
    /// Clock offset (worker minus master, µs, signed) for `"k"` events.
    pub offset: Option<i64>,
    /// Probe round-trip time (µs) for `"k"` events.
    pub rtt: Option<u64>,
}

fn pairs(v: &Json, what: &str) -> Result<Vec<(u64, u64)>, String> {
    let Json::Arr(items) = v else {
        return Err(format!("{what} must be an array"));
    };
    items
        .iter()
        .map(|item| {
            let Json::Arr(pair) = item else {
                return Err(format!("{what} entries must be [a,b] pairs"));
            };
            match (
                pair.first().and_then(Json::as_u64),
                pair.get(1).and_then(Json::as_u64),
            ) {
                (Some(a), Some(b)) if pair.len() == 2 => Ok((a, b)),
                _ => Err(format!("{what} entries must be [u64,u64] pairs")),
            }
        })
        .collect()
}

/// Decode one JSONL line into a [`RawEvent`], checking every field the
/// schema requires for that event kind.
pub fn parse_line(line: &str) -> Result<RawEvent, String> {
    let v = parse_json(line)?;
    let ev = v
        .get("ev")
        .and_then(Json::as_str)
        .ok_or("missing \"ev\"")?
        .to_string();
    let t = v
        .get("t")
        .and_then(Json::as_u64)
        .ok_or("missing integer \"t\"")?;
    let tid = v
        .get("tid")
        .and_then(Json::as_u64)
        .ok_or("missing integer \"tid\"")?;
    let pid = v.get("pid").and_then(Json::as_u64).unwrap_or(0);
    let name = v.get("name").and_then(Json::as_str).map(str::to_string);
    let step = v.get("step").and_then(Json::as_u64);
    let value = v.get("value").and_then(Json::as_u64);
    let src = v.get("src").and_then(Json::as_str).map(str::to_string);
    let block = v.get("block").and_then(Json::as_u64);
    let rows = match v.get("rows") {
        Some(r) => pairs(r, "rows")?,
        None => Vec::new(),
    };
    let buckets = match v.get("buckets") {
        Some(b) => pairs(b, "buckets")?,
        None => Vec::new(),
    };
    let ph = v.get("ph").and_then(Json::as_str).map(str::to_string);
    let corr = v.get("corr").and_then(Json::as_u64);
    let worker = v.get("worker").and_then(Json::as_u64);
    let offset = v.get("offset").and_then(Json::as_i64);
    let rtt = v.get("rtt").and_then(Json::as_u64);
    if matches!(ev.as_str(), "b" | "e" | "c" | "h" | "x") && name.is_none() {
        return Err("missing \"name\"".to_string());
    }
    match ev.as_str() {
        "b" => {
            step.ok_or("span enter missing \"step\"")?;
        }
        "e" => {}
        "c" => {
            value.ok_or("counter event missing \"value\"")?;
        }
        "h" => {
            if buckets.is_empty() {
                return Err("histogram event missing \"buckets\"".to_string());
            }
        }
        "x" => {
            step.ok_or("expert-rows event missing \"step\"")?;
            block.ok_or("expert-rows event missing \"block\"")?;
            src.as_deref().ok_or("expert-rows event missing \"src\"")?;
            if rows.is_empty() {
                return Err("expert-rows event missing \"rows\"".to_string());
            }
        }
        "f" => {
            step.ok_or("flow event missing \"step\"")?;
            corr.ok_or("flow event missing \"corr\"")?;
            match ph.as_deref() {
                Some("s" | "t" | "f") => {}
                Some(other) => return Err(format!("flow event has bad phase {other:?}")),
                None => return Err("flow event missing \"ph\"".to_string()),
            }
        }
        "k" => {
            worker.ok_or("clock event missing \"worker\"")?;
            offset.ok_or("clock event missing integer \"offset\"")?;
            rtt.ok_or("clock event missing \"rtt\"")?;
        }
        other => return Err(format!("unknown event kind {other:?}")),
    }
    Ok(RawEvent {
        ev,
        name: name.unwrap_or_default(),
        t,
        tid,
        pid,
        step,
        value,
        src,
        block,
        rows,
        buckets,
        ph,
        corr,
        worker,
        offset,
        rtt,
    })
}

/// Aggregate structural facts reported by [`validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    pub events: usize,
    /// Completed enter/exit span pairs.
    pub spans: usize,
    pub threads: usize,
    /// Complete dispatch → worker-compute → result flow chains.
    pub flows: usize,
    pub max_t: u64,
}

/// Structural validation of a decoded trace: per-lane (`(pid, tid)`)
/// timestamps must be monotone non-decreasing, span enter/exit events
/// must be balanced with stack discipline (an exit always closes the
/// most recent open span of its lane; nothing stays open at end of
/// stream), and every correlation key that appears in a flow record
/// must form a *complete* chain — at least one master start (`"s"`),
/// the worker serve pair (two `"t"`), and one master finish (`"f"`).
/// The completeness rule is what makes an unmerged distributed trace
/// fail `--check`: a master trace alone has no `"t"` records, a worker
/// trace alone has no `"s"`/`"f"`.
pub fn validate(events: &[RawEvent]) -> Result<TraceStats, String> {
    let mut last_t: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut chains: BTreeMap<u64, [usize; 3]> = BTreeMap::new();
    let mut spans = 0usize;
    let mut max_t = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let lane = (ev.pid, ev.tid);
        let prev = last_t.entry(lane).or_insert(0);
        if ev.t < *prev {
            return Err(format!(
                "event {i} (pid {} tid {}): timestamp {} goes backwards (previous {})",
                ev.pid, ev.tid, ev.t, prev
            ));
        }
        *prev = ev.t;
        max_t = max_t.max(ev.t);
        match ev.ev.as_str() {
            "b" => stacks.entry(lane).or_default().push(ev.name.clone()),
            "e" => {
                let stack = stacks.entry(lane).or_default();
                match stack.pop() {
                    Some(top) if top == ev.name => spans += 1,
                    Some(top) => {
                        return Err(format!(
                            "event {i} (pid {} tid {}): exit {:?} does not match open span {:?}",
                            ev.pid, ev.tid, ev.name, top
                        ));
                    }
                    None => {
                        return Err(format!(
                            "event {i} (pid {} tid {}): exit {:?} with no open span",
                            ev.pid, ev.tid, ev.name
                        ));
                    }
                }
            }
            "f" => {
                let slot = match ev.ph.as_deref() {
                    Some("s") => 0,
                    Some("t") => 1,
                    _ => 2,
                };
                chains.entry(ev.corr.unwrap_or(0)).or_default()[slot] += 1;
            }
            _ => {}
        }
    }
    for (lane, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "pid {} tid {}: span {open:?} still open at end of trace",
                lane.0, lane.1
            ));
        }
    }
    for (corr, [s, t, f]) in &chains {
        if *s == 0 || *f == 0 {
            return Err(format!(
                "flow {corr}: missing master endpoint ({s} start, {f} finish records) \
                 — is this an unmerged worker trace?"
            ));
        }
        if *t < 2 {
            return Err(format!(
                "flow {corr}: {t} worker serve records (need 2) \
                 — merge the .worker traces before checking"
            ));
        }
    }
    Ok(TraceStats {
        events: events.len(),
        spans,
        threads: last_t.len(),
        flows: chains.len(),
        max_t,
    })
}

/// The minimum-RTT clock sample per worker from a master trace:
/// `worker → (offset_us, rtt_us)`. The lowest-RTT probe bounds the
/// offset error tightest (classic NTP filtering), so that is the one
/// the merge rebases with.
pub fn clock_table(events: &[RawEvent]) -> BTreeMap<u64, (i64, u64)> {
    let mut best: BTreeMap<u64, (i64, u64)> = BTreeMap::new();
    for ev in events {
        if ev.ev != "k" {
            continue;
        }
        let (Some(w), Some(offset), Some(rtt)) = (ev.worker, ev.offset, ev.rtt) else {
            continue;
        };
        match best.get(&w) {
            Some(&(_, prev_rtt)) if prev_rtt <= rtt => {}
            _ => {
                best.insert(w, (offset, rtt));
            }
        }
    }
    best
}

/// Join a master trace with per-worker traces into one timeline.
///
/// Each worker's timestamps are rebased onto the master clock using
/// the minimum-RTT offset sample recorded during the transport
/// handshake (`t_master = t_worker − offset`), every event is tagged
/// with its process lane (`pid` 0 = master, `i + 1` = worker `i`), and
/// the result is stably sorted by time — per-lane order (and therefore
/// span stack discipline) survives. A uniform shift keeps all
/// timestamps non-negative when a rebased worker event lands before
/// the master epoch.
pub fn merge_traces(
    master: Vec<RawEvent>,
    workers: Vec<(u64, Vec<RawEvent>)>,
) -> Result<Vec<RawEvent>, String> {
    let clocks = clock_table(&master);
    let mut earliest = 0i64;
    let mut lanes: Vec<(u64, i64, Vec<RawEvent>)> = Vec::new();
    for (w, events) in workers {
        let &(offset, _) = clocks.get(&w).ok_or_else(|| {
            format!("worker {w}: no clock sample in the master trace (untraced handshake?)")
        })?;
        for ev in &events {
            earliest = earliest.min(ev.t as i64 - offset);
        }
        lanes.push((w, offset, events));
    }
    let shift = (-earliest).max(0);
    let mut merged: Vec<RawEvent> =
        Vec::with_capacity(master.len() + lanes.iter().map(|(_, _, e)| e.len()).sum::<usize>());
    for mut ev in master {
        ev.pid = 0;
        ev.t += shift as u64;
        merged.push(ev);
    }
    for (w, offset, events) in lanes {
        for mut ev in events {
            ev.pid = w + 1;
            ev.t = (ev.t as i64 - offset + shift) as u64;
            merged.push(ev);
        }
    }
    merged.sort_by_key(|ev| ev.t);
    Ok(merged)
}

fn escape_into(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Re-encode an event as one JSONL line (no trailing newline). Merged
/// traces round-trip through [`parse_line`]; the `pid` field is always
/// written so process lanes survive.
pub fn to_jsonl(ev: &RawEvent) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"ev\":\"{}\",\"t\":{},\"tid\":{},\"pid\":{}",
        ev.ev, ev.t, ev.tid, ev.pid
    );
    if let Some(step) = ev.step {
        let _ = write!(out, ",\"step\":{step}");
    }
    if !ev.name.is_empty() {
        out.push_str(",\"name\":\"");
        escape_into(&mut out, &ev.name);
        out.push('"');
    }
    if let Some(value) = ev.value {
        let _ = write!(out, ",\"value\":{value}");
    }
    if let Some(src) = &ev.src {
        out.push_str(",\"src\":\"");
        escape_into(&mut out, src);
        out.push('"');
    }
    if let Some(block) = ev.block {
        let _ = write!(out, ",\"block\":{block}");
    }
    for (key, pairs) in [("rows", &ev.rows), ("buckets", &ev.buckets)] {
        if pairs.is_empty() {
            continue;
        }
        let _ = write!(out, ",\"{key}\":[");
        for (i, (a, b)) in pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{a},{b}]");
        }
        out.push(']');
    }
    if let Some(ph) = &ev.ph {
        let _ = write!(out, ",\"ph\":\"{ph}\"");
    }
    if let Some(corr) = ev.corr {
        let _ = write!(out, ",\"corr\":{corr}");
    }
    if let Some(worker) = ev.worker {
        let _ = write!(out, ",\"worker\":{worker}");
    }
    if let Some(offset) = ev.offset {
        let _ = write!(out, ",\"offset\":{offset}");
    }
    if let Some(rtt) = ev.rtt {
        let _ = write!(out, ",\"rtt\":{rtt}");
    }
    out.push('}');
    out
}

/// Where exchange wall time went, derived from the pipeline spans and
/// the flow chains of one (usually merged) trace. All totals are in
/// microseconds, summed over every step the trace covers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Attribution {
    /// Distinct steps tagged on exchange-span enters.
    pub steps: u64,
    /// Wall time inside broker/virtual exchange spans.
    pub exchange_us: u64,
    /// Master-side frame encoding + send (`runtime.pipeline.serialize`).
    pub serialize_us: u64,
    /// Master-side blocking receive (`runtime.pipeline.inflight`).
    pub inflight_us: u64,
    /// Master-side reply combination (`runtime.pipeline.combine`).
    pub combine_us: u64,
    /// Worker compute, bounded by each chain's serve (`"t"`) pair.
    pub compute_us: u64,
    /// Wire time: chain start → finish minus the worker compute.
    pub wire_us: u64,
    /// In-flight time not explained by wire transfer or compute.
    pub stall_us: u64,
    /// Complete flow chains accounted.
    pub flows: usize,
    /// Per-worker busy (compute) time, keyed by worker index.
    pub worker_busy_us: BTreeMap<u64, u64>,
}

impl Attribution {
    /// Share of exchange wall time explained by the three pipeline
    /// phases (the attribution-completeness gate; 1.0 when the trace
    /// has no exchanges).
    pub fn coverage(&self) -> f64 {
        if self.exchange_us == 0 {
            return 1.0;
        }
        (self.serialize_us + self.inflight_us + self.combine_us) as f64 / self.exchange_us as f64
    }

    /// Max over mean per-worker busy time; 1.0 = perfectly balanced,
    /// higher = one worker is the straggler the step waits on.
    pub fn straggler_index(&self) -> f64 {
        let n = self.worker_busy_us.len();
        if n == 0 {
            return 1.0;
        }
        let max = *self.worker_busy_us.values().max().unwrap() as f64;
        let mean = self.worker_busy_us.values().sum::<u64>() as f64 / n as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Span names whose wall time counts as "the exchange".
pub const EXCHANGE_SPANS: [&str; 4] = [
    "runtime.broker.fwd",
    "runtime.broker.bwd",
    "runtime.virtual.fwd",
    "runtime.virtual.bwd",
];

/// Derive the per-phase attribution report from a decoded trace.
///
/// Phase totals come from the master's pipeline spans; worker compute
/// and wire time come from the flow chains (compute = the serve pair,
/// wire = chain wall time minus compute); stall is the in-flight
/// remainder. Incomplete chains (e.g. in an unmerged trace) are
/// skipped, not errors — [`validate`] is where incompleteness fails.
pub fn attribute(events: &[RawEvent]) -> Attribution {
    let mut a = Attribution::default();
    let mut steps: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut stacks: BTreeMap<(u64, u64), Vec<(&str, u64)>> = BTreeMap::new();
    // corr → (start, first serve, last serve, finish) timestamps.
    type Chain = (Option<u64>, Option<u64>, Option<u64>, Option<u64>);
    let mut chains: BTreeMap<u64, Chain> = BTreeMap::new();
    for ev in events {
        match ev.ev.as_str() {
            "b" => {
                if EXCHANGE_SPANS.contains(&ev.name.as_str()) {
                    if let Some(step) = ev.step {
                        steps.insert(step);
                    }
                }
                stacks
                    .entry((ev.pid, ev.tid))
                    .or_default()
                    .push((&ev.name, ev.t));
            }
            "e" => {
                if let Some((name, start)) = stacks.entry((ev.pid, ev.tid)).or_default().pop() {
                    let dur = ev.t.saturating_sub(start);
                    match name {
                        "runtime.pipeline.serialize" => a.serialize_us += dur,
                        "runtime.pipeline.inflight" => a.inflight_us += dur,
                        "runtime.pipeline.combine" => a.combine_us += dur,
                        n if EXCHANGE_SPANS.contains(&n) => a.exchange_us += dur,
                        _ => {}
                    }
                }
            }
            "f" => {
                let (Some(corr), Some(ph)) = (ev.corr, ev.ph.as_deref()) else {
                    continue;
                };
                let c = chains.entry(corr).or_default();
                match ph {
                    "s" => c.0 = Some(ev.t),
                    "t" => {
                        if c.1.is_none() {
                            c.1 = Some(ev.t);
                        }
                        c.2 = Some(ev.t);
                    }
                    _ => c.3 = Some(ev.t),
                }
            }
            _ => {}
        }
    }
    for (corr, chain) in chains {
        let (Some(s), Some(t0), Some(t1), Some(f)) = chain else {
            continue;
        };
        let compute = t1.saturating_sub(t0);
        let wire = f.saturating_sub(s).saturating_sub(compute);
        a.compute_us += compute;
        a.wire_us += wire;
        a.flows += 1;
        *a.worker_busy_us
            .entry(crate::corr::worker(corr))
            .or_insert(0) += compute;
    }
    a.stall_us = a.inflight_us.saturating_sub(a.wire_us + a.compute_us);
    a.steps = steps.len() as u64;
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_escaped_strings() {
        let v = parse_json(r#"{"a":"q\"uo\\te\n\t\rAé"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_str), Some("q\"uo\\te\n\t\rAé"));
        assert!(parse_json(r#""unterminated"#).is_err());
        assert!(parse_json(r#""bad \q escape""#).is_err());
        assert!(parse_json(r#""trunc \u00""#).is_err());
    }

    #[test]
    fn parses_nested_objects_and_arrays() {
        let v = parse_json(r#"{"a":[{"b":[1,[2,3]]},{"c":{"d":null}}],"e":{}}"#).unwrap();
        let a = v.get("a").unwrap();
        let Json::Arr(items) = a else { panic!() };
        assert_eq!(items.len(), 2);
        let inner = items[0].get("b").unwrap();
        let Json::Arr(b) = inner else { panic!() };
        assert_eq!(b[0].as_u64(), Some(1));
        assert_eq!(items[1].get("c").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Obj(vec![])));
        assert!(parse_json(r#"{"a":[1,}"#).is_err());
        assert!(parse_json(r#"{"a":1}{"#).is_err(), "trailing data");
    }

    #[test]
    fn numbers_beyond_u64_do_not_panic() {
        // 2^64 doesn't fit u64; the f64-backed parser keeps it as an
        // integer-valued float and the as-cast saturates.
        let v = parse_json("18446744073709551616").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(parse_json("1e300").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parse_json("-5").unwrap().as_u64(), None);
        assert_eq!(parse_json("-5").unwrap().as_i64(), Some(-5));
        assert_eq!(parse_json("2.5").unwrap().as_i64(), None);
    }

    #[test]
    fn parses_flow_and_clock_records() {
        let f = parse_line(r#"{"ev":"f","t":60,"tid":1,"step":3,"ph":"s","corr":412317122560}"#)
            .unwrap();
        assert_eq!((f.ev.as_str(), f.ph.as_deref()), ("f", Some("s")));
        assert_eq!(f.corr, Some(412317122560));
        assert_eq!(f.pid, 0, "unmerged traces decode as pid 0");

        let k =
            parse_line(r#"{"ev":"k","t":70,"tid":0,"worker":1,"offset":-1423,"rtt":88}"#).unwrap();
        assert_eq!(
            (k.worker, k.offset, k.rtt),
            (Some(1), Some(-1423), Some(88))
        );

        let merged =
            parse_line(r#"{"ev":"f","t":9,"tid":2,"pid":3,"step":0,"ph":"t","corr":7}"#).unwrap();
        assert_eq!(merged.pid, 3);

        assert!(parse_line(r#"{"ev":"f","t":1,"tid":1,"step":0,"ph":"s"}"#).is_err());
        assert!(parse_line(r#"{"ev":"f","t":1,"tid":1,"step":0,"ph":"x","corr":1}"#).is_err());
        assert!(parse_line(r#"{"ev":"k","t":1,"tid":0,"worker":0,"offset":3}"#).is_err());
        assert!(parse_line(r#"{"ev":"z","t":1,"tid":1,"name":"n"}"#).is_err());
        assert!(
            parse_line(r#"{"ev":"b","t":1,"tid":1,"step":0}"#).is_err(),
            "span needs name"
        );
    }

    fn ev(line: &str) -> RawEvent {
        parse_line(line).unwrap()
    }

    #[test]
    fn validate_requires_complete_flow_chains() {
        let s = ev(r#"{"ev":"f","t":1,"tid":1,"step":0,"ph":"s","corr":9}"#);
        let t0 = ev(r#"{"ev":"f","t":2,"tid":1,"pid":1,"step":0,"ph":"t","corr":9}"#);
        let t1 = ev(r#"{"ev":"f","t":3,"tid":1,"pid":1,"step":0,"ph":"t","corr":9}"#);
        let f = ev(r#"{"ev":"f","t":4,"tid":2,"step":0,"ph":"f","corr":9}"#);

        // Master-only trace (no worker serve records) must fail.
        assert!(validate(&[s.clone(), f.clone()]).is_err());
        // Worker-only trace (no master endpoints) must fail.
        assert!(validate(&[t0.clone(), t1.clone()]).is_err());
        // The merged chain passes and is counted.
        let stats = validate(&[s, t0, t1, f]).unwrap();
        assert_eq!(stats.flows, 1);
    }

    #[test]
    fn validate_keys_lanes_by_pid_and_tid() {
        // Same tid in two pids: independent clocks and span stacks.
        let trace = [
            ev(r#"{"ev":"b","t":10,"tid":1,"pid":0,"step":0,"name":"a"}"#),
            ev(r#"{"ev":"b","t":5,"tid":1,"pid":1,"step":0,"name":"w"}"#),
            ev(r#"{"ev":"e","t":6,"tid":1,"pid":1,"name":"w"}"#),
            ev(r#"{"ev":"e","t":20,"tid":1,"pid":0,"name":"a"}"#),
        ];
        let stats = validate(&trace).unwrap();
        assert_eq!((stats.spans, stats.threads), (2, 2));
        // Collapsed onto one pid the same sequence goes backwards.
        let mut collapsed = trace.clone();
        for e in &mut collapsed {
            e.pid = 0;
        }
        assert!(validate(&collapsed).is_err());
    }

    #[test]
    fn merge_rebases_onto_master_clock() {
        let master = vec![
            ev(r#"{"ev":"k","t":1,"tid":0,"worker":0,"offset":100,"rtt":50}"#),
            ev(r#"{"ev":"k","t":2,"tid":0,"worker":0,"offset":40,"rtt":8}"#),
            ev(r#"{"ev":"b","t":10,"tid":1,"step":0,"name":"a"}"#),
            ev(r#"{"ev":"e","t":30,"tid":1,"name":"a"}"#),
        ];
        let worker = vec![
            ev(r#"{"ev":"b","t":55,"tid":1,"step":0,"name":"w"}"#),
            ev(r#"{"ev":"e","t":60,"tid":1,"name":"w"}"#),
        ];
        let merged = merge_traces(master.clone(), vec![(0, worker)]).unwrap();
        // The min-RTT sample (offset 40) wins: worker t 55 → master 15.
        let w: Vec<(u64, u64)> = merged
            .iter()
            .filter(|e| e.pid == 1)
            .map(|e| (e.t, e.tid))
            .collect();
        assert_eq!(w, vec![(15, 1), (20, 1)]);
        validate(&merged).unwrap();

        // A worker without any clock sample cannot be merged.
        let lone = vec![ev(r#"{"ev":"e","t":1,"tid":1,"name":"w"}"#)];
        assert!(merge_traces(master, vec![(3, lone)]).is_err());
    }

    #[test]
    fn merge_shifts_negative_rebased_timestamps() {
        // Worker clock is *behind* rebasing: t 5 − offset 20 = −15, so
        // every timestamp shifts by +15 and stays u64.
        let master = vec![
            ev(r#"{"ev":"k","t":1,"tid":0,"worker":0,"offset":20,"rtt":4}"#),
            ev(r#"{"ev":"c","t":8,"tid":0,"name":"n","value":1}"#),
        ];
        let worker = vec![ev(r#"{"ev":"c","t":5,"tid":1,"name":"n","value":2}"#)];
        let merged = merge_traces(master, vec![(0, worker)]).unwrap();
        assert_eq!(merged[0].t, 0, "worker event lands at the new epoch");
        assert_eq!(merged[0].pid, 1);
        assert_eq!(merged[2].t, 23, "master events shift by the same 15");
    }

    #[test]
    fn jsonl_roundtrip_preserves_every_kind() {
        let lines = [
            r#"{"ev":"b","t":12,"tid":1,"pid":2,"step":3,"name":"runtime.step"}"#,
            r#"{"ev":"e","t":90,"tid":1,"name":"run \"x\""}"#,
            r#"{"ev":"c","t":99,"tid":0,"name":"c.n","value":42}"#,
            r#"{"ev":"h","t":99,"tid":0,"name":"h.n","buckets":[[16,7],[32,3]]}"#,
            r#"{"ev":"x","t":50,"tid":1,"step":3,"name":"fwd","src":"runtime","block":0,"rows":[[0,128]]}"#,
            r#"{"ev":"f","t":60,"tid":1,"step":3,"ph":"s","corr":412317122560}"#,
            r#"{"ev":"k","t":70,"tid":0,"worker":1,"offset":-1423,"rtt":88}"#,
        ];
        for line in lines {
            let first = parse_line(line).unwrap();
            let second = parse_line(&to_jsonl(&first)).unwrap();
            assert_eq!(to_jsonl(&first), to_jsonl(&second), "stable for {line}");
        }
    }

    #[test]
    fn attribution_decomposes_exchange_time() {
        let corr0 = crate::corr::pack(1, 0, 0, 0, 0);
        let corr1 = crate::corr::pack(1, 1, 0, 0, 0);
        let mut trace = vec![
            ev(r#"{"ev":"b","t":0,"tid":1,"step":1,"name":"runtime.broker.fwd"}"#),
            ev(r#"{"ev":"b","t":0,"tid":1,"step":1,"name":"runtime.pipeline.serialize"}"#),
            ev(r#"{"ev":"e","t":10,"tid":1,"name":"runtime.pipeline.serialize"}"#),
            ev(r#"{"ev":"b","t":10,"tid":1,"step":1,"name":"runtime.pipeline.inflight"}"#),
            ev(r#"{"ev":"e","t":80,"tid":1,"name":"runtime.pipeline.inflight"}"#),
            ev(r#"{"ev":"b","t":80,"tid":1,"step":1,"name":"runtime.pipeline.combine"}"#),
            ev(r#"{"ev":"e","t":95,"tid":1,"name":"runtime.pipeline.combine"}"#),
            ev(r#"{"ev":"e","t":100,"tid":1,"name":"runtime.broker.fwd"}"#),
        ];
        // Chain 0: dispatch at 5, worker busy 20..50, result at 60
        //   → compute 30, wire (60−5)−30 = 25.
        // Chain 1: dispatch at 6, worker busy 20..30, result at 40
        //   → compute 10, wire (40−6)−10 = 24.
        for (corr, s, t0, t1, f, pid) in [(corr0, 5, 20, 50, 60, 1), (corr1, 6, 20, 30, 40, 2)] {
            trace.push(ev(&format!(
                r#"{{"ev":"f","t":{s},"tid":2,"step":1,"ph":"s","corr":{corr}}}"#
            )));
            trace.push(ev(&format!(
                r#"{{"ev":"f","t":{t0},"tid":1,"pid":{pid},"step":1,"ph":"t","corr":{corr}}}"#
            )));
            trace.push(ev(&format!(
                r#"{{"ev":"f","t":{t1},"tid":1,"pid":{pid},"step":1,"ph":"t","corr":{corr}}}"#
            )));
            trace.push(ev(&format!(
                r#"{{"ev":"f","t":{f},"tid":2,"step":1,"ph":"f","corr":{corr}}}"#
            )));
        }
        let a = attribute(&trace);
        assert_eq!(a.steps, 1);
        assert_eq!(a.exchange_us, 100);
        assert_eq!(a.serialize_us, 10);
        assert_eq!(a.inflight_us, 70);
        assert_eq!(a.combine_us, 15);
        assert_eq!(a.compute_us, 40);
        assert_eq!(a.wire_us, 49);
        assert_eq!(a.stall_us, 0, "70 in flight fully explained by 89? clamped");
        assert_eq!(a.flows, 2);
        assert!((a.coverage() - 0.95).abs() < 1e-9);
        // Worker 0 was busy 30 µs, worker 1 only 10: max/mean = 1.5.
        assert!((a.straggler_index() - 1.5).abs() < 1e-9);
    }
}

//! The process-global trace sink: serialises drained events as JSONL
//! or Chrome `trace_event` JSON into a file (or an in-memory buffer
//! for tests). Write errors are swallowed after downgrading the sink
//! to discard — observability must never take the workload down.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::Mutex;

use crate::span::Event;
use crate::TraceMode;

enum Target {
    File(std::io::BufWriter<std::fs::File>),
    Memory(Vec<u8>),
    Discard,
}

struct Sink {
    target: Target,
    chrome: bool,
    /// Chrome mode: has the opening `[` been written yet?
    wrote_any: bool,
}

impl Sink {
    fn write(&mut self, bytes: &[u8]) {
        let failed = match &mut self.target {
            Target::File(w) => w.write_all(bytes).is_err(),
            Target::Memory(buf) => {
                buf.extend_from_slice(bytes);
                false
            }
            Target::Discard => false,
        };
        if failed {
            self.target = Target::Discard;
        }
    }

    fn flush(&mut self) {
        if let Target::File(w) = &mut self.target {
            if w.flush().is_err() {
                self.target = Target::Discard;
            }
        }
    }
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

fn open_default() -> Sink {
    let chrome = crate::mode() == TraceMode::Chrome;
    let path = std::env::var("VELA_TRACE_OUT").unwrap_or_else(|_| {
        if chrome {
            "vela-trace.json".to_string()
        } else {
            "vela-trace.jsonl".to_string()
        }
    });
    let target = match std::fs::File::create(&path) {
        Ok(f) => Target::File(std::io::BufWriter::new(f)),
        Err(e) => {
            crate::warn!("cannot open trace output {path}: {e}; trace events discarded");
            Target::Discard
        }
    };
    Sink {
        target,
        chrome,
        wrote_any: false,
    }
}

fn with_sink<R>(f: impl FnOnce(&mut Sink) -> R) -> R {
    let mut guard = SINK.lock().unwrap();
    let sink = guard.get_or_insert_with(open_default);
    f(sink)
}

/// Redirect the sink to an in-memory buffer (tests). Replaces any
/// already-open sink.
pub fn set_memory_sink() {
    *SINK.lock().unwrap() = Some(Sink {
        target: Target::Memory(Vec::new()),
        chrome: crate::mode() == TraceMode::Chrome,
        wrote_any: false,
    });
}

/// Take everything the in-memory sink captured so far. Empty when the
/// sink is not a memory sink.
pub fn take_memory() -> String {
    let mut guard = SINK.lock().unwrap();
    match guard.as_mut() {
        Some(Sink {
            target: Target::Memory(buf),
            ..
        }) => String::from_utf8(std::mem::take(buf)).unwrap_or_default(),
        _ => String::new(),
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn fmt_rows(out: &mut String, rows: &[(u32, u64)]) {
    out.push('[');
    for (i, (e, r)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{e},{r}]");
    }
    out.push(']');
}

fn fmt_jsonl(out: &mut String, tid: u64, ev: &Event) {
    match ev {
        Event::Enter { name, t, step } => {
            let _ = write!(
                out,
                "{{\"ev\":\"b\",\"t\":{t},\"tid\":{tid},\"step\":{step},\"name\":\"{name}\"}}"
            );
        }
        Event::Exit { name, t } => {
            let _ = write!(
                out,
                "{{\"ev\":\"e\",\"t\":{t},\"tid\":{tid},\"name\":\"{name}\"}}"
            );
        }
        Event::Flow { ph, corr, t, step } => {
            let _ = write!(
                out,
                "{{\"ev\":\"f\",\"t\":{t},\"tid\":{tid},\"step\":{step},\"ph\":\"{}\",\"corr\":{corr}}}",
                ph.letter()
            );
        }
        Event::ExpertRows {
            pass,
            src,
            block,
            t,
            step,
            rows,
        } => {
            let _ = write!(
                out,
                "{{\"ev\":\"x\",\"t\":{t},\"tid\":{tid},\"step\":{step},\"name\":\"{pass}\",\"src\":\"{src}\",\"block\":{block},\"rows\":"
            );
            fmt_rows(out, rows);
            out.push('}');
        }
    }
    out.push('\n');
}

fn chrome_sep(out: &mut String, wrote_any: &mut bool) {
    if *wrote_any {
        out.push_str(",\n");
    } else {
        out.push_str("[\n");
        *wrote_any = true;
    }
}

fn fmt_chrome(out: &mut String, tid: u64, ev: &Event, wrote_any: &mut bool) {
    chrome_sep(out, wrote_any);
    match ev {
        Event::Enter { name, t, step } => {
            let _ = write!(
                out,
                "{{\"ph\":\"B\",\"ts\":{t},\"pid\":1,\"tid\":{tid},\"name\":\"{name}\",\"args\":{{\"step\":{step}}}}}"
            );
        }
        Event::Exit { name, t } => {
            let _ = write!(
                out,
                "{{\"ph\":\"E\",\"ts\":{t},\"pid\":1,\"tid\":{tid},\"name\":\"{name}\"}}"
            );
        }
        Event::Flow { ph, corr, t, .. } => {
            // Chrome flow events bind to the slice enclosing (tid, ts);
            // `bp:"e"` on the finish keeps the arrow attached to it.
            let bp = match ph {
                crate::span::FlowPhase::Finish => ",\"bp\":\"e\"",
                _ => "",
            };
            let _ = write!(
                out,
                "{{\"ph\":\"{}\",\"ts\":{t},\"pid\":1,\"tid\":{tid},\"cat\":\"exchange\",\"name\":\"exchange\",\"id\":{corr}{bp}}}",
                ph.letter()
            );
        }
        Event::ExpertRows {
            pass,
            src,
            block,
            t,
            step,
            rows,
        } => {
            let _ = write!(
                out,
                "{{\"ph\":\"i\",\"ts\":{t},\"pid\":1,\"tid\":{tid},\"name\":\"rows.{src}.{pass}.b{block}\",\"s\":\"t\",\"args\":{{\"step\":{step},\"rows\":\""
            );
            for (i, (e, r)) in rows.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{e}:{r}");
            }
            out.push_str("\"}}");
        }
    }
}

pub(crate) fn write_events(tid: u64, events: &[Event]) {
    if events.is_empty() {
        return;
    }
    with_sink(|s| {
        let mut out = String::with_capacity(events.len() * 64);
        for ev in events {
            if s.chrome {
                let mut wrote_any = s.wrote_any;
                fmt_chrome(&mut out, tid, ev, &mut wrote_any);
                s.wrote_any = wrote_any;
            } else {
                fmt_jsonl(&mut out, tid, ev);
            }
        }
        s.write(out.as_bytes());
    });
}

/// Append a cumulative counter + histogram snapshot (pseudo-thread 0).
/// Snapshot and timestamp are both taken *inside* the sink lock: two
/// racing flushes (say an engine shutdown and a worker thread exiting)
/// would otherwise stamp their batches before serializing on the lock
/// and could write them in reverse timestamp order, breaking the
/// tid-0 monotonicity `trace_summary --check` enforces.
pub(crate) fn write_snapshots() {
    with_sink(|s| {
        let counters = crate::counters::counter_snapshot();
        let hists = crate::counters::histogram_snapshot();
        if counters.is_empty() && hists.is_empty() {
            return;
        }
        let t = crate::now_us();
        let mut out = String::new();
        for (name, value) in &counters {
            if s.chrome {
                let mut wrote_any = s.wrote_any;
                chrome_sep(&mut out, &mut wrote_any);
                s.wrote_any = wrote_any;
                out.push_str("{\"ph\":\"C\",\"ts\":");
                let _ = write!(out, "{t},\"pid\":1,\"tid\":0,\"name\":\"");
                escape_into(&mut out, name);
                let _ = write!(out, "\",\"args\":{{\"value\":{value}}}}}");
            } else {
                out.push_str("{\"ev\":\"c\",\"t\":");
                let _ = write!(out, "{t},\"tid\":0,\"name\":\"");
                escape_into(&mut out, name);
                let _ = write!(out, "\",\"value\":{value}}}");
                out.push('\n');
            }
        }
        for (name, buckets) in &hists {
            if s.chrome {
                let mut wrote_any = s.wrote_any;
                chrome_sep(&mut out, &mut wrote_any);
                s.wrote_any = wrote_any;
                out.push_str("{\"ph\":\"i\",\"ts\":");
                let _ = write!(out, "{t},\"pid\":1,\"tid\":0,\"name\":\"");
                escape_into(&mut out, name);
                out.push_str("\",\"s\":\"g\",\"args\":{\"buckets\":\"");
                for (i, (lo, count)) in buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    let _ = write!(out, "{lo}:{count}");
                }
                out.push_str("\"}}");
            } else {
                out.push_str("{\"ev\":\"h\",\"t\":");
                let _ = write!(out, "{t},\"tid\":0,\"name\":\"");
                escape_into(&mut out, name);
                out.push_str("\",\"buckets\":[");
                for (i, (lo, count)) in buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{lo},{count}]");
                }
                out.push_str("]}");
                out.push('\n');
            }
        }
        s.write(out.as_bytes());
    });
}

/// Append one clock-offset sample for `worker` (pseudo-thread 0). The
/// timestamp is taken *inside* the sink lock so tid-0 records stay
/// monotone even when samples race a snapshot flush.
pub(crate) fn write_clock(worker: u64, offset_us: i64, rtt_us: u64) {
    with_sink(|s| {
        let t = crate::now_us();
        let mut out = String::new();
        if s.chrome {
            let mut wrote_any = s.wrote_any;
            chrome_sep(&mut out, &mut wrote_any);
            s.wrote_any = wrote_any;
            let _ = write!(
                out,
                "{{\"ph\":\"i\",\"ts\":{t},\"pid\":1,\"tid\":0,\"name\":\"clock.worker{worker}\",\"s\":\"g\",\"args\":{{\"offset_us\":{offset_us},\"rtt_us\":{rtt_us}}}}}"
            );
        } else {
            let _ = write!(
                out,
                "{{\"ev\":\"k\",\"t\":{t},\"tid\":0,\"worker\":{worker},\"offset\":{offset_us},\"rtt\":{rtt_us}}}\n"
            );
        }
        s.write(out.as_bytes());
    });
}

pub(crate) fn flush_writer() {
    with_sink(|s| s.flush());
}

//! Leveled stderr logger honoring the `VELA_LOG` knob.
//!
//! The figure/ablation binaries route their progress prints through
//! [`crate::info!`]; the default level is `warn` so CI runs stay
//! quiet. Formatting cost is only paid when the level is active.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity; lower is more severe.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// `u8::MAX` = not yet initialised from the environment.
static MAX: AtomicU8 = AtomicU8::new(u8::MAX);

fn max_raw() -> u8 {
    let m = MAX.load(Ordering::Relaxed);
    if m != u8::MAX {
        return m;
    }
    let m = match std::env::var("VELA_LOG").ok().as_deref() {
        Some("error") | Some("0") => 0,
        None | Some("") | Some("warn") | Some("1") => 1,
        Some("info") | Some("2") => 2,
        Some("debug") | Some("3") => 3,
        Some(_) => 1,
    };
    MAX.store(m, Ordering::Relaxed);
    m
}

/// Would a message at `level` be printed?
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= max_raw()
}

/// Programmatic override of the env-selected level.
pub fn set_log_level(level: Level) {
    MAX.store(level as u8, Ordering::Relaxed);
}

/// Print `args` to stderr if `level` is active. Prefer the macros.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if log_enabled(level) {
        eprintln!("[vela {}] {}", level.tag(), args);
    }
}

#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Error, format_args!($($arg)*))
    };
}

#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Warn, format_args!($($arg)*))
    };
}

#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Info, format_args!($($arg)*))
    };
}

#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::Level::Debug, format_args!($($arg)*))
    };
}

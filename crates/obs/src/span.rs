//! Span events, thread-local buffers and the cross-thread drain
//! registry.
//!
//! Every recording thread owns an `Arc<Mutex<Vec<Event>>>` buffer that
//! is also registered in a process-global list, so [`crate::flush`]
//! can drain threads that never exit (the `vela-tensor` pool workers
//! park forever — a TLS-destructor-only design would strand their
//! events). The buffer mutex is uncontended in steady state: only the
//! owning thread pushes, and drains swap the whole vector out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Position of a flow record within its dispatch → worker-compute →
/// result chain. The letters mirror the Chrome `trace_event` flow
/// phases so a merged trace renders arrows between process lanes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowPhase {
    /// Producer end: the master serialized a dispatch frame.
    Start,
    /// Intermediate hop: the worker entered / left the serve for the
    /// frame (emitted twice, so the pair bounds worker compute).
    Step,
    /// Consumer end: the master drained the matching result frame.
    Finish,
}

impl FlowPhase {
    pub(crate) fn letter(self) -> &'static str {
        match self {
            FlowPhase::Start => "s",
            FlowPhase::Step => "t",
            FlowPhase::Finish => "f",
        }
    }
}

/// An in-memory trace event; serialisation happens at drain time.
pub(crate) enum Event {
    Enter {
        name: &'static str,
        t: u64,
        step: u64,
    },
    Exit {
        name: &'static str,
        t: u64,
    },
    Flow {
        ph: FlowPhase,
        corr: u64,
        t: u64,
        step: u64,
    },
    ExpertRows {
        /// `"fwd"` or `"bwd"`.
        pass: &'static str,
        /// Which layer observed the rows: `"runtime"` or `"model"`.
        src: &'static str,
        block: u32,
        t: u64,
        step: u64,
        /// `(expert id, rows routed to it)` pairs.
        rows: Vec<(u32, u64)>,
    },
}

/// Buffered events per thread before an automatic drain.
const FLUSH_THRESHOLD: usize = 8192;

type SharedBuf = Arc<Mutex<Vec<Event>>>;

fn registry() -> &'static Mutex<Vec<(u64, SharedBuf)>> {
    static R: OnceLock<Mutex<Vec<(u64, SharedBuf)>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct Local {
    tid: u64,
    buf: SharedBuf,
}

thread_local! {
    static LOCAL: Local = {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let buf: SharedBuf = Arc::new(Mutex::new(Vec::new()));
        registry().lock().unwrap().push((tid, buf.clone()));
        Local { tid, buf }
    };
}

pub(crate) fn record(ev: Event) {
    LOCAL.with(|l| {
        let mut buf = l.buf.lock().unwrap();
        buf.push(ev);
        if buf.len() >= FLUSH_THRESHOLD {
            let events = std::mem::take(&mut *buf);
            drop(buf);
            crate::sink::write_events(l.tid, &events);
        }
    });
}

/// Drain every registered thread buffer into the sink.
pub(crate) fn drain_all() {
    let bufs: Vec<(u64, SharedBuf)> = registry().lock().unwrap().clone();
    for (tid, buf) in bufs {
        let events = std::mem::take(&mut *buf.lock().unwrap());
        if !events.is_empty() {
            crate::sink::write_events(tid, &events);
        }
    }
}

/// RAII guard closing the span on drop. Inert (zero events) when the
/// span was opened while tracing was disabled.
pub struct SpanGuard {
    name: &'static str,
    active: bool,
}

/// Open a named span attributed to the current logical step. When
/// tracing is off this is one relaxed load and returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::tracing() {
        return SpanGuard {
            name,
            active: false,
        };
    }
    record(Event::Enter {
        name,
        t: crate::now_us(),
        step: crate::current_step(),
    });
    SpanGuard { name, active: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            record(Event::Exit {
                name: self.name,
                t: crate::now_us(),
            });
        }
    }
}

/// Record one end of a cross-process flow identified by its correlation
/// key (see [`crate::corr`]). The master emits [`FlowPhase::Start`] when
/// it serializes a dispatch frame and [`FlowPhase::Finish`] when it
/// drains the matching result; the worker emits [`FlowPhase::Step`]
/// twice — on entering and leaving the serve — so the pair bounds the
/// worker compute for that frame.
#[inline]
pub fn flow(ph: FlowPhase, corr: u64) {
    if !crate::tracing() {
        return;
    }
    record(Event::Flow {
        ph,
        corr,
        t: crate::now_us(),
        step: crate::current_step(),
    });
}

/// Record per-expert routed-row counts for one (step, block, pass)
/// observation. `src` distinguishes the runtime's dispatch view from
/// the model's routing view so readers never double-count.
pub fn expert_rows(src: &'static str, pass: &'static str, block: usize, rows: &[(usize, usize)]) {
    if !crate::tracing() || rows.is_empty() {
        return;
    }
    record(Event::ExpertRows {
        pass,
        src,
        block: block as u32,
        t: crate::now_us(),
        step: crate::current_step(),
        rows: rows.iter().map(|&(e, r)| (e as u32, r as u64)).collect(),
    });
}

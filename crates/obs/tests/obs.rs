//! End-to-end tests for vela-obs: mode gating, counters, histograms,
//! span recording through the memory sink, the JSONL reader and the
//! structural validator.
//!
//! The trace mode and sink are process-global, so every test that
//! touches them serialises on one mutex and restores `Off` before
//! releasing it.

use std::sync::Mutex;

use vela_obs::reader::{parse_json, parse_line, validate, Json};
use vela_obs::{sink, TraceMode};

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn disabled_mode_records_nothing() {
    let _g = lock();
    vela_obs::set_mode(TraceMode::Off);
    assert!(!vela_obs::enabled());
    assert!(!vela_obs::tracing());
    let before = vela_obs::counter("test.disabled").get();
    static C: vela_obs::LazyCounter = vela_obs::LazyCounter::new("test.disabled");
    C.add(5);
    {
        let _s = vela_obs::span("test.disabled.span");
    }
    assert_eq!(vela_obs::counter("test.disabled").get(), before);
}

#[test]
fn counters_and_histograms_accumulate() {
    let _g = lock();
    vela_obs::set_mode(TraceMode::Counters);
    assert!(vela_obs::enabled());
    assert!(!vela_obs::tracing());

    let c = vela_obs::counter("test.counter");
    let start = c.get();
    static LC: vela_obs::LazyCounter = vela_obs::LazyCounter::new("test.counter");
    LC.add(3);
    LC.add(4);
    assert_eq!(c.get(), start + 7);
    let snap = vela_obs::counter_snapshot();
    assert_eq!(
        snap.iter().find(|(n, _)| n == "test.counter").map(|p| p.1),
        Some(start + 7)
    );

    let h = vela_obs::histogram("test.hist");
    h.record(0); // bucket lo 0
    h.record(1); // bucket lo 1
    h.record(5); // bucket lo 4
    h.record(5);
    let hsnap = vela_obs::histogram_snapshot();
    let buckets = &hsnap.iter().find(|(n, _)| n == "test.hist").unwrap().1;
    assert!(buckets.contains(&(0, 1)));
    assert!(buckets.contains(&(1, 1)));
    assert!(buckets.contains(&(4, 2)));

    vela_obs::set_mode(TraceMode::Off);
}

#[test]
fn spans_roundtrip_through_jsonl_and_validate() {
    let _g = lock();
    vela_obs::set_mode(TraceMode::Jsonl);
    sink::set_memory_sink();

    vela_obs::step_begin(7);
    {
        let _outer = vela_obs::span("test.outer");
        {
            let _inner = vela_obs::span("test.inner");
        }
        vela_obs::expert_rows("runtime", "fwd", 2, &[(0, 128), (3, 64)]);
    }
    static C: vela_obs::LazyCounter = vela_obs::LazyCounter::new("test.roundtrip");
    C.add(11);
    vela_obs::flush();
    let text = sink::take_memory();
    vela_obs::set_mode(TraceMode::Off);

    let events: Vec<_> = text
        .lines()
        .map(|l| parse_line(l).expect("schema-valid line"))
        .collect();
    let stats = validate(&events).expect("structurally valid trace");
    assert!(stats.spans >= 2);

    let enter = events
        .iter()
        .find(|e| e.ev == "b" && e.name == "test.inner")
        .expect("inner span enter");
    assert_eq!(enter.step, Some(7));

    let x = events.iter().find(|e| e.ev == "x").expect("expert rows");
    assert_eq!(x.src.as_deref(), Some("runtime"));
    assert_eq!(x.block, Some(2));
    assert_eq!(x.rows, vec![(0, 128), (3, 64)]);

    let c = events
        .iter()
        .find(|e| e.ev == "c" && e.name == "test.roundtrip")
        .expect("counter snapshot event");
    assert!(c.value.unwrap() >= 11);
}

#[test]
fn spans_survive_worker_threads() {
    let _g = lock();
    vela_obs::set_mode(TraceMode::Jsonl);
    sink::set_memory_sink();

    let handles: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                let _s = vela_obs::span("test.worker");
                std::hint::black_box(i)
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    vela_obs::flush();
    let text = sink::take_memory();
    vela_obs::set_mode(TraceMode::Off);

    let events: Vec<_> = text
        .lines()
        .map(|l| parse_line(l).expect("schema-valid line"))
        .collect();
    let stats = validate(&events).expect("valid trace");
    let worker_spans = events
        .iter()
        .filter(|e| e.ev == "e" && e.name == "test.worker")
        .count();
    assert_eq!(worker_spans, 3);
    assert!(stats.threads >= 3);
}

#[test]
fn validator_rejects_malformed_traces() {
    // Pure reader tests: no global state touched.
    let ok = |l: &str| parse_line(l).unwrap();

    // Backwards timestamp on one thread.
    let events = vec![
        ok(r#"{"ev":"b","t":10,"tid":1,"step":0,"name":"a"}"#),
        ok(r#"{"ev":"e","t":5,"tid":1,"name":"a"}"#),
    ];
    assert!(validate(&events).unwrap_err().contains("backwards"));

    // Exit without matching enter.
    let events = vec![ok(r#"{"ev":"e","t":5,"tid":1,"name":"a"}"#)];
    assert!(validate(&events).unwrap_err().contains("no open span"));

    // Mismatched nesting.
    let events = vec![
        ok(r#"{"ev":"b","t":1,"tid":1,"step":0,"name":"a"}"#),
        ok(r#"{"ev":"b","t":2,"tid":1,"step":0,"name":"b"}"#),
        ok(r#"{"ev":"e","t":3,"tid":1,"name":"a"}"#),
    ];
    assert!(validate(&events).unwrap_err().contains("does not match"));

    // Unclosed span at end of stream.
    let events = vec![ok(r#"{"ev":"b","t":1,"tid":1,"step":0,"name":"a"}"#)];
    assert!(validate(&events).unwrap_err().contains("still open"));

    // Per-thread monotonicity: interleaved threads may disagree globally.
    let events = vec![
        ok(r#"{"ev":"b","t":100,"tid":1,"step":0,"name":"a"}"#),
        ok(r#"{"ev":"b","t":1,"tid":2,"step":0,"name":"b"}"#),
        ok(r#"{"ev":"e","t":2,"tid":2,"name":"b"}"#),
        ok(r#"{"ev":"e","t":101,"tid":1,"name":"a"}"#),
    ];
    let stats = validate(&events).unwrap();
    assert_eq!(stats.spans, 2);
    assert_eq!(stats.threads, 2);

    // Schema errors surface at parse time.
    assert!(parse_line(r#"{"ev":"b","t":1,"tid":1,"name":"a"}"#).is_err()); // b without step
    assert!(parse_line(r#"{"ev":"c","t":1,"tid":0,"name":"a"}"#).is_err()); // c without value
    assert!(parse_line(r#"{"ev":"q","t":1,"tid":0,"name":"a"}"#).is_err()); // unknown kind
    assert!(parse_line("not json").is_err());
}

#[test]
fn json_parser_handles_nesting_and_escapes() {
    let v = parse_json(r#"{"a":[1,2,{"b":"x\ny"}],"c":true,"d":null,"e":-1.5e2}"#).unwrap();
    assert_eq!(
        v.get("a").unwrap(),
        &Json::Arr(vec![
            Json::Num(1.0),
            Json::Num(2.0),
            Json::Obj(vec![("b".to_string(), Json::Str("x\ny".to_string()))]),
        ])
    );
    assert_eq!(v.get("c"), Some(&Json::Bool(true)));
    assert_eq!(v.get("d"), Some(&Json::Null));
    assert_eq!(v.get("e"), Some(&Json::Num(-150.0)));
    assert!(parse_json(r#"{"a":}"#).is_err());
    assert!(parse_json(r#"[1,2"#).is_err());
    assert!(parse_json(r#"{} extra"#).is_err());
}

#[test]
fn logger_levels_gate_output() {
    use vela_obs::logger::{log_enabled, set_log_level};
    use vela_obs::Level;
    let _g = lock();
    set_log_level(Level::Warn);
    assert!(log_enabled(Level::Error));
    assert!(log_enabled(Level::Warn));
    assert!(!log_enabled(Level::Info));
    set_log_level(Level::Debug);
    assert!(log_enabled(Level::Debug));
    set_log_level(Level::Warn);
}

//! Locality-aware expert placement — the core contribution of the VELA
//! paper (§IV-B).
//!
//! Given a cluster [`Topology`](vela_cluster::Topology), a measured expert
//! access-probability matrix `P ∈ R^{L×E}` and per-worker capacities, this
//! crate finds the expert-to-device assignment that minimizes the expected
//! per-step communication time
//!
//! ```text
//! min Σ_l max_n E[T_{n,l}],   E[T_{n,l}] ∝ (1/B_n) Σ_e X_{n,l,e} P_{l,e}
//! ```
//!
//! exactly as formulated in the paper: the max is linearized with per-block
//! auxiliary variables, the binary assignment tensor is relaxed to `[0, 1]`,
//! the LP is solved with a from-scratch [two-phase bounded-variable simplex
//! solver](lp::simplex), and the fractional solution is rounded back to a
//! feasible binary placement with the paper's three-step procedure
//! ([`lp::rounding`]).
//!
//! Baselines (sequential, random, conventional expert parallelism) and an
//! exact branch-and-bound reference live in [`strategy`] and [`exact`].

pub mod exact;
pub mod lp;
pub mod problem;
pub mod replicated;
pub mod strategy;

pub use lp::simplex::{LpBuilder, LpSolution, LpStatus};
pub use problem::{Placement, PlacementProblem};
pub use replicated::{replicate_by_cost, ReplicatedPlacement, ReplicationConfig};
pub use strategy::Strategy;

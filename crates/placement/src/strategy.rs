//! Placement strategies: VELA's locality-aware LP plus every baseline the
//! evaluation compares against.

use vela_tensor::rng::DetRng;

use crate::lp::{build, rounding};
use crate::problem::{Placement, PlacementProblem};
use crate::LpStatus;

/// A named expert-placement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Conventional expert parallelism's mapping: expert `e` of every block
    /// goes to worker `e mod N` (the paper's EP baseline, Fig. 2).
    ExpertParallel,
    /// Sequential placement inside VELA's framework (baseline 1, §V-A).
    Sequential,
    /// Random shuffle of all experts across workers (baseline 2, §V-A).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// VELA's locality-aware placement: LP relaxation + rounding.
    Vela,
    /// Greedy per-block balancing by descending access probability — an
    /// ablation, not in the paper.
    Greedy,
}

impl Strategy {
    /// The label used in harness output (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::ExpertParallel => "EP",
            Strategy::Sequential => "Sequential",
            Strategy::Random { .. } => "Random",
            Strategy::Vela => "Vela",
            Strategy::Greedy => "Greedy",
        }
    }

    /// Computes the placement for `problem`.
    ///
    /// # Panics
    /// Panics if the LP relaxation fails to solve (cannot happen for
    /// problems validated by [`PlacementProblem::new`], whose relaxations
    /// are always feasible and bounded).
    pub fn place(&self, problem: &PlacementProblem) -> Placement {
        match self {
            Strategy::ExpertParallel => sequential(problem),
            Strategy::Sequential => sequential(problem),
            Strategy::Random { seed } => random(problem, *seed),
            Strategy::Vela => vela(problem),
            Strategy::Greedy => greedy(problem),
        }
    }
}

/// Expert `e` of block `l` → worker `e mod N` (capacity-aware spillover to
/// the next worker if a slot is full).
fn sequential(problem: &PlacementProblem) -> Placement {
    let (n, l, e) = (problem.workers(), problem.blocks(), problem.experts());
    let caps = problem.capacities();
    let mut load = vec![0usize; n];
    let mut assign = vec![vec![0usize; e]; l];
    for (block, row) in assign.iter_mut().enumerate() {
        for (expert, slot) in row.iter_mut().enumerate() {
            let mut w = expert % n;
            let mut hops = 0;
            while load[w] >= caps[w] {
                w = (w + 1) % n;
                hops += 1;
                assert!(hops <= n, "no capacity left anywhere");
            }
            let _ = block;
            load[w] += 1;
            *slot = w;
        }
    }
    Placement::new(assign, n)
}

/// Random shuffle of all `(block, expert)` pairs over worker slots.
fn random(problem: &PlacementProblem, seed: u64) -> Placement {
    let (n, l, e) = (problem.workers(), problem.blocks(), problem.experts());
    let caps = problem.capacities();
    let mut rng = DetRng::new(seed);
    // Build the multiset of available slots, shuffle, deal them out.
    let mut slots = Vec::new();
    for (w, &c) in caps.iter().enumerate() {
        slots.extend(std::iter::repeat_n(w, c));
    }
    rng.shuffle(&mut slots);
    let mut assign = vec![vec![0usize; e]; l];
    let mut cursor = 0;
    for row in assign.iter_mut() {
        for slot in row.iter_mut() {
            *slot = slots[cursor];
            cursor += 1;
        }
    }
    Placement::new(assign, n)
}

/// VELA: LP relaxation + the paper's rounding.
///
/// A solve that stops at the iteration limit still yields a usable relaxed
/// tensor — the rounding procedure repairs any residual infeasibility — so
/// only genuinely infeasible/unbounded formulations (excluded by
/// [`PlacementProblem::new`]) abort.
fn vela(problem: &PlacementProblem) -> Placement {
    let sol = build::build_lp(problem).solve();
    assert!(
        matches!(sol.status, LpStatus::Optimal | LpStatus::IterationLimit),
        "placement LP must solve (status {})",
        sol.status
    );
    let x = build::extract_relaxed(problem, &sol);
    let rounded = rounding::round_relaxed(problem, &x);
    rounding::polish_placement(problem, rounded, 8)
}

/// Greedy ablation: within each block, assign experts in descending
/// probability order to the worker that minimizes the block's resulting
/// max-time (ties by the worker's own new time), subject to capacity.
/// Greedy is *local* per block, so unlike the LP it can burn cheap-link
/// capacity on early blocks — the solver ablation quantifies this.
fn greedy(problem: &PlacementProblem) -> Placement {
    let (n, l, e) = (problem.workers(), problem.blocks(), problem.experts());
    let caps = problem.capacities();
    let mut load = vec![0usize; n];
    let mut assign = vec![vec![0usize; e]; l];
    #[allow(clippy::needless_range_loop)] // block indexes probs and assign together
    for block in 0..l {
        let mut order: Vec<usize> = (0..e).collect();
        order.sort_by(|&a, &b| {
            problem.probs()[block][b]
                .partial_cmp(&problem.probs()[block][a])
                .expect("no NaN probabilities")
        });
        let mut worker_time = vec![0.0f64; n];
        for &expert in &order {
            let block_max = worker_time.iter().cloned().fold(0.0, f64::max);
            let w = (0..n)
                .filter(|&w| load[w] < caps[w])
                .min_by(|&a, &b| {
                    let va = worker_time[a] + problem.coeff(a, block, expert);
                    let vb = worker_time[b] + problem.coeff(b, block, expert);
                    let ma = block_max.max(va);
                    let mb = block_max.max(vb);
                    (ma, va).partial_cmp(&(mb, vb)).expect("no NaN times")
                })
                .expect("capacity exhausted");
            worker_time[w] += problem.coeff(w, block, expert);
            load[w] += 1;
            assign[block][expert] = w;
        }
    }
    Placement::new(assign, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vela_cluster::{DeviceId, Topology};

    fn skewed_problem() -> PlacementProblem {
        // 4 blocks × 6 experts on the paper's 6 workers; expert 0 of every
        // block is hot.
        let probs: Vec<Vec<f64>> = (0..4)
            .map(|_| vec![0.55, 0.15, 0.1, 0.1, 0.05, 0.05])
            .collect();
        PlacementProblem::new(
            Topology::paper_testbed(),
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            probs,
            768.0,
            8192,
            PlacementProblem::even_capacities(4, 6, 6, 2),
        )
    }

    #[test]
    fn all_strategies_produce_feasible_placements() {
        let p = skewed_problem();
        for s in [
            Strategy::ExpertParallel,
            Strategy::Sequential,
            Strategy::Random { seed: 1 },
            Strategy::Vela,
            Strategy::Greedy,
        ] {
            let placement = s.place(&p);
            assert!(
                placement.respects_capacities(p.capacities()),
                "{} violates capacity",
                s.label()
            );
            assert_eq!(placement.load().iter().sum::<usize>(), 24, "{}", s.label());
        }
    }

    #[test]
    fn sequential_distributes_round_robin() {
        let p = skewed_problem();
        let placement = Strategy::Sequential.place(&p);
        for block in 0..4 {
            for expert in 0..6 {
                assert_eq!(placement.worker_of(block, expert), expert % 6);
            }
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let p = skewed_problem();
        let a = Strategy::Random { seed: 9 }.place(&p);
        let b = Strategy::Random { seed: 9 }.place(&p);
        let c = Strategy::Random { seed: 10 }.place(&p);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn vela_beats_baselines_on_skewed_profile() {
        let p = skewed_problem();
        let vela_time = p.expected_comm_time(&Strategy::Vela.place(&p));
        let seq_time = p.expected_comm_time(&Strategy::Sequential.place(&p));
        let rand_time = p.expected_comm_time(&Strategy::Random { seed: 3 }.place(&p));
        assert!(
            vela_time < seq_time,
            "vela {vela_time} vs sequential {seq_time}"
        );
        assert!(
            vela_time < rand_time,
            "vela {vela_time} vs random {rand_time}"
        );
    }

    #[test]
    fn vela_puts_hot_experts_near_the_master() {
        let p = skewed_problem();
        let placement = Strategy::Vela.place(&p);
        // The hot expert (index 0) of each block should land on the
        // master's node (workers 0/1 in the paper testbed) — a zero- or
        // cheap-transfer location.
        let master_node_workers = [0usize, 1];
        let mut hot_near = 0;
        for block in 0..4 {
            if master_node_workers.contains(&placement.worker_of(block, 0)) {
                hot_near += 1;
            }
        }
        assert!(
            hot_near >= 3,
            "expected hot experts near master, got {hot_near}/4"
        );
    }

    #[test]
    fn vela_matches_lp_bound_reasonably() {
        let p = skewed_problem();
        let sol = build::build_lp(&p).solve();
        let placement = Strategy::Vela.place(&p);
        let rounded = p.expected_comm_time(&placement);
        assert!(
            rounded <= sol.objective * 2.0 + 1e-9,
            "rounding gap too large: LP {} vs rounded {rounded}",
            sol.objective
        );
    }

    #[test]
    fn greedy_with_generous_capacity_beats_sequential() {
        // With room to spare, per-block greedy can always use the free
        // master-colocated worker.
        let probs: Vec<Vec<f64>> = (0..4)
            .map(|_| vec![0.55, 0.15, 0.1, 0.1, 0.05, 0.05])
            .collect();
        let p = PlacementProblem::new(
            Topology::paper_testbed(),
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            probs,
            768.0,
            8192,
            vec![24; 6],
        );
        let greedy_time = p.expected_comm_time(&Strategy::Greedy.place(&p));
        let seq_time = p.expected_comm_time(&Strategy::Sequential.place(&p));
        assert!(
            greedy_time <= seq_time,
            "greedy {greedy_time} vs seq {seq_time}"
        );
    }

    #[test]
    fn vela_global_view_beats_local_greedy_under_tight_capacity() {
        let p = skewed_problem();
        let greedy_time = p.expected_comm_time(&Strategy::Greedy.place(&p));
        let vela_time = p.expected_comm_time(&Strategy::Vela.place(&p));
        assert!(
            vela_time <= greedy_time + 1e-9,
            "vela {vela_time} vs greedy {greedy_time}"
        );
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Strategy::ExpertParallel.label(), "EP");
        assert_eq!(Strategy::Vela.label(), "Vela");
        assert_eq!(Strategy::Random { seed: 0 }.label(), "Random");
    }

    #[test]
    fn uniform_profile_gives_vela_no_edge() {
        // With perfectly uniform access, every placement has the same
        // expected external traffic; Vela must not be *worse*.
        let probs: Vec<Vec<f64>> = (0..3).map(|_| vec![1.0 / 6.0; 6]).collect();
        let p = PlacementProblem::new(
            Topology::paper_testbed(),
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            probs,
            768.0,
            8192,
            PlacementProblem::even_capacities(3, 6, 6, 1),
        );
        // Under a uniform profile no placement can beat another on
        // *expected traffic shape*; VELA must at least not ship more bytes
        // off-node than the baseline (it packs the master node first).
        let vela_bytes = p.expected_external_bytes(&Strategy::Vela.place(&p));
        let seq_bytes = p.expected_external_bytes(&Strategy::Sequential.place(&p));
        assert!(
            vela_bytes <= seq_bytes + 1e-9,
            "vela {vela_bytes} vs seq {seq_bytes}"
        );
    }
}

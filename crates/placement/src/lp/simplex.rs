//! A from-scratch two-phase simplex solver with bounded variables.
//!
//! Solves `min cᵀx` subject to sparse linear constraints and box bounds
//! `0 ≤ x_j ≤ u_j` (with `u_j = ∞` allowed). Implemented as a dense-tableau
//! bounded-variable simplex:
//!
//! * every constraint is converted to an equality with a slack variable;
//! * rows without a natural slack basis receive an artificial variable and
//!   Phase 1 minimizes the artificial sum;
//! * nonbasic variables rest at either bound, so the `0 ≤ X ≤ 1` box of the
//!   placement relaxation is handled implicitly instead of through
//!   thousands of explicit constraint rows;
//! * Dantzig pricing with a fallback to Bland's rule guards against
//!   cycling.
//!
//! The placement LP for the paper's testbed (6 workers × 32 blocks ×
//! 8 experts → 1 568 structural variables, 454 rows) solves in well under a
//! second in release builds.

use std::fmt;

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `≤ rhs`
    Le,
    /// `= rhs`
    Eq,
    /// `≥ rhs`
    Ge,
}

/// Outcome category of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration limit was reached (should not happen in practice).
    IterationLimit,
}

impl fmt::Display for LpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LpStatus::Optimal => "optimal",
            LpStatus::Infeasible => "infeasible",
            LpStatus::Unbounded => "unbounded",
            LpStatus::IterationLimit => "iteration limit",
        };
        f.write_str(s)
    }
}

/// Result of solving an LP.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Outcome category.
    pub status: LpStatus,
    /// Variable values (meaningful when `status == Optimal`).
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Simplex pivots performed (both phases).
    pub iterations: usize,
}

/// A sparse constraint row: terms, comparison, right-hand side.
type ConstraintRow = (Vec<(usize, f64)>, Cmp, f64);

/// Incrementally builds a bounded LP: `min cᵀx` s.t. constraints,
/// `0 ≤ x ≤ u`.
///
/// # Example
/// ```
/// use vela_placement::{LpBuilder, LpStatus};
///
/// // min -x - y  s.t.  x + y <= 1.5, x,y in [0,1]
/// let mut lp = LpBuilder::new(2);
/// lp.set_objective(0, -1.0);
/// lp.set_objective(1, -1.0);
/// lp.add_constraint(&[(0, 1.0), (1, 1.0)], vela_placement::lp::simplex::Cmp::Le, 1.5);
/// lp.set_upper_bound(0, 1.0);
/// lp.set_upper_bound(1, 1.0);
/// let sol = lp.solve();
/// assert_eq!(sol.status, LpStatus::Optimal);
/// assert!((sol.objective + 1.5).abs() < 1e-7);
/// ```
#[derive(Debug, Clone)]
pub struct LpBuilder {
    n: usize,
    objective: Vec<f64>,
    upper: Vec<f64>,
    rows: Vec<ConstraintRow>,
}

impl LpBuilder {
    /// An LP over `n` variables, all with objective 0 and bounds `[0, ∞)`.
    pub fn new(n: usize) -> Self {
        LpBuilder {
            n,
            objective: vec![0.0; n],
            upper: vec![f64::INFINITY; n],
            rows: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    pub fn set_objective(&mut self, var: usize, coeff: f64) -> &mut Self {
        self.objective[var] = coeff;
        self
    }

    /// Sets the upper bound of variable `var` (lower bound is always 0).
    ///
    /// # Panics
    /// Panics if `var` is out of range or `ub` is negative/NaN.
    pub fn set_upper_bound(&mut self, var: usize, ub: f64) -> &mut Self {
        assert!(ub >= 0.0, "upper bound must be nonnegative, got {ub}");
        self.upper[var] = ub;
        self
    }

    /// Adds a sparse constraint `Σ coeff·x_var  cmp  rhs`.
    ///
    /// # Panics
    /// Panics if any referenced variable is out of range.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], cmp: Cmp, rhs: f64) -> &mut Self {
        for &(v, _) in terms {
            assert!(v < self.n, "constraint references unknown variable {v}");
        }
        self.rows.push((terms.to_vec(), cmp, rhs));
        self
    }

    /// Solves the LP.
    pub fn solve(&self) -> LpSolution {
        Tableau::from_builder(self).solve()
    }
}

const EPS: f64 = 1e-9;
/// Minimum reduced-cost improvement to keep pivoting (coarser than `EPS`
/// so accumulated tableau round-off cannot sustain endless tiny pivots).
const PRICE_EPS: f64 = 1e-7;

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rest {
    Lower,
    Upper,
    Basic,
}

struct Tableau {
    /// Dense rows, m × total columns.
    a: Vec<Vec<f64>>,
    /// Basic-variable values per row.
    beta: Vec<f64>,
    /// Basis column per row.
    basis: Vec<usize>,
    /// Rest state per column.
    rest: Vec<Rest>,
    /// Upper bound per column.
    upper: Vec<f64>,
    /// Phase-2 objective per column.
    cost: Vec<f64>,
    /// Index of the first artificial column.
    art_start: usize,
    n_structural: usize,
    iterations: usize,
}

impl Tableau {
    fn from_builder(lp: &LpBuilder) -> Self {
        let m = lp.rows.len();
        // Column layout: [structural | slacks | artificials].
        let n_slack = lp.rows.iter().filter(|(_, cmp, _)| *cmp != Cmp::Eq).count();
        let total_guess = lp.n + n_slack + m;
        let mut a = vec![vec![0.0; total_guess]; m];
        let mut upper = lp.upper.clone();
        upper.resize(total_guess, f64::INFINITY);
        let mut cost = lp.objective.clone();
        cost.resize(total_guess, 0.0);

        let mut next_col = lp.n;
        let mut basis = vec![usize::MAX; m];
        let mut needs_artificial = Vec::new();

        for (r, (terms, cmp, rhs)) in lp.rows.iter().enumerate() {
            let mut rhs = *rhs;
            let mut sign = 1.0;
            if rhs < 0.0 {
                // Normalize to rhs >= 0 so slack/artificial bases are valid.
                rhs = -rhs;
                sign = -1.0;
            }
            for &(v, c) in terms {
                a[r][v] += sign * c;
            }
            a[r][total_guess - 1] = 0.0; // keep row length consistent
            let eff_cmp = match (cmp, sign < 0.0) {
                (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
                (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
                (Cmp::Eq, _) => Cmp::Eq,
            };
            // Write rhs into beta later; store for now in a temp via basis
            // construction below.
            match eff_cmp {
                Cmp::Le => {
                    a[r][next_col] = 1.0;
                    basis[r] = next_col; // slack is a valid basic var
                    next_col += 1;
                }
                Cmp::Ge => {
                    a[r][next_col] = -1.0; // surplus
                    next_col += 1;
                    needs_artificial.push(r);
                }
                Cmp::Eq => needs_artificial.push(r),
            }
            a[r].push(rhs); // stash rhs at the very end temporarily
        }

        let art_start = next_col;
        for &r in &needs_artificial {
            a[r][next_col] = 1.0;
            basis[r] = next_col;
            next_col += 1;
        }
        let total = next_col;

        // Extract rhs and trim columns.
        let mut beta = Vec::with_capacity(m);
        for row in &mut a {
            let rhs = row.pop().expect("stashed rhs");
            beta.push(rhs);
            row.truncate(total);
        }
        upper.truncate(total.max(upper.len()));
        upper.resize(total, f64::INFINITY);
        cost.truncate(total.max(cost.len()));
        cost.resize(total, 0.0);

        let mut rest = vec![Rest::Lower; total];
        for &b in &basis {
            rest[b] = Rest::Basic;
        }

        Tableau {
            a,
            beta,
            basis,
            rest,
            upper,
            cost,
            art_start,
            n_structural: lp.n,
            iterations: 0,
        }
    }

    fn solve(mut self) -> LpSolution {
        let m = self.a.len();
        let total = self.rest.len();

        // Phase 1: minimize the sum of artificials.
        if self.art_start < total {
            let phase1_cost: Vec<f64> = (0..total)
                .map(|j| if j >= self.art_start { 1.0 } else { 0.0 })
                .collect();
            match self.optimize(&phase1_cost, usize::MAX) {
                Ok(()) => {}
                Err(status) => return self.finish(status),
            }
            let art_sum: f64 = (0..m)
                .filter(|&r| self.basis[r] >= self.art_start)
                .map(|r| self.beta[r])
                .sum();
            if art_sum > 1e-6 {
                return self.finish(LpStatus::Infeasible);
            }
            // Pin artificials at zero so Phase 2 cannot revive them.
            for j in self.art_start..total {
                self.upper[j] = 0.0;
            }
        }

        // Phase 2: the real objective.
        let cost = self.cost.clone();
        match self.optimize(&cost, self.art_start) {
            Ok(()) => self.finish(LpStatus::Optimal),
            Err(status) => self.finish(status),
        }
    }

    /// Runs simplex iterations for the given cost vector. Columns at or
    /// beyond `enter_limit` may not enter the basis.
    fn optimize(&mut self, cost: &[f64], enter_limit: usize) -> Result<(), LpStatus> {
        let m = self.a.len();
        let max_iters = 500_000;
        let bland_after = 2_000;
        let mut local_iters = 0usize;

        loop {
            self.iterations += 1;
            local_iters += 1;
            if local_iters > max_iters {
                return Err(LpStatus::IterationLimit);
            }
            let use_bland = local_iters > bland_after;

            // Reduced costs: z_j = c_j − c_B · col_j.
            let mut cb = vec![0.0; m];
            for r in 0..m {
                cb[r] = cost[self.basis[r]];
            }

            let limit = enter_limit.min(self.rest.len());
            let mut entering: Option<(usize, bool)> = None; // (col, from_lower)
            let mut best_score = PRICE_EPS;
            #[allow(clippy::needless_range_loop)] // j indexes 4 parallel arrays
            for j in 0..limit {
                match self.rest[j] {
                    Rest::Basic => continue,
                    Rest::Lower | Rest::Upper => {}
                }
                if self.upper[j] <= 0.0 && self.rest[j] == Rest::Lower {
                    continue; // fixed at zero
                }
                let mut z = cost[j];
                for (r, &c) in cb.iter().enumerate() {
                    if c != 0.0 {
                        z -= c * self.a[r][j];
                    }
                }
                let improving = match self.rest[j] {
                    Rest::Lower => -z, // want z < 0
                    Rest::Upper => z,  // want z > 0
                    Rest::Basic => unreachable!(),
                };
                if improving > best_score {
                    if use_bland {
                        entering = Some((j, self.rest[j] == Rest::Lower));
                        break;
                    }
                    best_score = improving;
                    entering = Some((j, self.rest[j] == Rest::Lower));
                }
            }
            let Some((j, from_lower)) = entering else {
                return Ok(()); // optimal for this phase
            };

            // Direction of basic-variable change per unit step t:
            // from_lower: x_B -= d t; from_upper: x_B += d t, d = col_j.
            let mut t_max = self.upper[j]; // bound flip distance
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            for r in 0..m {
                let d = self.a[r][j];
                if d.abs() <= EPS {
                    continue;
                }
                let bi = self.basis[r];
                let (down_room, up_room) = (self.beta[r], self.upper[bi] - self.beta[r]);
                // Effective coefficient: from_lower → x_B moves by −d·t;
                // from_upper → +d·t.
                let delta = if from_lower { -d } else { d };
                let (room, at_upper) = if delta < 0.0 {
                    (down_room.max(0.0) / (-delta), false)
                } else {
                    (up_room.max(0.0) / delta, true)
                };
                if room < t_max - EPS {
                    t_max = room;
                    leave = Some((r, at_upper));
                } else if (room - t_max).abs() <= EPS && room.is_finite() {
                    // Tie: under Bland's rule pick the smallest basis index
                    // (required for termination on degenerate problems);
                    // otherwise keep the first row found.
                    match leave {
                        None => leave = Some((r, at_upper)),
                        Some((prev, _)) if use_bland && self.basis[r] < self.basis[prev] => {
                            leave = Some((r, at_upper));
                        }
                        _ => {}
                    }
                }
            }

            if !t_max.is_finite() {
                return Err(LpStatus::Unbounded);
            }
            let t = t_max.max(0.0);

            match leave {
                None => {
                    // Bound flip: j jumps to its other bound.
                    for r in 0..m {
                        let d = self.a[r][j];
                        if d != 0.0 {
                            self.beta[r] += if from_lower { -d * t } else { d * t };
                        }
                    }
                    self.rest[j] = if from_lower { Rest::Upper } else { Rest::Lower };
                }
                Some((r, leaves_at_upper)) => {
                    // Update basic values.
                    for i in 0..m {
                        let d = self.a[i][j];
                        if d != 0.0 {
                            self.beta[i] += if from_lower { -d * t } else { d * t };
                        }
                    }
                    // Entering variable's new value.
                    let x_j = if from_lower { t } else { self.upper[j] - t };
                    let old_basic = self.basis[r];
                    self.rest[old_basic] = if leaves_at_upper {
                        Rest::Upper
                    } else {
                        Rest::Lower
                    };
                    self.rest[j] = Rest::Basic;
                    self.basis[r] = j;
                    self.beta[r] = x_j;

                    // Pivot: normalize row r on column j, eliminate others.
                    let pivot = self.a[r][j];
                    debug_assert!(pivot.abs() > EPS, "zero pivot");
                    let inv = 1.0 / pivot;
                    for v in &mut self.a[r] {
                        *v *= inv;
                    }
                    let pivot_row = self.a[r].clone();
                    for (i, row) in self.a.iter_mut().enumerate() {
                        if i == r {
                            continue;
                        }
                        let factor = row[j];
                        if factor.abs() <= EPS {
                            row[j] = 0.0;
                            continue;
                        }
                        for (v, &p) in row.iter_mut().zip(&pivot_row) {
                            *v -= factor * p;
                        }
                        row[j] = 0.0;
                    }
                }
            }
        }
    }

    fn finish(self, status: LpStatus) -> LpSolution {
        let mut x = vec![0.0; self.n_structural];
        for (j, item) in x.iter_mut().enumerate() {
            *item = match self.rest[j] {
                Rest::Lower => 0.0,
                Rest::Upper => self.upper[j],
                Rest::Basic => {
                    let r = self.basis.iter().position(|&b| b == j).expect("basic");
                    self.beta[r]
                }
            };
        }
        let objective = x.iter().zip(&self.cost).map(|(&v, &c)| v * c).sum::<f64>();
        LpSolution {
            status,
            x,
            objective,
            iterations: self.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn trivial_bounded_maximization() {
        // min -x st x <= 10, x unbounded above by box.
        let mut lp = LpBuilder::new(1);
        lp.set_objective(0, -1.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 10.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.x[0], 10.0);
        assert_close(sol.objective, -10.0);
    }

    #[test]
    fn box_bound_without_constraints() {
        // min -x with x ∈ [0, 3]: pure bound flip, no pivots needed.
        let mut lp = LpBuilder::new(1);
        lp.set_objective(0, -1.0);
        lp.set_upper_bound(0, 3.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 100.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.x[0], 3.0);
    }

    #[test]
    fn classic_two_variable_lp() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's example)
        // optimum (2, 6), value 36.
        let mut lp = LpBuilder::new(2);
        lp.set_objective(0, -3.0);
        lp.set_objective(1, -5.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(&[(1, 2.0)], Cmp::Le, 12.0);
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Cmp::Le, 18.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -36.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
    }

    #[test]
    fn equality_constraints_need_phase_one() {
        // min x + y st x + y = 5, x - y = 1 → x=3, y=2.
        let mut lp = LpBuilder::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 5.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Cmp::Eq, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.x[0], 3.0);
        assert_close(sol.x[1], 2.0);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y st x + y >= 4, x >= 1 → (4, 0)? y can be 0: x>=4 via
        // first constraint → x=4,y=0 cost 8.
        let mut lp = LpBuilder::new(2);
        lp.set_objective(0, 2.0);
        lp.set_objective(1, 3.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Ge, 4.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 8.0);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -2  ⇔  y - x >= 2; min y → y=2 at x=0.
        let mut lp = LpBuilder::new(2);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Cmp::Le, -2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let mut lp = LpBuilder::new(1);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpBuilder::new(1);
        lp.set_objective(0, -1.0);
        lp.add_constraint(&[(0, -1.0)], Cmp::Le, 0.0); // x >= 0, no cap
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_make_it_bounded() {
        let mut lp = LpBuilder::new(3);
        for j in 0..3 {
            lp.set_objective(j, -(j as f64 + 1.0));
            lp.set_upper_bound(j, 1.0);
        }
        lp.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Cmp::Le, 2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        // Take the two most valuable: x2 = x1 = 1.
        assert_close(sol.objective, -5.0);
        assert_close(sol.x[2], 1.0);
        assert_close(sol.x[1], 1.0);
        assert_close(sol.x[0], 0.0);
    }

    #[test]
    fn min_max_linearization_pattern() {
        // The placement pattern: min λ st a_n·x ≤ λ, Σ x = 1, x ∈ [0,1].
        // Two "workers" with costs 1 and 3: optimum splits x = (0.75, 0.25),
        // λ = 0.75.
        let mut lp = LpBuilder::new(3); // x0, x1, λ
        lp.set_objective(2, 1.0);
        lp.set_upper_bound(0, 1.0);
        lp.set_upper_bound(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (2, -1.0)], Cmp::Le, 0.0);
        lp.add_constraint(&[(1, 3.0), (2, -1.0)], Cmp::Le, 0.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 0.75);
        assert_close(sol.x[0], 0.75);
        assert_close(sol.x[1], 0.25);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints at the same vertex.
        let mut lp = LpBuilder::new(2);
        lp.set_objective(0, -1.0);
        lp.set_objective(1, -1.0);
        for _ in 0..5 {
            lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 1.0);
        }
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(&[(1, 1.0)], Cmp::Le, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -1.0);
    }

    #[test]
    fn medium_random_lp_agrees_with_greedy_knapsack_relaxation() {
        // min -Σ v_j x_j st Σ w_j x_j <= W, 0 <= x <= 1: fractional knapsack,
        // solvable greedily by value density.
        let n = 40;
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((state >> 33) as f64 / u32::MAX as f64) + 0.1
        };
        let values: Vec<f64> = (0..n).map(|_| next()).collect();
        let weights: Vec<f64> = (0..n).map(|_| next()).collect();
        let cap: f64 = weights.iter().sum::<f64>() * 0.4;

        let mut lp = LpBuilder::new(n);
        let mut terms = Vec::new();
        for j in 0..n {
            lp.set_objective(j, -values[j]);
            lp.set_upper_bound(j, 1.0);
            terms.push((j, weights[j]));
        }
        lp.add_constraint(&terms, Cmp::Le, cap);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);

        // Greedy fractional knapsack.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            (values[b] / weights[b])
                .partial_cmp(&(values[a] / weights[a]))
                .unwrap()
        });
        let mut room = cap;
        let mut best = 0.0;
        for &j in &order {
            let take = (room / weights[j]).min(1.0);
            best += take * values[j];
            room -= take * weights[j];
            if room <= 0.0 {
                break;
            }
        }
        assert!(
            (sol.objective + best).abs() < 1e-5,
            "{} vs {}",
            sol.objective,
            -best
        );
    }

    #[test]
    fn solution_reports_iterations() {
        let mut lp = LpBuilder::new(2);
        lp.set_objective(0, -1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 1.0);
        let sol = lp.solve();
        assert!(sol.iterations >= 1);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn bad_variable_index_panics() {
        LpBuilder::new(1).add_constraint(&[(3, 1.0)], Cmp::Le, 1.0);
    }
}

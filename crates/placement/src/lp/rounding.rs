//! The paper's three-step rounding of the relaxed LP solution (§IV-B):
//!
//! 1. threshold at 0.5 (values above become 1);
//! 2. for overloaded workers, drop the assignments with the lowest relaxed
//!    values until capacity holds;
//! 3. assign every still-unplaced expert to the worker with spare capacity
//!    showing the strongest affinity (highest relaxed value).
//!
//! The result is always a feasible binary placement (property-tested in
//! `tests/`): every expert is assigned exactly once and no capacity is
//! exceeded.

use crate::problem::{Placement, PlacementProblem};

/// Rounds a relaxed assignment tensor `x[w][l][e] ∈ [0,1]` to a feasible
/// binary [`Placement`].
///
/// # Panics
/// Panics if the tensor shape disagrees with the problem, or if total
/// capacity cannot hold all experts (excluded by
/// [`PlacementProblem::new`]).
pub fn round_relaxed(problem: &PlacementProblem, x: &[Vec<Vec<f64>>]) -> Placement {
    let (n, l, e) = (problem.workers(), problem.blocks(), problem.experts());
    assert_eq!(x.len(), n, "worker dimension mismatch");

    // Step 1: threshold at 0.5. Rows sum to 1, so at most one worker
    // can exceed the threshold per expert.
    let mut assign: Vec<Vec<Option<usize>>> = vec![vec![None; e]; l];
    for (w, per_worker) in x.iter().enumerate() {
        assert_eq!(per_worker.len(), l, "block dimension mismatch");
        for (block, row) in per_worker.iter().enumerate() {
            assert_eq!(row.len(), e, "expert dimension mismatch");
            for (expert, &v) in row.iter().enumerate() {
                if v > 0.5 {
                    assign[block][expert] = Some(w);
                }
            }
        }
    }

    // Step 2: repair overloaded workers by dropping weakest assignments.
    let caps = problem.capacities();
    let mut load = vec![0usize; n];
    for row in &assign {
        for w in row.iter().flatten() {
            load[*w] += 1;
        }
    }
    for w in 0..n {
        while load[w] > caps[w] {
            // Find this worker's weakest assignment.
            let mut weakest: Option<(usize, usize, f64)> = None;
            for (block, row) in assign.iter().enumerate() {
                for (expert, a) in row.iter().enumerate() {
                    if *a == Some(w) {
                        let v = x[w][block][expert];
                        if weakest.is_none_or(|(_, _, best)| v < best) {
                            weakest = Some((block, expert, v));
                        }
                    }
                }
            }
            let (block, expert, _) = weakest.expect("overloaded worker has assignments");
            assign[block][expert] = None;
            load[w] -= 1;
        }
    }

    // Step 3: place unassigned experts by affinity among workers with
    // room. LP optima routinely split an expert's mass evenly across
    // equally-attractive workers, so affinity ties are broken by the
    // cheaper link (Eq. (6) coefficient), then by index for determinism.
    for block in 0..l {
        for expert in 0..e {
            if assign[block][expert].is_some() {
                continue;
            }
            let w = (0..n)
                .filter(|&w| load[w] < caps[w])
                .max_by(|&a, &b| {
                    let affinity = x[a][block][expert]
                        .partial_cmp(&x[b][block][expert])
                        .expect("no NaN affinities");
                    affinity.then_with(|| {
                        // Higher "max" preference = LOWER cost, then lower
                        // index (max_by keeps the last maximum).
                        problem
                            .coeff(b, block, expert)
                            .partial_cmp(&problem.coeff(a, block, expert))
                            .expect("no NaN costs")
                            .then(b.cmp(&a))
                    })
                })
                .expect("total capacity covers all experts");
            assign[block][expert] = Some(w);
            load[w] += 1;
        }
    }

    Placement::new(
        assign
            .into_iter()
            .map(|row| row.into_iter().map(|a| a.expect("assigned")).collect())
            .collect(),
        n,
    )
}

/// Monotone local-search polish of a feasible placement: repeatedly move
/// single experts (capacity permitting) or swap two experts of one block
/// whenever that lowers the Eq. (8) objective, until a fixed point (or
/// `max_passes`).
///
/// The LP relaxation often has many optimal vertices, and the paper's
/// threshold rounding can land a worse binary point from one vertex than
/// from another. Polishing removes that sensitivity: the result is never
/// worse than the raw rounding and empirically sits within a few percent
/// of the branch-and-bound optimum (see the `ablation_solver` harness).
pub fn polish_placement(
    problem: &PlacementProblem,
    mut placement: Placement,
    max_passes: usize,
) -> Placement {
    let (n, l, e) = (problem.workers(), problem.blocks(), problem.experts());
    let caps = problem.capacities();
    let mut load = placement.load();

    // Per-block per-worker expected times.
    let mut times: Vec<Vec<f64>> = (0..l)
        .map(|block| {
            let mut t = vec![0.0f64; n];
            for expert in 0..e {
                let w = placement.worker_of(block, expert);
                t[w] += problem.coeff(w, block, expert);
            }
            t
        })
        .collect();
    let block_max = |t: &[f64]| t.iter().cloned().fold(0.0f64, f64::max);

    for _ in 0..max_passes {
        let mut improved = false;
        for block in 0..l {
            for expert in 0..e {
                let from = placement.worker_of(block, expert);
                let current = block_max(&times[block]);

                // Single moves.
                let mut best: Option<(usize, f64)> = None;
                for to in 0..n {
                    if to == from || load[to] >= caps[to] {
                        continue;
                    }
                    let mut t = times[block].clone();
                    t[from] -= problem.coeff(from, block, expert);
                    t[to] += problem.coeff(to, block, expert);
                    let cand = block_max(&t);
                    if cand < current - 1e-15 && best.as_ref().is_none_or(|&(_, b)| cand < b) {
                        best = Some((to, cand));
                    }
                }
                if let Some((to, _)) = best {
                    times[block][from] -= problem.coeff(from, block, expert);
                    times[block][to] += problem.coeff(to, block, expert);
                    load[from] -= 1;
                    load[to] += 1;
                    placement.set_worker(block, expert, to);
                    improved = true;
                    continue;
                }

                // Same-block swaps (capacity-neutral).
                for other in expert + 1..e {
                    let ow = placement.worker_of(block, other);
                    if ow == from {
                        continue;
                    }
                    let mut t = times[block].clone();
                    t[from] -= problem.coeff(from, block, expert);
                    t[from] += problem.coeff(from, block, other);
                    t[ow] -= problem.coeff(ow, block, other);
                    t[ow] += problem.coeff(ow, block, expert);
                    if block_max(&t) < block_max(&times[block]) - 1e-15 {
                        times[block] = t;
                        placement.set_worker(block, expert, ow);
                        placement.set_worker(block, other, from);
                        improved = true;
                        break;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use vela_cluster::{DeviceId, Topology};

    fn problem(capacities: Vec<usize>) -> PlacementProblem {
        let workers = capacities.len();
        PlacementProblem::new(
            Topology::paper_testbed(),
            DeviceId(0),
            (0..workers).map(DeviceId).collect(),
            vec![vec![0.5, 0.3, 0.2], vec![0.6, 0.2, 0.2]],
            100.0,
            1024,
            capacities,
        )
    }

    #[test]
    fn clean_integral_solution_passes_through() {
        let p = problem(vec![3, 3]);
        let mut x = vec![vec![vec![0.0; 3]; 2]; 2];
        x[0][0][0] = 1.0;
        x[1][0][1] = 1.0;
        x[0][0][2] = 1.0;
        x[1][1][0] = 1.0;
        x[0][1][1] = 1.0;
        x[1][1][2] = 1.0;
        let placement = round_relaxed(&p, &x);
        assert_eq!(placement.worker_of(0, 0), 0);
        assert_eq!(placement.worker_of(0, 1), 1);
        assert_eq!(placement.worker_of(1, 2), 1);
        assert!(placement.respects_capacities(p.capacities()));
    }

    #[test]
    fn split_mass_gets_assigned_by_affinity() {
        let p = problem(vec![3, 3]);
        // Expert (0,0) split 0.5/0.5: unassigned at step 1, affinity tie
        // broken deterministically; expert (0,1) leaning 0.6 to worker 1.
        let mut x = vec![vec![vec![0.0; 3]; 2]; 2];
        x[0][0][0] = 0.5;
        x[1][0][0] = 0.5;
        x[0][0][1] = 0.4;
        x[1][0][1] = 0.6;
        x[0][0][2] = 1.0;
        x[0][1][0] = 1.0;
        x[1][1][1] = 1.0;
        x[1][1][2] = 1.0;
        let placement = round_relaxed(&p, &x);
        assert_eq!(placement.worker_of(0, 1), 1, "affinity 0.6 wins");
        assert!(placement.respects_capacities(p.capacities()));
    }

    #[test]
    fn overload_is_repaired_by_dropping_weakest() {
        let p = problem(vec![2, 4]);
        // Worker 0 gets 3 strong assignments but capacity 2; the weakest
        // (0.55) must move.
        let mut x = vec![vec![vec![0.0; 3]; 2]; 2];
        x[0][0][0] = 0.9;
        x[0][0][1] = 0.8;
        x[0][0][2] = 0.55;
        x[1][0][2] = 0.45;
        x[1][1][0] = 1.0;
        x[1][1][1] = 1.0;
        x[1][1][2] = 1.0;
        let placement = round_relaxed(&p, &x);
        assert_eq!(placement.worker_of(0, 0), 0);
        assert_eq!(placement.worker_of(0, 1), 0);
        assert_eq!(placement.worker_of(0, 2), 1, "weakest evicted to worker 1");
        assert!(placement.respects_capacities(p.capacities()));
    }

    #[test]
    fn tight_capacities_still_feasible() {
        let p = problem(vec![3, 3]);
        // All mass wants worker 0 (capacity 3), 6 experts total.
        let mut x = vec![vec![vec![0.0; 3]; 2]; 2];
        #[allow(clippy::needless_range_loop)]
        for l in 0..2 {
            for e in 0..3 {
                x[0][l][e] = 0.9;
                x[1][l][e] = 0.1;
            }
        }
        let placement = round_relaxed(&p, &x);
        assert!(placement.respects_capacities(p.capacities()));
        let load = placement.load();
        assert_eq!(load.iter().sum::<usize>(), 6);
        assert_eq!(load[0], 3);
        assert_eq!(load[1], 3);
    }

    #[test]
    fn polish_never_worsens_and_respects_capacity() {
        let p = problem(vec![3, 3]);
        let raw = Placement::new(vec![vec![1, 1, 1], vec![0, 0, 0]], 2);
        let before = p.expected_comm_time(&raw);
        let polished = polish_placement(&p, raw, 10);
        let after = p.expected_comm_time(&polished);
        assert!(after <= before + 1e-12, "{before} -> {after}");
        assert!(polished.respects_capacities(p.capacities()));
        assert_eq!(polished.load().iter().sum::<usize>(), 6);
    }

    #[test]
    fn polish_fixes_an_obviously_bad_assignment() {
        // Hot expert far from the master with a free slot available.
        let p = problem(vec![2, 4]);
        let bad = Placement::new(vec![vec![1, 1, 1], vec![1, 0, 0]], 2);
        let polished = polish_placement(&p, bad.clone(), 10);
        assert!(p.expected_comm_time(&polished) < p.expected_comm_time(&bad));
    }

    #[test]
    fn end_to_end_lp_plus_rounding_is_feasible() {
        let p = problem(vec![4, 4]);
        let sol = crate::lp::build::build_lp(&p).solve();
        let x = crate::lp::build::extract_relaxed(&p, &sol);
        let placement = round_relaxed(&p, &x);
        assert!(placement.respects_capacities(p.capacities()));
        assert_eq!(placement.load().iter().sum::<usize>(), 6);
    }
}

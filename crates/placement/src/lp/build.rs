//! Translation of a [`PlacementProblem`] into the paper's LP relaxation.
//!
//! Variable layout: `X_{n,l,e}` at index `((n·L) + l)·E + e`, followed by
//! one auxiliary `λ_l` per block. Constraints mirror the paper exactly:
//!
//! * `0 ≤ X ≤ 1` (relaxed binaries, via box bounds);
//! * `Σ_n X_{n,l,e} = 1` (each expert placed once);
//! * `Σ_{l,e} X_{n,l,e} ≤ C_n` (worker capacity);
//! * `Σ_e coeff(n,l,e)·X_{n,l,e} ≤ λ_l` (max linearization);
//! * objective `min Σ_l λ_l`.

use crate::lp::simplex::{Cmp, LpBuilder, LpSolution};
use crate::problem::PlacementProblem;

/// Index of variable `X_{n,l,e}` in the LP.
pub fn x_index(problem: &PlacementProblem, worker: usize, block: usize, expert: usize) -> usize {
    (worker * problem.blocks() + block) * problem.experts() + expert
}

/// Index of auxiliary `λ_l` in the LP.
pub fn lambda_index(problem: &PlacementProblem, block: usize) -> usize {
    problem.workers() * problem.blocks() * problem.experts() + block
}

/// The cost scale applied by [`build_lp`]: LP objective values multiply by
/// this to recover seconds (the largest Eq. (6) coefficient).
pub fn cost_scale(problem: &PlacementProblem) -> f64 {
    let (n, l, e) = (problem.workers(), problem.blocks(), problem.experts());
    let mut max_coeff = 0.0f64;
    for worker in 0..n {
        for block in 0..l {
            for expert in 0..e {
                max_coeff = max_coeff.max(problem.coeff(worker, block, expert));
            }
        }
    }
    if max_coeff > 0.0 {
        max_coeff
    } else {
        1.0
    }
}

/// Builds the LP relaxation of `problem`.
pub fn build_lp(problem: &PlacementProblem) -> LpBuilder {
    let (n, l, e) = (problem.workers(), problem.blocks(), problem.experts());
    let num_vars = n * l * e + l;
    let mut lp = LpBuilder::new(num_vars);

    // Scale the cost coefficients so the largest is 1: the optimal
    // *placement* is scale-invariant, and a well-conditioned tableau keeps
    // the simplex numerically stable across bandwidth regimes.
    let scale = 1.0 / cost_scale(problem);

    // Objective: Σ_l λ_l.
    for block in 0..l {
        lp.set_objective(lambda_index(problem, block), 1.0);
    }
    // Box bounds on X.
    for worker in 0..n {
        for block in 0..l {
            for expert in 0..e {
                lp.set_upper_bound(x_index(problem, worker, block, expert), 1.0);
            }
        }
    }
    // Each expert assigned exactly once.
    for block in 0..l {
        for expert in 0..e {
            let terms: Vec<(usize, f64)> = (0..n)
                .map(|w| (x_index(problem, w, block, expert), 1.0))
                .collect();
            lp.add_constraint(&terms, Cmp::Eq, 1.0);
        }
    }
    // Capacity per worker.
    for worker in 0..n {
        let mut terms = Vec::with_capacity(l * e);
        for block in 0..l {
            for expert in 0..e {
                terms.push((x_index(problem, worker, block, expert), 1.0));
            }
        }
        lp.add_constraint(&terms, Cmp::Le, problem.capacities()[worker] as f64);
    }
    // Max linearization: Σ_e coeff·X − λ_l ≤ 0 for every (worker, block).
    for worker in 0..n {
        for block in 0..l {
            let mut terms: Vec<(usize, f64)> = (0..e)
                .map(|expert| {
                    (
                        x_index(problem, worker, block, expert),
                        problem.coeff(worker, block, expert) * scale,
                    )
                })
                .collect();
            terms.push((lambda_index(problem, block), -1.0));
            lp.add_constraint(&terms, Cmp::Le, 0.0);
        }
    }
    lp
}

/// Extracts the relaxed assignment tensor `X[w][l][e]` from an LP solution.
pub fn extract_relaxed(problem: &PlacementProblem, sol: &LpSolution) -> Vec<Vec<Vec<f64>>> {
    let (n, l, e) = (problem.workers(), problem.blocks(), problem.experts());
    let mut x = vec![vec![vec![0.0; e]; l]; n];
    for (w, per_worker) in x.iter_mut().enumerate() {
        for (block, per_block) in per_worker.iter_mut().enumerate() {
            for (expert, v) in per_block.iter_mut().enumerate() {
                *v = sol.x[x_index(problem, w, block, expert)];
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::simplex::LpStatus;
    use vela_cluster::{DeviceId, Topology};

    fn toy_problem() -> PlacementProblem {
        PlacementProblem::new(
            Topology::paper_testbed(),
            DeviceId(0),
            (0..6).map(DeviceId).collect(),
            vec![vec![0.7, 0.2, 0.1], vec![0.1, 0.1, 0.8]],
            1000.0,
            8192,
            vec![1; 6],
        )
    }

    #[test]
    fn lp_shape_matches_formulation() {
        let p = toy_problem();
        let lp = build_lp(&p);
        // 6 workers × 2 blocks × 3 experts + 2 lambdas.
        assert_eq!(lp.num_vars(), 38);
        // 6 equality + 6 capacity + 12 lambda rows.
        assert_eq!(lp.num_constraints(), 24);
    }

    #[test]
    fn relaxation_is_feasible_and_bounded() {
        let p = toy_problem();
        let sol = build_lp(&p).solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.objective >= 0.0);
        let x = extract_relaxed(&p, &sol);
        // Every expert's mass sums to 1 across workers.
        #[allow(clippy::needless_range_loop)]
        for l in 0..2 {
            for e in 0..3 {
                let mass: f64 = (0..6).map(|w| x[w][l][e]).sum();
                assert!((mass - 1.0).abs() < 1e-6, "mass {mass}");
            }
        }
        // Capacities respected in the relaxation.
        for (w, item) in x.iter().enumerate() {
            let used: f64 = item.iter().flatten().sum();
            assert!(used <= 1.0 + 1e-6, "worker {w} used {used}");
        }
    }

    #[test]
    fn relaxed_objective_lower_bounds_any_binary_placement() {
        let p = toy_problem();
        let sol = build_lp(&p).solve();
        // The LP objective is cost-scaled; compare in seconds.
        let binary = crate::problem::Placement::new(vec![vec![0, 1, 2], vec![3, 4, 5]], 6);
        assert!(sol.objective * cost_scale(&p) <= p.expected_comm_time(&binary) + 1e-9);
    }

    #[test]
    fn indices_are_bijective() {
        let p = toy_problem();
        let mut seen = std::collections::HashSet::new();
        for w in 0..6 {
            for l in 0..2 {
                for e in 0..3 {
                    assert!(seen.insert(x_index(&p, w, l, e)));
                }
            }
        }
        assert!(seen.insert(lambda_index(&p, 0)));
        assert!(seen.insert(lambda_index(&p, 1)));
        assert_eq!(*seen.iter().max().unwrap(), 37);
    }
}

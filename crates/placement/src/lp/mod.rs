//! The linear-programming machinery behind locality-aware placement:
//! a general bounded-variable [simplex] solver, the [problem → LP
//! translation](build) and the [fractional → binary rounding](rounding).

pub mod build;
pub mod rounding;
pub mod simplex;

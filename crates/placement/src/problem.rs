//! The expert-placement problem and placement representation.

use vela_cluster::{CostModel, DeviceId, Topology};

/// An expert-to-worker assignment: `assign[l][e]` is the index (into the
/// problem's worker list) hosting expert `e` of block `l`.
///
/// This is the binary tensor `X` of the paper, stored densely by its
/// one-hot position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Placement {
    assign: Vec<Vec<usize>>,
    workers: usize,
}

impl Placement {
    /// Creates a placement from an explicit assignment matrix.
    ///
    /// # Panics
    /// Panics if `assign` is empty/ragged or references a worker index
    /// `≥ workers`.
    pub fn new(assign: Vec<Vec<usize>>, workers: usize) -> Self {
        assert!(!assign.is_empty(), "placement needs at least one block");
        let experts = assign[0].len();
        assert!(experts > 0, "placement needs at least one expert");
        for row in &assign {
            assert_eq!(row.len(), experts, "ragged placement rows");
            for &w in row {
                assert!(w < workers, "worker index {w} out of {workers}");
            }
        }
        Placement { assign, workers }
    }

    /// Number of MoE blocks.
    pub fn blocks(&self) -> usize {
        self.assign.len()
    }

    /// Experts per block.
    pub fn experts(&self) -> usize {
        self.assign[0].len()
    }

    /// Number of workers this placement targets.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker hosting expert `e` of block `l`.
    ///
    /// # Panics
    /// Panics if indices are out of range.
    pub fn worker_of(&self, block: usize, expert: usize) -> usize {
        self.assign[block][expert]
    }

    /// All `(block, expert)` pairs hosted by `worker`.
    pub fn experts_on(&self, worker: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (l, row) in self.assign.iter().enumerate() {
            for (e, &w) in row.iter().enumerate() {
                if w == worker {
                    out.push((l, e));
                }
            }
        }
        out
    }

    /// Number of experts per worker.
    pub fn load(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.workers];
        for row in &self.assign {
            for &w in row {
                load[w] += 1;
            }
        }
        load
    }

    /// Reassigns one expert to a different worker (live migration).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn set_worker(&mut self, block: usize, expert: usize, worker: usize) {
        assert!(worker < self.workers, "worker index {worker} out of range");
        self.assign[block][expert] = worker;
    }

    /// Pairs `(block, expert, from, to)` that differ between `self` and
    /// `other` (the migration plan from one placement to another).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn diff(&self, other: &Placement) -> Vec<(usize, usize, usize, usize)> {
        assert_eq!(self.blocks(), other.blocks(), "block count mismatch");
        assert_eq!(self.experts(), other.experts(), "expert count mismatch");
        let mut out = Vec::new();
        for l in 0..self.blocks() {
            for e in 0..self.experts() {
                let (from, to) = (self.worker_of(l, e), other.worker_of(l, e));
                if from != to {
                    out.push((l, e, from, to));
                }
            }
        }
        out
    }

    /// Checks per-worker capacity limits.
    pub fn respects_capacities(&self, capacities: &[usize]) -> bool {
        self.load()
            .iter()
            .zip(capacities)
            .all(|(&used, &cap)| used <= cap)
    }
}

/// The optimization problem of §IV-B: place `L × E` experts on `N` workers
/// to minimize expected per-step communication time.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    topology: Topology,
    master: DeviceId,
    workers: Vec<DeviceId>,
    /// `P ∈ R^{L×E}` — access probabilities, rows sum to 1.
    probs: Vec<Vec<f64>>,
    /// Expected token-assignments per block per step (`K · top_k`).
    assignments_per_step: f64,
    /// Bytes per routed token (`b·H/8`).
    token_bytes: u64,
    /// Max experts per worker (`C_n`).
    capacities: Vec<usize>,
}

impl PlacementProblem {
    /// Builds a problem instance.
    ///
    /// `assignments_per_step` is the expected number of (token, expert)
    /// assignments entering each MoE block per step, i.e.
    /// `batch·seq·top_k`.
    ///
    /// # Panics
    /// Panics on inconsistent shapes, non-distribution probability rows, or
    /// total capacity below the expert count.
    pub fn new(
        topology: Topology,
        master: DeviceId,
        workers: Vec<DeviceId>,
        probs: Vec<Vec<f64>>,
        assignments_per_step: f64,
        token_bytes: u64,
        capacities: Vec<usize>,
    ) -> Self {
        assert!(!workers.is_empty(), "need at least one worker");
        assert_eq!(workers.len(), capacities.len(), "one capacity per worker");
        assert!(!probs.is_empty(), "need at least one block");
        let experts = probs[0].len();
        for row in &probs {
            assert_eq!(row.len(), experts, "ragged probability rows");
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-3 && row.iter().all(|&p| p >= 0.0),
                "probability rows must be distributions (sum {sum})"
            );
        }
        let total_cap: usize = capacities.iter().sum();
        assert!(
            total_cap >= probs.len() * experts,
            "total capacity {total_cap} below expert count {}",
            probs.len() * experts
        );
        assert!(assignments_per_step > 0.0, "need positive token load");
        PlacementProblem {
            topology,
            master,
            workers,
            probs,
            assignments_per_step,
            token_bytes,
            capacities,
        }
    }

    /// Number of MoE blocks `L`.
    pub fn blocks(&self) -> usize {
        self.probs.len()
    }

    /// Experts per block `E`.
    pub fn experts(&self) -> usize {
        self.probs[0].len()
    }

    /// Number of workers `N`.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The worker device list.
    pub fn worker_devices(&self) -> &[DeviceId] {
        &self.workers
    }

    /// The master device.
    pub fn master(&self) -> DeviceId {
        self.master
    }

    /// Per-worker capacities `C_n`.
    pub fn capacities(&self) -> &[usize] {
        &self.capacities
    }

    /// The probability matrix `P`.
    pub fn probs(&self) -> &[Vec<f64>] {
        &self.probs
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Expected token-assignments per block per step.
    pub fn assignments_per_step(&self) -> f64 {
        self.assignments_per_step
    }

    /// Bytes per routed token.
    pub fn token_bytes(&self) -> u64 {
        self.token_bytes
    }

    /// Effective master↔worker bandwidth `B_n` in bytes/s; infinite when
    /// the worker shares the master's device (no transfer needed).
    pub fn worker_bandwidth(&self, worker: usize) -> f64 {
        let dev = self.workers[worker];
        if dev == self.master {
            f64::INFINITY
        } else {
            self.topology.bandwidth(self.master, dev).bytes_per_sec()
        }
    }

    /// The per-unit cost coefficient of Eq. (6) for `(worker, block,
    /// expert)`: expected seconds contributed per step if that expert lands
    /// on that worker (`2 · token_bytes · K · P_{l,e} / B_n`, forward
    /// dispatch + gather).
    pub fn coeff(&self, worker: usize, block: usize, expert: usize) -> f64 {
        let bw = self.worker_bandwidth(worker);
        if bw.is_infinite() {
            0.0
        } else {
            2.0 * self.token_bytes as f64 * self.assignments_per_step * self.probs[block][expert]
                / bw
        }
    }

    /// The objective of Eq. (8): `Σ_l max_n E[T_{n,l}]` for a concrete
    /// placement.
    ///
    /// # Panics
    /// Panics if the placement shape disagrees with the problem.
    pub fn expected_comm_time(&self, placement: &Placement) -> f64 {
        assert_eq!(placement.blocks(), self.blocks(), "block count mismatch");
        assert_eq!(placement.experts(), self.experts(), "expert count mismatch");
        assert_eq!(placement.workers(), self.workers(), "worker count mismatch");
        let mut total = 0.0;
        for l in 0..self.blocks() {
            let mut per_worker = vec![0.0f64; self.workers()];
            for e in 0..self.experts() {
                let w = placement.worker_of(l, e);
                per_worker[w] += self.coeff(w, l, e);
            }
            total += per_worker.iter().cloned().fold(0.0, f64::max);
        }
        total
    }

    /// Expected cross-node bytes per step for a placement (sent +
    /// received across node boundaries, totalled) — the Fig. 5 quantity
    /// in expectation.
    pub fn expected_external_bytes(&self, placement: &Placement) -> f64 {
        let mut bytes = 0.0;
        let master_node = self.topology.node_of(self.master);
        for l in 0..self.blocks() {
            for e in 0..self.experts() {
                let w = placement.worker_of(l, e);
                let dev = self.workers[w];
                if self.topology.node_of(dev) != master_node {
                    // dispatch + gather
                    bytes += 2.0
                        * self.token_bytes as f64
                        * self.assignments_per_step
                        * self.probs[l][e];
                }
            }
        }
        bytes
    }

    /// A cost model over this problem's topology.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.topology.clone())
    }

    /// Uniform capacities that fit all experts with `slack` spare slots per
    /// worker.
    pub fn even_capacities(
        blocks: usize,
        experts: usize,
        workers: usize,
        slack: usize,
    ) -> Vec<usize> {
        let per = (blocks * experts).div_ceil(workers) + slack;
        vec![per; workers]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_problem() -> PlacementProblem {
        let topology = Topology::paper_testbed();
        let workers: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        // 2 blocks × 3 experts; block 0 skewed to expert 0.
        let probs = vec![vec![0.8, 0.1, 0.1], vec![0.2, 0.3, 0.5]];
        PlacementProblem::new(
            topology,
            DeviceId(0),
            workers,
            probs,
            1000.0,
            8192,
            PlacementProblem::even_capacities(2, 3, 6, 1),
        )
    }

    #[test]
    fn placement_accessors() {
        let p = Placement::new(vec![vec![0, 1, 2], vec![2, 1, 0]], 3);
        assert_eq!(p.blocks(), 2);
        assert_eq!(p.experts(), 3);
        assert_eq!(p.worker_of(1, 0), 2);
        assert_eq!(p.experts_on(2), vec![(0, 2), (1, 0)]);
        assert_eq!(p.load(), vec![2, 2, 2]);
        assert!(p.respects_capacities(&[2, 2, 2]));
        assert!(!p.respects_capacities(&[1, 2, 2]));
    }

    #[test]
    fn set_worker_and_diff() {
        let mut a = Placement::new(vec![vec![0, 1], vec![2, 0]], 3);
        let b = a.clone();
        a.set_worker(1, 0, 1);
        assert_eq!(a.worker_of(1, 0), 1);
        assert_eq!(b.diff(&a), vec![(1, 0, 2, 1)]);
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn master_colocated_worker_is_free() {
        let p = toy_problem();
        assert!(p.worker_bandwidth(0).is_infinite());
        assert_eq!(p.coeff(0, 0, 0), 0.0);
        assert!(p.coeff(2, 0, 0) > 0.0);
    }

    #[test]
    fn coeff_scales_with_probability_and_bandwidth() {
        let p = toy_problem();
        // Same worker: coeff proportional to probability.
        assert!(p.coeff(2, 0, 0) > 7.9 * p.coeff(2, 0, 1));
        // Hot expert: remote (cross-node) worker costs more than same-node.
        assert!(p.coeff(2, 0, 0) > 10.0 * p.coeff(1, 0, 0));
    }

    #[test]
    fn hot_expert_near_master_beats_remote() {
        let p = toy_problem();
        // Hot expert 0 of block 0 on master's device vs on a remote node.
        let near = Placement::new(vec![vec![0, 2, 3], vec![4, 5, 1]], 6);
        let far = Placement::new(vec![vec![4, 2, 3], vec![0, 5, 1]], 6);
        assert!(p.expected_comm_time(&near) < p.expected_comm_time(&far));
        assert!(p.expected_external_bytes(&near) < p.expected_external_bytes(&far));
    }

    #[test]
    fn objective_is_sum_of_block_maxima() {
        let p = toy_problem();
        // All experts of both blocks on a single remote worker: time is the
        // whole block's traffic over one link.
        let all_on_2 = Placement::new(vec![vec![2, 2, 2], vec![2, 2, 2]], 6);
        // Need capacity 6 on worker 2 for validity of comparison only.
        let t = p.expected_comm_time(&all_on_2);
        // 2 blocks × 2·8192·1000 bytes / 1.17e9 B/s.
        let expected = 2.0 * 2.0 * 8192.0 * 1000.0 / 1.17e9;
        assert!((t - expected).abs() < 1e-6, "{t} vs {expected}");
    }

    #[test]
    fn even_capacities_cover_all_experts() {
        let caps = PlacementProblem::even_capacities(32, 8, 6, 0);
        assert!(caps.iter().sum::<usize>() >= 256);
        assert_eq!(caps.len(), 6);
    }

    #[test]
    #[should_panic(expected = "must be distributions")]
    fn invalid_probs_panic() {
        let topology = Topology::paper_testbed();
        PlacementProblem::new(
            topology,
            DeviceId(0),
            vec![DeviceId(1)],
            vec![vec![0.5, 0.2]],
            10.0,
            8,
            vec![10],
        );
    }

    #[test]
    #[should_panic(expected = "total capacity")]
    fn insufficient_capacity_panics() {
        let topology = Topology::paper_testbed();
        PlacementProblem::new(
            topology,
            DeviceId(0),
            vec![DeviceId(1)],
            vec![vec![0.5, 0.5]],
            10.0,
            8,
            vec![1],
        );
    }

    #[test]
    #[should_panic(expected = "worker index")]
    fn placement_bad_worker_panics() {
        Placement::new(vec![vec![0, 3]], 3);
    }
}

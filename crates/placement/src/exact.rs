//! Exact placement solvers: exhaustive search for tiny instances and
//! LP-bounded branch-and-bound for mid-size ones.
//!
//! Used to measure the optimality gap of the LP + rounding pipeline in
//! tests and the solver ablation. Exhaustive search is exponential
//! (`N^(L·E)`), so it is gated to tiny instances; [`branch_and_bound`]
//! prunes with the LP relaxation and reaches tens of expert slots.

use crate::lp::build::{build_lp, cost_scale, extract_relaxed, x_index};
use crate::lp::rounding::round_relaxed;
use crate::lp::simplex::{Cmp, LpStatus};
use crate::problem::{Placement, PlacementProblem};

/// Finds the provably optimal placement by exhaustive search with capacity
/// pruning.
///
/// # Panics
/// Panics if the instance has more than 16 expert slots (the search would
/// be intractable).
pub fn optimal_placement(problem: &PlacementProblem) -> (Placement, f64) {
    let slots = problem.blocks() * problem.experts();
    assert!(
        slots <= 16,
        "exact search is limited to 16 expert slots, got {slots}"
    );
    let n = problem.workers();
    let caps = problem.capacities();

    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut current = vec![0usize; slots];
    let mut load = vec![0usize; n];

    #[allow(clippy::too_many_arguments)] // explicit search state beats a struct here
    fn dfs(
        problem: &PlacementProblem,
        slot: usize,
        slots: usize,
        n: usize,
        caps: &[usize],
        current: &mut Vec<usize>,
        load: &mut Vec<usize>,
        best: &mut Option<(Vec<usize>, f64)>,
    ) {
        if slot == slots {
            let placement = to_placement(problem, current);
            let cost = problem.expected_comm_time(&placement);
            if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                *best = Some((current.clone(), cost));
            }
            return;
        }
        for w in 0..n {
            if load[w] >= caps[w] {
                continue;
            }
            current[slot] = w;
            load[w] += 1;
            dfs(problem, slot + 1, slots, n, caps, current, load, best);
            load[w] -= 1;
        }
    }

    dfs(
        problem,
        0,
        slots,
        n,
        caps,
        &mut current,
        &mut load,
        &mut best,
    );
    let (assignment, cost) = best.expect("feasible placement exists");
    (to_placement(problem, &assignment), cost)
}

fn to_placement(problem: &PlacementProblem, flat: &[usize]) -> Placement {
    let e = problem.experts();
    let assign: Vec<Vec<usize>> = flat.chunks(e).map(<[usize]>::to_vec).collect();
    Placement::new(assign, problem.workers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use vela_cluster::{DeviceId, Topology};

    fn tiny_problem(probs: Vec<Vec<f64>>) -> PlacementProblem {
        let blocks = probs.len();
        let experts = probs[0].len();
        PlacementProblem::new(
            Topology::builder(2, 1).build(), // 2 nodes × 1 GPU
            DeviceId(0),
            vec![DeviceId(0), DeviceId(1)],
            probs,
            100.0,
            4096,
            PlacementProblem::even_capacities(blocks, experts, 2, 1),
        )
    }

    #[test]
    fn exact_finds_the_obvious_optimum() {
        // One block, hot expert 0: it must go to the master-colocated
        // worker 0 (free link).
        let p = tiny_problem(vec![vec![0.9, 0.05, 0.05]]);
        let (placement, cost) = optimal_placement(&p);
        assert_eq!(placement.worker_of(0, 0), 0);
        assert!(cost >= 0.0);
    }

    #[test]
    fn exact_cost_lower_bounds_heuristics() {
        let p = tiny_problem(vec![vec![0.6, 0.25, 0.15], vec![0.4, 0.4, 0.2]]);
        let (_, exact_cost) = optimal_placement(&p);
        for s in [
            Strategy::Sequential,
            Strategy::Random { seed: 5 },
            Strategy::Greedy,
            Strategy::Vela,
        ] {
            let cost = p.expected_comm_time(&s.place(&p));
            assert!(
                exact_cost <= cost + 1e-9,
                "{} beat the exact optimum?! {cost} < {exact_cost}",
                s.label()
            );
        }
    }

    #[test]
    fn vela_is_near_optimal_on_tiny_instances() {
        for seed in 0..5u64 {
            // Random skewed profiles.
            let mut rng = vela_tensor::rng::DetRng::new(seed);
            let mut row = vec![0.0f64; 4];
            let mut total = 0.0;
            for v in &mut row {
                *v = rng.uniform(0.05, 1.0) as f64;
                total += *v;
            }
            for v in &mut row {
                *v /= total;
            }
            let p = tiny_problem(vec![row.clone(), row]);
            let (_, exact_cost) = optimal_placement(&p);
            let vela_cost = p.expected_comm_time(&Strategy::Vela.place(&p));
            assert!(
                vela_cost <= exact_cost * 1.5 + 1e-9,
                "seed {seed}: vela {vela_cost} vs exact {exact_cost}"
            );
        }
    }

    #[test]
    fn exact_respects_capacities() {
        let p = tiny_problem(vec![vec![0.7, 0.3], vec![0.7, 0.3]]);
        let (placement, _) = optimal_placement(&p);
        assert!(placement.respects_capacities(p.capacities()));
    }

    #[test]
    #[should_panic(expected = "16 expert slots")]
    fn oversized_instance_panics() {
        let probs: Vec<Vec<f64>> = (0..5).map(|_| vec![0.25; 4]).collect();
        let p = tiny_problem(probs);
        optimal_placement(&p);
    }
}

/// Outcome of a [`branch_and_bound`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchAndBoundResult {
    /// The best placement found.
    pub placement: Placement,
    /// Its objective value (Eq. (8)).
    pub cost: f64,
    /// `true` when the search completed (the placement is provably
    /// optimal); `false` when the node limit cut it short (the placement
    /// is the best incumbent).
    pub proven_optimal: bool,
    /// Search-tree nodes expanded (= LP relaxations solved).
    pub nodes: usize,
}

/// Exact placement by LP-bounded branch-and-bound.
///
/// Branches on the most fractional expert of each node's LP relaxation,
/// trying workers in descending relaxed-affinity order; subtrees whose LP
/// bound cannot beat the incumbent are pruned. The initial incumbent is
/// the LP + rounding placement, so the result is never worse than VELA's
/// own heuristic.
///
/// # Panics
/// Panics if `node_limit` is zero.
pub fn branch_and_bound(problem: &PlacementProblem, node_limit: usize) -> BranchAndBoundResult {
    assert!(node_limit > 0, "need at least one node");
    let (n, l, e) = (problem.workers(), problem.blocks(), problem.experts());

    // Root relaxation + rounded incumbent.
    let root = build_lp(problem).solve();
    assert_eq!(root.status, LpStatus::Optimal, "root LP must solve");
    let mut incumbent = round_relaxed(problem, &extract_relaxed(problem, &root));
    let mut best_cost = problem.expected_comm_time(&incumbent);

    // Depth-first stack of partial assignments: fixed[(block, expert)] = worker.
    let mut nodes = 0usize;
    let mut proven = true;
    let mut stack: Vec<Vec<((usize, usize), usize)>> = vec![Vec::new()];

    while let Some(fixed) = stack.pop() {
        if nodes >= node_limit {
            proven = false;
            break;
        }
        nodes += 1;

        // LP with the fixed assignments pinned.
        let mut lp = build_lp(problem);
        for &((block, expert), worker) in &fixed {
            lp.add_constraint(
                &[(x_index(problem, worker, block, expert), 1.0)],
                Cmp::Eq,
                1.0,
            );
        }
        let sol = lp.solve();
        if sol.status != LpStatus::Optimal
            || sol.objective * cost_scale(problem) >= best_cost - 1e-12
        {
            continue; // infeasible or pruned by bound
        }
        let x = extract_relaxed(problem, &sol);

        // Most fractional unfixed (block, expert).
        let mut branch: Option<(usize, usize, f64)> = None;
        for block in 0..l {
            for expert in 0..e {
                if fixed.iter().any(|&((b, ex), _)| (b, ex) == (block, expert)) {
                    continue;
                }
                let frac = (0..n)
                    .map(|w| {
                        let v = x[w][block][expert];
                        (v - v.round()).abs()
                    })
                    .fold(0.0f64, f64::max);
                if frac > 1e-6 && branch.as_ref().is_none_or(|&(_, _, f)| frac > f) {
                    branch = Some((block, expert, frac));
                }
            }
        }

        match branch {
            None => {
                // Integral: candidate solution.
                let rounded = round_relaxed(problem, &x);
                let cost = problem.expected_comm_time(&rounded);
                if cost < best_cost {
                    best_cost = cost;
                    incumbent = rounded;
                }
            }
            Some((block, expert, _)) => {
                // Branch on each worker, best-affinity last so it pops first.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    x[a][block][expert]
                        .partial_cmp(&x[b][block][expert])
                        .expect("no NaN affinities")
                });
                for w in order {
                    let mut child = fixed.clone();
                    child.push(((block, expert), w));
                    stack.push(child);
                }
            }
        }
    }

    BranchAndBoundResult {
        placement: incumbent,
        cost: best_cost,
        proven_optimal: proven,
        nodes,
    }
}

#[cfg(test)]
mod bb_tests {
    use super::*;
    use crate::strategy::Strategy;
    use vela_cluster::{DeviceId, Topology};

    fn mk_problem(probs: Vec<Vec<f64>>, workers: usize, cap_slack: usize) -> PlacementProblem {
        let blocks = probs.len();
        let experts = probs[0].len();
        PlacementProblem::new(
            Topology::builder(2, workers / 2).build(),
            DeviceId(0),
            (0..workers).map(DeviceId).collect(),
            probs,
            200.0,
            4096,
            PlacementProblem::even_capacities(blocks, experts, workers, cap_slack),
        )
    }

    #[test]
    fn matches_exhaustive_on_tiny_instances() {
        for seed in 0..4u64 {
            let profile = vela_tensor::rng::DetRng::new(seed); // just vary the seed source
            let _ = profile;
            let probs = crate::exact::test_profile(seed, 2, 4);
            let p = mk_problem(probs, 2, 1);
            let (_, exhaustive_cost) = optimal_placement(&p);
            let bb = branch_and_bound(&p, 100_000);
            assert!(bb.proven_optimal, "seed {seed} hit the node limit");
            assert!(
                (bb.cost - exhaustive_cost).abs() < 1e-9,
                "seed {seed}: bb {} vs exhaustive {exhaustive_cost}",
                bb.cost
            );
        }
    }

    #[test]
    fn handles_instances_beyond_exhaustive_reach() {
        // 4 blocks x 6 experts = 24 slots: 4^24 exhaustive is hopeless.
        let probs = crate::exact::test_profile(9, 4, 6);
        let p = mk_problem(probs, 4, 1);
        let bb = branch_and_bound(&p, 3_000);
        assert!(bb.nodes <= 3_000);
        // Never worse than the heuristics it bounds.
        let vela = p.expected_comm_time(&Strategy::Vela.place(&p));
        assert!(bb.cost <= vela + 1e-9, "bb {} vs vela {vela}", bb.cost);
        assert!(bb.placement.respects_capacities(p.capacities()));
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let probs = crate::exact::test_profile(3, 3, 5);
        let p = mk_problem(probs, 4, 1);
        let quick = branch_and_bound(&p, 1);
        let thorough = branch_and_bound(&p, 2_000);
        assert!(thorough.cost <= quick.cost + 1e-9);
        assert!(!quick.proven_optimal || quick.nodes < 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_limit_panics() {
        let probs = crate::exact::test_profile(1, 1, 2);
        let p = mk_problem(probs, 2, 2);
        branch_and_bound(&p, 0);
    }
}

/// Deterministic random probability rows for solver tests.
#[cfg(test)]
pub(crate) fn test_profile(seed: u64, blocks: usize, experts: usize) -> Vec<Vec<f64>> {
    let mut rng = vela_tensor::rng::DetRng::new(seed);
    (0..blocks)
        .map(|_| {
            let mut row: Vec<f64> = (0..experts)
                .map(|_| rng.uniform(0.05, 1.0) as f64)
                .collect();
            let total: f64 = row.iter().sum();
            for v in &mut row {
                *v /= total;
            }
            row
        })
        .collect()
}

//! Expert→worker mapping as a *relation*: cost-aware replication.
//!
//! The paper's LP (§IV-B) assigns each expert to exactly one device, so a
//! hot expert makes its worker the straggler. Following CRAFT's cost-aware
//! replication and MoETuner's balanced routing, [`ReplicatedPlacement`]
//! generalises [`Placement`] to a per-`(block, expert)` *replica set*: the
//! first entry is the **primary** (the seed owner — checkpoints, migration
//! and bootstrap still root there) and any further entries are extra live
//! copies the runtime may route token batches to.
//!
//! Degree 1 everywhere is the identity refactor: a `ReplicatedPlacement`
//! built [`From`] a `Placement` routes, accounts and trains bit-for-bit
//! identically to the single-owner code it replaced.
//!
//! [`replicate_by_cost`] chooses degrees from the measured access
//! histogram (the Fig.-3 `P` matrix carried by [`PlacementProblem`]) under
//! a per-worker memory budget: the hottest experts — the ones whose token
//! load dominates `max_n E[T_{n,l}]` — gain replicas on the least-loaded
//! eligible workers until the budget runs out or no expert is hotter than
//! uniform. Every choice breaks ties on the lowest index so the result is
//! deterministic for a given problem.

use crate::problem::{Placement, PlacementProblem};

/// A per-`(block, expert)` replica set over `workers` workers.
///
/// Invariants (checked by [`ReplicatedPlacement::new`]):
/// * every replica list is non-empty and every worker index is in range;
/// * no worker appears twice in one list;
/// * entry 0 is the primary; the remaining entries are sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicatedPlacement {
    /// `replicas[block][expert]` = primary-first replica list.
    replicas: Vec<Vec<Vec<usize>>>,
    workers: usize,
}

impl ReplicatedPlacement {
    /// Builds a replicated placement from explicit replica lists.
    ///
    /// # Panics
    /// Panics if any list is empty, any worker index is out of range, a
    /// worker is listed twice for one `(block, expert)`, or the non-primary
    /// tail is not sorted ascending.
    pub fn new(replicas: Vec<Vec<Vec<usize>>>, workers: usize) -> Self {
        for (l, row) in replicas.iter().enumerate() {
            for (e, reps) in row.iter().enumerate() {
                assert!(!reps.is_empty(), "empty replica set for ({l}, {e})");
                for &w in reps {
                    assert!(w < workers, "worker index {w} out of {workers}");
                }
                let tail = &reps[1..];
                assert!(
                    tail.windows(2).all(|p| p[0] < p[1]),
                    "replica tail for ({l}, {e}) must be sorted ascending"
                );
                assert!(
                    !tail.contains(&reps[0]),
                    "duplicate replica {} for ({l}, {e})",
                    reps[0]
                );
            }
        }
        Self { replicas, workers }
    }

    /// Number of MoE blocks.
    pub fn blocks(&self) -> usize {
        self.replicas.len()
    }

    /// Number of experts per block.
    pub fn experts(&self) -> usize {
        self.replicas.first().map_or(0, Vec::len)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The replica set for `(block, expert)`, primary first.
    pub fn replicas_of(&self, block: usize, expert: usize) -> &[usize] {
        &self.replicas[block][expert]
    }

    /// The primary (seed-owner) worker — the single owner of the degree-1
    /// world; checkpoints and migration root here.
    pub fn primary(&self, block: usize, expert: usize) -> usize {
        self.replicas[block][expert][0]
    }

    /// Replica count for `(block, expert)`.
    pub fn degree(&self, block: usize, expert: usize) -> usize {
        self.replicas[block][expert].len()
    }

    /// The largest replica count across all `(block, expert)` pairs.
    pub fn max_degree(&self) -> usize {
        self.replicas
            .iter()
            .flat_map(|row| row.iter().map(Vec::len))
            .max()
            .unwrap_or(0)
    }

    /// Mean replica count across all `(block, expert)` pairs.
    pub fn avg_degree(&self) -> f64 {
        let slots = self.blocks() * self.experts();
        if slots == 0 {
            return 0.0;
        }
        self.total_replicas() as f64 / slots as f64
    }

    /// Total replica slots across all workers.
    pub fn total_replicas(&self) -> usize {
        self.replicas
            .iter()
            .flat_map(|row| row.iter().map(Vec::len))
            .sum()
    }

    /// `true` iff every `(block, expert)` has exactly one replica — the
    /// configuration that must be bitwise-identical to [`Placement`].
    pub fn is_degree_one(&self) -> bool {
        self.replicas
            .iter()
            .all(|row| row.iter().all(|r| r.len() == 1))
    }

    /// All `(block, expert)` pairs with more than one replica, ascending.
    pub fn replicated_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (l, row) in self.replicas.iter().enumerate() {
            for (e, reps) in row.iter().enumerate() {
                if reps.len() > 1 {
                    out.push((l, e));
                }
            }
        }
        out
    }

    /// Replica slots hosted per worker (memory-proxy load).
    pub fn load(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.workers];
        for row in &self.replicas {
            for reps in row {
                for &w in reps {
                    load[w] += 1;
                }
            }
        }
        load
    }

    /// `true` iff each worker hosts at most its capacity in replica slots.
    pub fn respects_capacities(&self, capacities: &[usize]) -> bool {
        self.load()
            .iter()
            .zip(capacities)
            .all(|(&used, &cap)| used <= cap)
    }

    /// Adds `worker` as a replica of `(block, expert)`; no-op if already
    /// one.
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn add_replica(&mut self, block: usize, expert: usize, worker: usize) {
        assert!(
            worker < self.workers,
            "worker index {worker} out of {}",
            self.workers
        );
        let reps = &mut self.replicas[block][expert];
        if reps.contains(&worker) {
            return;
        }
        reps.push(worker);
        reps[1..].sort_unstable();
    }

    /// Migration bookkeeping: the old primary leaves the replica set (its
    /// copy is evicted by the migration fetch) and `to` becomes primary
    /// (deduped if it was already a tail replica).
    pub fn set_primary(&mut self, block: usize, expert: usize, to: usize) {
        assert!(
            to < self.workers,
            "worker index {to} out of {}",
            self.workers
        );
        let reps = &mut self.replicas[block][expert];
        reps.remove(0);
        reps.retain(|&w| w != to);
        reps.insert(0, to);
        reps[1..].sort_unstable();
    }

    /// The degree-1 projection: each expert mapped to its primary. This is
    /// what checkpointing, migration diffs and capacity baselines operate
    /// on.
    pub fn primaries(&self) -> Placement {
        let assign = self
            .replicas
            .iter()
            .map(|row| row.iter().map(|reps| reps[0]).collect())
            .collect();
        Placement::new(assign, self.workers)
    }
}

impl From<Placement> for ReplicatedPlacement {
    fn from(p: Placement) -> Self {
        Self::from(&p)
    }
}

impl From<&Placement> for ReplicatedPlacement {
    fn from(p: &Placement) -> Self {
        let replicas = (0..p.blocks())
            .map(|l| (0..p.experts()).map(|e| vec![p.worker_of(l, e)]).collect())
            .collect();
        Self {
            replicas,
            workers: p.workers(),
        }
    }
}

/// The `VELA_REPLICATION` knob: `off` (default) keeps the single-owner
/// mapping; `budget:<frac>` lets replication grow each worker's expert
/// slots by up to `frac` of its capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicationConfig {
    /// Degree 1 everywhere — bitwise-identical to the pre-replication code.
    Off,
    /// Cost-aware replication with at most `floor(frac · capacity)` extra
    /// replica slots per worker.
    Budget {
        /// Fraction of each worker's capacity available for replicas.
        frac: f64,
    },
}

impl ReplicationConfig {
    /// Reads `VELA_REPLICATION` (`off` | `budget:<frac>`; unset = `off`).
    ///
    /// # Panics
    /// Panics on an unrecognised value — a silently ignored knob would
    /// invalidate a benchmark run.
    pub fn from_env() -> Self {
        match std::env::var("VELA_REPLICATION") {
            Ok(v) => Self::parse(&v),
            Err(_) => Self::Off,
        }
    }

    /// Parses a `VELA_REPLICATION` value.
    ///
    /// # Panics
    /// Panics on anything other than `off` or `budget:<frac>` with
    /// `frac ∈ (0, 8]`.
    pub fn parse(value: &str) -> Self {
        let v = value.trim();
        if v.is_empty() || v.eq_ignore_ascii_case("off") {
            return Self::Off;
        }
        if let Some(frac) = v.strip_prefix("budget:") {
            let frac: f64 = frac.parse().unwrap_or_else(|_| {
                panic!("VELA_REPLICATION=budget:<frac> needs a number, got {v:?}")
            });
            assert!(
                frac > 0.0 && frac <= 8.0,
                "VELA_REPLICATION budget fraction must be in (0, 8], got {frac}"
            );
            return Self::Budget { frac };
        }
        panic!("VELA_REPLICATION must be `off` or `budget:<frac>`, got {v:?}");
    }

    /// `true` for [`ReplicationConfig::Off`].
    pub fn is_off(&self) -> bool {
        matches!(self, Self::Off)
    }

    /// Label for summaries (`off` or `budget:<frac>`).
    pub fn label(&self) -> String {
        match self {
            Self::Off => "off".to_string(),
            Self::Budget { frac } => format!("budget:{frac}"),
        }
    }

    /// Applies the knob to a base placement: [`ReplicationConfig::Off`]
    /// yields the degree-1 identity; `budget:<frac>` runs
    /// [`replicate_by_cost`].
    pub fn apply(&self, base: &Placement, problem: &PlacementProblem) -> ReplicatedPlacement {
        match self {
            Self::Off => ReplicatedPlacement::from(base),
            Self::Budget { frac } => replicate_by_cost(base, problem, *frac),
        }
    }
}

/// Chooses replica degrees from the access histogram under a per-worker
/// memory budget.
///
/// Greedy, deterministic: repeatedly pick the `(block, expert)` with the
/// largest *residual* per-replica token share `P_{l,e} / degree` (ties →
/// lowest `(block, expert)`), and add one replica on the eligible worker —
/// not already a replica, budget left — with the smallest
/// `(replica load, comm coeff, index)`. Stops when the per-worker budgets
/// (`floor(frac · capacity)` extra slots each) are exhausted or no
/// remaining candidate's residual share exceeds the uniform share `1/E`
/// (replicating a colder-than-uniform expert cannot reduce the straggler
/// term).
pub fn replicate_by_cost(
    base: &Placement,
    problem: &PlacementProblem,
    budget_frac: f64,
) -> ReplicatedPlacement {
    assert!(budget_frac > 0.0, "budget fraction must be positive");
    let mut placement = ReplicatedPlacement::from(base);
    let (blocks, experts, workers) = (base.blocks(), base.experts(), base.workers());
    assert_eq!(
        problem.probs().len(),
        blocks,
        "problem/placement block mismatch"
    );
    let caps = problem.capacities();
    let mut extra_left: Vec<usize> = caps
        .iter()
        .map(|&c| (budget_frac * c as f64).floor() as usize)
        .collect();
    let mut load = placement.load();
    let uniform = 1.0 / experts.max(1) as f64;

    loop {
        // Hottest residual share first; deterministic lowest-index ties.
        let mut best: Option<(f64, usize, usize)> = None;
        for l in 0..blocks {
            for e in 0..experts {
                let share = problem.probs()[l][e] / placement.degree(l, e) as f64;
                if share <= uniform {
                    continue;
                }
                let beats = match best {
                    None => true,
                    Some((s, bl, be)) => share > s || (share == s && (l, e) < (bl, be)),
                };
                if beats {
                    best = Some((share, l, e));
                }
            }
        }
        let Some((_, l, e)) = best else { break };
        // Cheapest eligible host: least replica load, then cheapest link,
        // then lowest index.
        let current = placement.replicas_of(l, e);
        let target = (0..workers)
            .filter(|&w| extra_left[w] > 0 && !current.contains(&w))
            .min_by(|&a, &b| {
                let ka = (load[a], problem.coeff(a, l, e), a);
                let kb = (load[b], problem.coeff(b, l, e), b);
                ka.partial_cmp(&kb).expect("no NaN coefficients")
            });
        let Some(w) = target else {
            // No host has budget for this expert; try the next-hottest by
            // pretending this one is saturated. Simplest deterministic way:
            // stop replicating entirely — remaining candidates are colder
            // and would land on the same exhausted workers.
            break;
        };
        placement.add_replica(l, e, w);
        extra_left[w] -= 1;
        load[w] += 1;
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use vela_cluster::{DeviceId, Topology};

    fn base_and_problem() -> (Placement, PlacementProblem) {
        // 2 blocks × 4 experts over 2 workers; expert 0 is hot.
        let probs: Vec<Vec<f64>> = (0..2).map(|_| vec![0.7, 0.1, 0.1, 0.1]).collect();
        let problem = PlacementProblem::new(
            Topology::builder(1, 3).build(),
            DeviceId(0),
            vec![DeviceId(1), DeviceId(2)],
            probs,
            768.0,
            8192,
            vec![8, 8],
        );
        let assign = vec![vec![0, 1, 0, 1], vec![1, 0, 1, 0]];
        (Placement::new(assign, 2), problem)
    }

    #[test]
    fn degree_one_roundtrips_the_placement() {
        let (base, _) = base_and_problem();
        let rep = ReplicatedPlacement::from(&base);
        assert!(rep.is_degree_one());
        assert_eq!(rep.max_degree(), 1);
        assert_eq!(rep.primaries(), base);
        for l in 0..base.blocks() {
            for e in 0..base.experts() {
                assert_eq!(rep.primary(l, e), base.worker_of(l, e));
                assert_eq!(rep.replicas_of(l, e), &[base.worker_of(l, e)]);
            }
        }
        assert_eq!(rep.load(), base.load());
    }

    #[test]
    #[should_panic(expected = "empty replica set")]
    fn empty_replica_set_is_rejected() {
        ReplicatedPlacement::new(vec![vec![vec![]]], 2);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_worker_is_rejected() {
        ReplicatedPlacement::new(vec![vec![vec![2]]], 2);
    }

    #[test]
    #[should_panic(expected = "duplicate replica")]
    fn duplicate_replica_is_rejected() {
        ReplicatedPlacement::new(vec![vec![vec![1, 1]]], 2);
    }

    #[test]
    fn add_replica_keeps_primary_first_and_tail_sorted() {
        let (base, _) = base_and_problem();
        let mut rep = ReplicatedPlacement::from(&base);
        rep.add_replica(0, 2, 1);
        assert_eq!(rep.replicas_of(0, 2), &[0, 1]);
        rep.add_replica(0, 2, 1); // no-op
        assert_eq!(rep.degree(0, 2), 2);
        assert!(!rep.is_degree_one());
        assert_eq!(rep.replicated_pairs(), vec![(0, 2)]);
    }

    #[test]
    fn set_primary_evicts_the_old_primary() {
        let (base, _) = base_and_problem();
        let mut rep = ReplicatedPlacement::from(&base);
        // Degree 1: plain migration, [0] → [1].
        rep.set_primary(0, 2, 1);
        assert_eq!(rep.replicas_of(0, 2), &[1]);
        // Degree 2 onto an existing tail replica: [0, 1] → [1].
        rep.add_replica(0, 0, 1);
        rep.set_primary(0, 0, 1);
        assert_eq!(rep.replicas_of(0, 0), &[1]);
    }

    #[test]
    fn replicate_by_cost_targets_hot_experts_within_budget() {
        let (base, problem) = base_and_problem();
        let rep = replicate_by_cost(&base, &problem, 0.25);
        // floor(0.25 · 8) = 2 extra slots per worker.
        let extra = rep.total_replicas() - base.blocks() * base.experts();
        assert!(extra >= 1, "budget should admit at least one replica");
        assert!(extra <= 4, "budget of 2+2 extra slots exceeded: {extra}");
        // The hot expert (P = 0.7 ≫ uniform 0.25) replicates first.
        assert!(rep.degree(0, 0) > 1, "hot expert not replicated");
        // Cold experts (P = 0.1 < uniform) never replicate.
        for l in 0..2 {
            for e in 1..4 {
                assert_eq!(rep.degree(l, e), 1, "cold expert ({l}, {e}) replicated");
            }
        }
        let caps: Vec<usize> = problem
            .capacities()
            .iter()
            .map(|&c| c + (0.25 * c as f64).floor() as usize)
            .collect();
        assert!(rep.respects_capacities(&caps));
    }

    #[test]
    fn replicate_by_cost_is_deterministic() {
        let (base, problem) = base_and_problem();
        let a = replicate_by_cost(&base, &problem, 0.5);
        let b = replicate_by_cost(&base, &problem, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn replication_config_parses_and_applies() {
        assert!(ReplicationConfig::parse("off").is_off());
        assert!(ReplicationConfig::parse("").is_off());
        assert_eq!(
            ReplicationConfig::parse("budget:0.5"),
            ReplicationConfig::Budget { frac: 0.5 }
        );
        assert_eq!(ReplicationConfig::parse("budget:0.5").label(), "budget:0.5");
        let (base, problem) = base_and_problem();
        let off = ReplicationConfig::Off.apply(&base, &problem);
        assert!(off.is_degree_one());
        let on = ReplicationConfig::Budget { frac: 0.5 }.apply(&base, &problem);
        assert!(on.max_degree() > 1);
    }

    #[test]
    #[should_panic(expected = "VELA_REPLICATION")]
    fn replication_config_rejects_garbage() {
        ReplicationConfig::parse("always");
    }
}
